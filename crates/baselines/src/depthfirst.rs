//! Depth-first, projection-based in-memory mining.
//!
//! Section 2.2 of the paper observes that depth-first, projection-based
//! miners (FreeSpan, SPADE, the DepthProject family) "generally perform
//! better than breadth-first ones if the data is memory-resident, and the
//! advantage becomes more substantial when the pattern is long" — but sets
//! them aside because its target data is disk-resident. This module
//! implements that alternative for the match model, so the trade-off can
//! be measured rather than assumed (see the `mining` Criterion bench).
//!
//! The key idea adapts prefix-projection to the match metric: for the
//! current pattern `P`, keep the **occurrence list** — every window start
//! `(sequence, start, product)` with a positive partial product
//! `∏ᵢ C(pᵢ, s[start+i])`. Extending `P` on the right with `gap` eternal
//! symbols and a concrete symbol `d` just multiplies each surviving
//! occurrence by `C(d, s[start + |P| + gap])`: no window is ever
//! re-scanned. Right-extension generates each pattern exactly once (a
//! pattern's derivation from its first symbol is unique), so no
//! deduplication or candidate join is needed.

use noisemine_core::candidates::PatternSpace;
use noisemine_core::lattice::Border;
use noisemine_core::matching::SymbolMatchScratch;
use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::pattern::Pattern;
use noisemine_core::Symbol;

/// One surviving window of the current pattern.
#[derive(Debug, Clone, Copy)]
struct Occurrence {
    /// Index of the sequence in the input slice.
    seq: u32,
    /// Window start position within the sequence.
    start: u32,
    /// Partial product `∏ C(pᵢ, observed)` over the pattern so far.
    product: f64,
}

/// Result of a depth-first mining run.
#[derive(Debug, Clone, Default)]
pub struct DepthFirstResult {
    /// Every frequent pattern with its exact match.
    pub frequent: Vec<(Pattern, f64)>,
    /// The border (maximal frequent patterns).
    pub border: Border,
    /// Patterns whose match was evaluated (frequent or not).
    pub patterns_evaluated: usize,
    /// Deepest recursion reached (longest frequent prefix + 1).
    pub max_depth: usize,
}

impl DepthFirstResult {
    /// The frequent patterns as a set.
    pub fn pattern_set(&self) -> std::collections::HashSet<Pattern> {
        self.frequent.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// Mines all patterns with database match ≥ `min_match` from memory-resident
/// sequences, depth first. Produces exactly the same set as
/// [`crate::mine_levelwise`] under the match metric, with no database
/// re-scanning: cost is proportional to the total size of the occurrence
/// lists actually explored.
pub fn mine_depth_first(
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    min_match: f64,
    space: &PatternSpace,
) -> DepthFirstResult {
    let mut result = DepthFirstResult::default();
    let n = sequences.len();
    let m = matrix.len();
    if n == 0 || m == 0 {
        return result;
    }

    // Frequent symbols via the phase-1 scan kernel.
    let mut symbol_match = vec![0.0f64; m];
    let mut scratch = SymbolMatchScratch::new(m);
    for seq in sequences {
        for (acc, &v) in symbol_match.iter_mut().zip(scratch.sequence(seq, matrix)) {
            *acc += v;
        }
    }
    for v in &mut symbol_match {
        *v /= n as f64;
    }
    result.patterns_evaluated += m;
    let frequent_symbols: Vec<Symbol> = (0..m)
        .map(|i| Symbol(i as u16))
        .filter(|s| symbol_match[s.index()] >= min_match)
        .collect();

    let mut ctx = Context {
        sequences,
        matrix,
        min_match,
        space,
        frequent_symbols: &frequent_symbols,
        n,
        result: &mut result,
    };

    for &d in &frequent_symbols {
        // Seed occurrence list: every position compatible with d.
        let mut occs = Vec::new();
        for (si, seq) in sequences.iter().enumerate() {
            for (pi, &obs) in seq.iter().enumerate() {
                let c = matrix.get(d, obs);
                if c > 0.0 {
                    occs.push(Occurrence {
                        seq: si as u32,
                        start: pi as u32,
                        product: c,
                    });
                }
            }
        }
        let value = mean_of_per_sequence_max(&occs, n);
        debug_assert!((value - symbol_match[d.index()]).abs() < 1e-9);
        let pattern = Pattern::single(d);
        ctx.result.frequent.push((pattern.clone(), value));
        grow(&mut ctx, &pattern, &occs, 1);
    }

    result.frequent.sort_by(|a, b| a.0.cmp(&b.0));
    result.border = Border::from_patterns(result.frequent.iter().map(|(p, _)| p.clone()));
    result
}

struct Context<'a> {
    sequences: &'a [Vec<Symbol>],
    matrix: &'a CompatibilityMatrix,
    min_match: f64,
    space: &'a PatternSpace,
    frequent_symbols: &'a [Symbol],
    n: usize,
    result: &'a mut DepthFirstResult,
}

/// Recursively extends `pattern` (whose surviving windows are `occs`) on
/// the right.
fn grow(ctx: &mut Context<'_>, pattern: &Pattern, occs: &[Occurrence], depth: usize) {
    ctx.result.max_depth = ctx.result.max_depth.max(depth);
    let base_len = pattern.len();
    for gap in 0..=ctx.space.max_gap {
        if base_len + gap + 1 > ctx.space.max_len {
            break;
        }
        for &d in ctx.frequent_symbols {
            ctx.result.patterns_evaluated += 1;
            let mut extended = Vec::new();
            for occ in occs {
                let seq = &ctx.sequences[occ.seq as usize];
                let pos = occ.start as usize + base_len + gap;
                if pos >= seq.len() {
                    continue;
                }
                let c = ctx.matrix.get(d, seq[pos]);
                if c > 0.0 {
                    extended.push(Occurrence {
                        seq: occ.seq,
                        start: occ.start,
                        product: occ.product * c,
                    });
                }
            }
            if extended.is_empty() {
                continue;
            }
            let value = mean_of_per_sequence_max(&extended, ctx.n);
            if value >= ctx.min_match {
                let next = pattern.extend(gap, d);
                ctx.result.frequent.push((next.clone(), value));
                grow(ctx, &next, &extended, depth + 1);
            }
        }
    }
}

/// Database match from an occurrence list: the mean over all `n` sequences
/// of the per-sequence maximum product (sequences without occurrences
/// contribute 0). Occurrence lists are built in sequence order, so one
/// linear pass suffices.
fn mean_of_per_sequence_max(occs: &[Occurrence], n: usize) -> f64 {
    let mut total = 0.0;
    let mut current_seq = u32::MAX;
    let mut current_max = 0.0f64;
    for occ in occs {
        if occ.seq != current_seq {
            total += current_max;
            current_seq = occ.seq;
            current_max = 0.0;
        }
        current_max = current_max.max(occ.product);
    }
    total += current_max;
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelwise::mine_levelwise;
    use noisemine_core::matching::{db_match, MatchMetric};
    use noisemine_core::Alphabet;
    use noisemine_seqdb::MemoryDb;

    fn db() -> Vec<Vec<Symbol>> {
        let a = Alphabet::synthetic(5);
        vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
        ]
    }

    #[test]
    fn matches_levelwise_exactly() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let space = PatternSpace::contiguous(4);
        for threshold in [0.05, 0.15, 0.3] {
            let dfs = mine_depth_first(&seqs, &matrix, threshold, &space);
            let mem = MemoryDb::from_sequences(seqs.clone());
            let lw = mine_levelwise(
                &mem,
                &MatchMetric { matrix: &matrix },
                5,
                threshold,
                &space,
                usize::MAX,
            );
            assert_eq!(dfs.pattern_set(), lw.pattern_set(), "threshold {threshold}");
            // Values agree with the oracle.
            let mem_seqs = MemoryDb::from_sequences(seqs.clone());
            for (p, v) in &dfs.frequent {
                let exact = db_match(p, &mem_seqs, &matrix);
                assert!((exact - v).abs() < 1e-12, "{p}: {v} vs {exact}");
            }
        }
    }

    #[test]
    fn gapped_space_matches_levelwise() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let space = PatternSpace::new(1, 4).unwrap();
        let dfs = mine_depth_first(&seqs, &matrix, 0.15, &space);
        let mem = MemoryDb::from_sequences(seqs);
        let lw = mine_levelwise(
            &mem,
            &MatchMetric { matrix: &matrix },
            5,
            0.15,
            &space,
            usize::MAX,
        );
        // Depth-first explores all patterns >= threshold whose *prefixes*
        // are frequent; level-wise prunes on *all* subpatterns. Both are
        // supersets of neither: with the match metric every subpattern of a
        // frequent pattern is frequent (Apriori), so the sets coincide.
        assert_eq!(dfs.pattern_set(), lw.pattern_set());
        assert!(dfs.frequent.iter().any(|(p, _)| p.max_gap() == 1));
    }

    #[test]
    fn identity_matrix_equals_support_semantics() {
        let seqs = db();
        let id = CompatibilityMatrix::identity(5);
        let space = PatternSpace::contiguous(4);
        let dfs = mine_depth_first(&seqs, &id, 0.5, &space);
        let a = Alphabet::synthetic(5);
        // "d1 d0" has support 0.5 (sequences 2 and 3).
        assert!(dfs
            .pattern_set()
            .contains(&Pattern::parse("d1 d0", &a).unwrap()));
        for (_, v) in &dfs.frequent {
            assert!(*v >= 0.5);
        }
    }

    #[test]
    fn empty_input() {
        let r = mine_depth_first(
            &[],
            &CompatibilityMatrix::identity(3),
            0.1,
            &PatternSpace::contiguous(3),
        );
        assert!(r.frequent.is_empty());
        assert_eq!(r.max_depth, 0);
    }

    #[test]
    fn respects_max_len() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let dfs = mine_depth_first(&seqs, &matrix, 0.01, &PatternSpace::contiguous(2));
        assert!(dfs.frequent.iter().all(|(p, _)| p.len() <= 2));
        assert!(dfs.max_depth <= 2);
    }
}
