//! Coarse-to-fine mining for huge alphabets — the paper's stated future
//! work ("strategies that can further improve the performance … where a
//! huge number of distinct symbols exist (e.g., E-Commerce)", Section 6).
//!
//! The idea: compatible symbols are near-substitutes, so they cluster.
//! Union-find over the compatibility matrix's strong entries yields symbol
//! **groups**; mining first runs over the quotient alphabet (one symbol
//! per group) with an upper-bounding quotient matrix, then refines each
//! coarse survivor into concrete patterns. Soundness comes from the
//! quotient matrix taking the **maximum** compatibility across group
//! members: a coarse pattern's match upper-bounds every refinement's
//! match, so coarse-infrequent skeletons can be pruned without ever
//! enumerating their `|G|^k` refinements.
//!
//! The output is exactly the plain level-wise frequent set; only the number
//! of evaluated candidates changes (see `table_hierarchical` in the bench
//! crate).

use std::collections::HashSet;

use noisemine_core::candidates::{next_level, LevelTrace, PatternSpace};
use noisemine_core::lattice::Border;
use noisemine_core::matching::{sequence_match, SymbolMatchScratch};
use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::pattern::{Pattern, PatternElem};
use noisemine_core::Symbol;

/// A partition of the alphabet into compatibility groups.
#[derive(Debug, Clone)]
pub struct SymbolGrouping {
    /// `group_of[symbol] = group id`.
    group_of: Vec<u16>,
    /// Members of each group, sorted by symbol id.
    members: Vec<Vec<Symbol>>,
}

impl SymbolGrouping {
    /// Clusters symbols by union-find over matrix entries: `i` and `j` land
    /// in one group when `C(i, j) ≥ min_compat` or `C(j, i) ≥ min_compat`
    /// for `i ≠ j`. `min_compat = 1.0` (or any value above every
    /// off-diagonal entry) yields singleton groups; small values merge
    /// everything.
    pub fn from_matrix(matrix: &CompatibilityMatrix, min_compat: f64) -> Self {
        let m = matrix.len();
        let mut parent: Vec<usize> = (0..m).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for j in 0..m {
            for &(i, v) in matrix.column(Symbol(j as u16)) {
                if i.index() != j && v >= min_compat {
                    let (a, b) = (find(&mut parent, i.index()), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        // Densify group ids in first-appearance order for determinism.
        let mut group_of = vec![u16::MAX; m];
        let mut members: Vec<Vec<Symbol>> = Vec::new();
        for s in 0..m {
            let root = find(&mut parent, s);
            if group_of[root] == u16::MAX {
                group_of[root] = members.len() as u16;
                members.push(Vec::new());
            }
            group_of[s] = group_of[root];
            members[group_of[s] as usize].push(Symbol(s as u16));
        }
        Self { group_of, members }
    }

    /// Number of groups (the quotient alphabet size).
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// The group id of a symbol.
    pub fn group(&self, symbol: Symbol) -> Symbol {
        Symbol(self.group_of[symbol.index()])
    }

    /// The member symbols of a group.
    pub fn members(&self, group: Symbol) -> &[Symbol] {
        &self.members[group.index()]
    }

    /// Maps a sequence to the quotient alphabet.
    pub fn map_sequence(&self, sequence: &[Symbol]) -> Vec<Symbol> {
        sequence.iter().map(|&s| self.group(s)).collect()
    }

    /// Maps a pattern to its group skeleton.
    pub fn map_pattern(&self, pattern: &Pattern) -> Pattern {
        let elems: Vec<PatternElem> = pattern
            .elems()
            .iter()
            .map(|e| match e {
                PatternElem::Any => PatternElem::Any,
                PatternElem::Sym(s) => PatternElem::Sym(self.group(*s)),
            })
            .collect();
        Pattern::new(elems).expect("group image preserves endpoints")
    }

    /// The upper-bounding quotient score matrix:
    /// `C'(G, H) = max_{i∈G, j∈H} C(i, j)`. Not column-stochastic (it is a
    /// bound, not a distribution), but every entry stays in `[0, 1]`, which
    /// is all the Apriori machinery needs.
    pub fn quotient_matrix(&self, matrix: &CompatibilityMatrix) -> CompatibilityMatrix {
        let g = self.num_groups();
        let mut cols: Vec<Vec<(Symbol, f64)>> = vec![Vec::new(); g];
        let mut dense: Vec<f64> = vec![0.0; g * g];
        for j in 0..matrix.len() {
            let gj = self.group_of[j] as usize;
            for &(i, v) in matrix.column(Symbol(j as u16)) {
                let gi = self.group_of[i.index()] as usize;
                let slot = &mut dense[gi * g + gj];
                if v > *slot {
                    *slot = v;
                }
            }
        }
        for (idx, &v) in dense.iter().enumerate() {
            if v > 0.0 {
                let (gi, gj) = (idx / g, idx % g);
                cols[gj].push((Symbol(gi as u16), v));
            }
        }
        CompatibilityMatrix::scores_from_sparse_columns(cols)
            .expect("quotient entries are maxima of probabilities")
    }
}

/// Result of a hierarchical mining run.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalResult {
    /// Every frequent (fine) pattern with its exact match.
    pub frequent: Vec<(Pattern, f64)>,
    /// The border of frequent patterns.
    pub border: Border,
    /// Number of groups used.
    pub groups: usize,
    /// Coarse candidates evaluated over the quotient alphabet.
    pub coarse_evaluated: usize,
    /// Fine candidates evaluated (after skeleton pruning).
    pub fine_evaluated: usize,
    /// Fine candidates pruned because their skeleton was coarse-infrequent.
    pub skeleton_pruned: usize,
    /// Per-level trace of the fine search.
    pub trace: LevelTrace,
}

impl HierarchicalResult {
    /// The frequent patterns as a set.
    pub fn pattern_set(&self) -> HashSet<Pattern> {
        self.frequent.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// Mines all patterns with match ≥ `min_match`, coarse-to-fine: symbols are
/// grouped at `min_compat`, the quotient alphabet is mined with the
/// upper-bounding quotient matrix, and fine candidates are enumerated only
/// along coarse-frequent skeletons. Produces exactly the plain level-wise
/// frequent set.
pub fn mine_hierarchical(
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    min_match: f64,
    space: &PatternSpace,
    min_compat: f64,
) -> HierarchicalResult {
    let mut result = HierarchicalResult::default();
    let n = sequences.len();
    let m = matrix.len();
    if n == 0 || m == 0 {
        return result;
    }

    // Coarse pass over the quotient alphabet.
    let grouping = SymbolGrouping::from_matrix(matrix, min_compat);
    result.groups = grouping.num_groups();
    let quotient = grouping.quotient_matrix(matrix);
    let coarse_seqs: Vec<Vec<Symbol>> =
        sequences.iter().map(|s| grouping.map_sequence(s)).collect();
    let coarse_frequent = levelwise_set(
        &coarse_seqs,
        &quotient,
        min_match,
        space,
        &mut result.coarse_evaluated,
    );

    // Fine pass, pruning candidates whose skeleton is coarse-infrequent.
    let mut scratch = SymbolMatchScratch::new(m);
    let mut symbol_match = vec![0.0f64; m];
    for seq in sequences {
        for (acc, &v) in symbol_match.iter_mut().zip(scratch.sequence(seq, matrix)) {
            *acc += v;
        }
    }
    for v in &mut symbol_match {
        *v /= n as f64;
    }
    result.fine_evaluated += m;

    let mut alive: HashSet<Pattern> = HashSet::new();
    let mut survivors: Vec<Pattern> = Vec::new();
    let mut surviving_symbols: Vec<Symbol> = Vec::new();
    let mut survived = 0usize;
    for (i, &v) in symbol_match.iter().enumerate() {
        let p = Pattern::single(Symbol(i as u16));
        if v >= min_match {
            debug_assert!(
                coarse_frequent.contains(&grouping.map_pattern(&p)),
                "coarse bound must dominate: {p}"
            );
            result.frequent.push((p.clone(), v));
            alive.insert(p.clone());
            surviving_symbols.push(Symbol(i as u16));
            survivors.push(p);
            survived += 1;
        }
    }
    result.trace.record(m, survived);

    while !survivors.is_empty() {
        let candidates = next_level(&survivors, &alive, &surviving_symbols, space);
        if candidates.is_empty() {
            break;
        }
        // Skeleton pruning: only candidates whose group image is coarse-
        // frequent can possibly reach the threshold.
        let (keep, pruned): (Vec<Pattern>, Vec<Pattern>) = candidates
            .into_iter()
            .partition(|p| coarse_frequent.contains(&grouping.map_pattern(p)));
        result.skeleton_pruned += pruned.len();
        result.fine_evaluated += keep.len();

        let mut next_survivors = Vec::new();
        for pattern in keep.iter() {
            let total: f64 = sequences
                .iter()
                .map(|s| sequence_match(pattern, s, matrix))
                .sum();
            let value = total / n as f64;
            if value >= min_match {
                result.frequent.push((pattern.clone(), value));
                alive.insert(pattern.clone());
                next_survivors.push(pattern.clone());
            }
        }
        result
            .trace
            .record(keep.len() + pruned.len(), next_survivors.len());
        survivors = next_survivors;
    }

    result.frequent.sort_by(|a, b| a.0.cmp(&b.0));
    result.border = Border::from_patterns(result.frequent.iter().map(|(p, _)| p.clone()));
    result
}

/// Plain level-wise frequent-set computation over in-memory sequences,
/// counting evaluated candidates (used for the coarse pass).
fn levelwise_set(
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    min_match: f64,
    space: &PatternSpace,
    evaluated: &mut usize,
) -> HashSet<Pattern> {
    let n = sequences.len();
    let m = matrix.len();
    let mut scratch = SymbolMatchScratch::new(m);
    let mut symbol_match = vec![0.0f64; m];
    for seq in sequences {
        for (acc, &v) in symbol_match.iter_mut().zip(scratch.sequence(seq, matrix)) {
            *acc += v;
        }
    }
    for v in &mut symbol_match {
        *v /= n as f64;
    }
    *evaluated += m;

    let mut frequent: HashSet<Pattern> = HashSet::new();
    let mut survivors: Vec<Pattern> = Vec::new();
    let mut surviving_symbols: Vec<Symbol> = Vec::new();
    for (i, &v) in symbol_match.iter().enumerate() {
        if v >= min_match {
            let p = Pattern::single(Symbol(i as u16));
            frequent.insert(p.clone());
            surviving_symbols.push(Symbol(i as u16));
            survivors.push(p);
        }
    }
    let mut alive = frequent.clone();
    while !survivors.is_empty() {
        let candidates = next_level(&survivors, &alive, &surviving_symbols, space);
        if candidates.is_empty() {
            break;
        }
        *evaluated += candidates.len();
        let mut next_survivors = Vec::new();
        for pattern in candidates {
            let total: f64 = sequences
                .iter()
                .map(|s| sequence_match(&pattern, s, matrix))
                .sum();
            if total / n as f64 >= min_match {
                frequent.insert(pattern.clone());
                alive.insert(pattern.clone());
                next_survivors.push(pattern);
            }
        }
        survivors = next_survivors;
    }
    frequent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelwise::mine_levelwise;
    use noisemine_core::matching::MatchMetric;
    use noisemine_core::Alphabet;
    use noisemine_datagen::noise::{channel_to_compatibility, partner_channel};
    use noisemine_datagen::{apply_channel, generate, Background, GeneratorConfig, PlantedMotif};
    use noisemine_seqdb::MemoryDb;

    /// A 12-symbol alphabet with symmetric substitute pairs.
    fn paired_workload() -> (Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let alphabet = Alphabet::synthetic(12);
        let motif = Pattern::parse("d0 d2 d4 d6", &alphabet).unwrap();
        let standard = generate(&GeneratorConfig {
            num_sequences: 200,
            min_len: 15,
            max_len: 20,
            alphabet_size: 12,
            background: Background::Uniform,
            motifs: vec![PlantedMotif::new(motif, 0.5)],
            seed: 77,
        });
        let partners: Vec<Vec<usize>> = (0..12).map(|i| vec![i ^ 1]).collect();
        let channel = partner_channel(12, 0.25, &partners);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
        let noisy = apply_channel(&standard, &channel, &mut rng);
        let matrix = channel_to_compatibility(&channel)
            .diagonal_normalized_clamped()
            .unwrap();
        (noisy, matrix)
    }

    #[test]
    fn grouping_unions_compatible_pairs() {
        let (_, matrix) = paired_workload();
        // Pair partners are strongly compatible -> 6 groups of 2.
        let grouping = SymbolGrouping::from_matrix(&matrix, 0.1);
        assert_eq!(grouping.num_groups(), 6);
        for i in 0..12u16 {
            assert_eq!(grouping.group(Symbol(i)), grouping.group(Symbol(i ^ 1)));
        }
        assert_eq!(grouping.members(grouping.group(Symbol(0))).len(), 2);
        // A threshold above every off-diagonal entry keeps singletons.
        let singletons = SymbolGrouping::from_matrix(&matrix, 1.1);
        assert_eq!(singletons.num_groups(), 12);
    }

    #[test]
    fn quotient_matrix_upper_bounds_fine_matches() {
        let (seqs, matrix) = paired_workload();
        let grouping = SymbolGrouping::from_matrix(&matrix, 0.1);
        let quotient = grouping.quotient_matrix(&matrix);
        let alphabet = Alphabet::synthetic(12);
        for text in ["d0 d2", "d1 d3 d5", "d0 * d4"] {
            let fine = Pattern::parse(text, &alphabet).unwrap();
            let coarse = grouping.map_pattern(&fine);
            for seq in seqs.iter().take(30) {
                let fine_v = sequence_match(&fine, seq, &matrix);
                let coarse_v = sequence_match(&coarse, &grouping.map_sequence(seq), &quotient);
                assert!(
                    coarse_v >= fine_v - 1e-12,
                    "{text}: coarse {coarse_v} < fine {fine_v}"
                );
            }
        }
    }

    #[test]
    fn hierarchical_equals_plain_levelwise() {
        let (seqs, matrix) = paired_workload();
        let space = PatternSpace::contiguous(5);
        for threshold in [0.15, 0.3] {
            let hier = mine_hierarchical(&seqs, &matrix, threshold, &space, 0.1);
            let db = MemoryDb::from_sequences(seqs.clone());
            let plain = mine_levelwise(
                &db,
                &MatchMetric { matrix: &matrix },
                12,
                threshold,
                &space,
                usize::MAX,
            );
            assert_eq!(
                hier.pattern_set(),
                plain.pattern_set(),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn skeleton_pruning_reduces_fine_evaluations() {
        let (seqs, matrix) = paired_workload();
        let space = PatternSpace::contiguous(5);
        let hier = mine_hierarchical(&seqs, &matrix, 0.2, &space, 0.1);
        assert!(hier.groups < 12);
        assert!(
            hier.skeleton_pruned > 0,
            "expected some skeleton-pruned candidates"
        );
        // Every pruned candidate is one the plain level-wise search would
        // have evaluated against the full data; the coarse pass paid for
        // the pruning over a 6-symbol quotient instead.
        assert!(hier.coarse_evaluated > 0);
    }

    #[test]
    fn singleton_grouping_degrades_gracefully() {
        let (seqs, matrix) = paired_workload();
        let space = PatternSpace::contiguous(4);
        let hier = mine_hierarchical(&seqs, &matrix, 0.25, &space, 1.1);
        assert_eq!(hier.groups, 12);
        let db = MemoryDb::from_sequences(seqs);
        let plain = mine_levelwise(
            &db,
            &MatchMetric { matrix: &matrix },
            12,
            0.25,
            &space,
            usize::MAX,
        );
        assert_eq!(hier.pattern_set(), plain.pattern_set());
    }

    #[test]
    fn empty_input() {
        let matrix = CompatibilityMatrix::identity(4);
        let r = mine_hierarchical(&[], &matrix, 0.1, &PatternSpace::contiguous(3), 0.5);
        assert!(r.frequent.is_empty());
        assert_eq!(r.groups, 0);
    }
}
