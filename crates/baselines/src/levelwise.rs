//! Exact level-wise (Apriori) mining over the full database.
//!
//! The paper observes that "any algorithm powered by the Apriori property
//! can be adopted to mine frequent patterns according to the match metric"
//! (§3) — this module is that direct generalization, parameterized by a
//! [`PatternMetric`] so it runs under both the *match* and the *support*
//! model. It is used as:
//!
//! - the exact oracle that probabilistic miners are validated against,
//! - the support-model miner of the robustness experiments (Fig. 7/8),
//! - the per-level candidate census of Fig. 9, and
//! - the deterministic multi-scan strawman of Fig. 14.
//!
//! Cost model: evaluating candidates requires match counters in memory; with
//! a budget of `counters_per_scan`, a level with `c` candidates costs
//! `⌈c / budget⌉` scans. Every level costs at least one scan, which is what
//! makes level-wise search expensive for long patterns.

use std::collections::HashSet;

use noisemine_core::candidates::{next_level, LevelTrace, PatternSpace};
use noisemine_core::lattice::Border;
use noisemine_core::matching::{PatternMetric, SequenceScan};
use noisemine_core::pattern::Pattern;
use noisemine_core::Symbol;

/// Result of an exact level-wise mining run.
#[derive(Debug, Clone, Default)]
pub struct LevelwiseResult {
    /// Every frequent pattern with its exact metric value.
    pub frequent: Vec<(Pattern, f64)>,
    /// The border (maximal frequent patterns).
    pub border: Border,
    /// Candidates / survivors per level (Fig. 9 instrumentation).
    pub trace: LevelTrace,
    /// Full database scans consumed.
    pub scans: usize,
}

impl LevelwiseResult {
    /// The frequent patterns as a set (for comparisons in tests/experiments).
    pub fn pattern_set(&self) -> HashSet<Pattern> {
        self.frequent.iter().map(|(p, _)| p.clone()).collect()
    }

    /// Looks up the exact value of a frequent pattern.
    pub fn value_of(&self, pattern: &Pattern) -> Option<f64> {
        self.frequent
            .iter()
            .find(|(p, _)| p == pattern)
            .map(|&(_, v)| v)
    }
}

/// Evaluates the database-average metric value of many patterns, charging
/// `⌈patterns / budget⌉` scans against the counter budget.
pub fn evaluate_patterns<S, M>(
    patterns: &[Pattern],
    db: &S,
    metric: &M,
    counters_per_scan: usize,
    scans: &mut usize,
) -> Vec<f64>
where
    S: SequenceScan + ?Sized,
    M: PatternMetric,
{
    assert!(counters_per_scan >= 1);
    let n = db.num_sequences();
    let mut values = vec![0.0f64; patterns.len()];
    if n == 0 || patterns.is_empty() {
        return values;
    }
    for (chunk_idx, chunk) in patterns.chunks(counters_per_scan).enumerate() {
        let base = chunk_idx * counters_per_scan;
        db.scan(&mut |_, seq| {
            for (i, p) in chunk.iter().enumerate() {
                values[base + i] += metric.sequence_value(p, seq);
            }
        });
        *scans += 1;
    }
    for v in &mut values {
        *v /= n as f64;
    }
    values
}

/// Mines all patterns whose database-average metric value meets
/// `min_value`, level by level, with exact counting. `m` is the alphabet
/// size (number of distinct symbols).
pub fn mine_levelwise<S, M>(
    db: &S,
    metric: &M,
    m: usize,
    min_value: f64,
    space: &PatternSpace,
    counters_per_scan: usize,
) -> LevelwiseResult
where
    S: SequenceScan + ?Sized,
    M: PatternMetric,
{
    let mut result = LevelwiseResult::default();
    let n = db.num_sequences();
    if n == 0 || m == 0 {
        return result;
    }

    // Level 1: one scan computes every symbol's value via the metric's
    // symbol kernel (Algorithm 4.1 for match; a presence bitmap for support).
    let mut symbol_values = vec![0.0f64; m];
    {
        let mut per_seq = vec![0.0f64; m];
        db.scan(&mut |_, seq| {
            metric.symbol_values(seq, m, &mut per_seq);
            for (acc, &v) in symbol_values.iter_mut().zip(&per_seq) {
                *acc += v;
            }
        });
        result.scans += 1;
        for v in &mut symbol_values {
            *v /= n as f64;
        }
    }

    let mut alive: HashSet<Pattern> = HashSet::new();
    let mut survivors: Vec<Pattern> = Vec::new();
    let mut surviving_symbols: Vec<Symbol> = Vec::new();
    let mut level1_survived = 0usize;
    for (i, &v) in symbol_values.iter().enumerate() {
        let p = Pattern::single(Symbol(i as u16));
        if v >= min_value {
            result.frequent.push((p.clone(), v));
            alive.insert(p.clone());
            surviving_symbols.push(Symbol(i as u16));
            survivors.push(p);
            level1_survived += 1;
        }
    }
    result.trace.record(m, level1_survived);

    // Levels 2..: generate candidates, count exactly, prune.
    while !survivors.is_empty() {
        let candidates = next_level(&survivors, &alive, &surviving_symbols, space);
        if candidates.is_empty() {
            break;
        }
        let values = evaluate_patterns(
            &candidates,
            db,
            metric,
            counters_per_scan,
            &mut result.scans,
        );
        let mut next_survivors = Vec::new();
        for (p, v) in candidates.iter().zip(&values) {
            if *v >= min_value {
                result.frequent.push((p.clone(), *v));
                alive.insert(p.clone());
                next_survivors.push(p.clone());
            }
        }
        result.trace.record(candidates.len(), next_survivors.len());
        survivors = next_survivors;
    }

    result.border = Border::from_patterns(result.frequent.iter().map(|(p, _)| p.clone()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::matching::{db_match, db_support, MatchMetric, SupportMetric};
    use noisemine_core::{Alphabet, CompatibilityMatrix};
    use noisemine_seqdb::MemoryDb;

    fn db() -> MemoryDb {
        let a = Alphabet::synthetic(5);
        MemoryDb::from_sequences(vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
        ])
    }

    #[test]
    fn support_model_mining_is_exact() {
        let database = db();
        let space = PatternSpace::contiguous(4);
        let r = mine_levelwise(&database, &SupportMetric, 5, 0.5, &space, 100);
        // Symbols with support >= 0.5: d0 (3/4), d1 (4/4), d2 (0.5), d3 (0.5).
        let set = r.pattern_set();
        let a = Alphabet::synthetic(5);
        assert!(set.contains(&Pattern::parse("d0", &a).unwrap()));
        assert!(set.contains(&Pattern::parse("d1", &a).unwrap()));
        assert!(set.contains(&Pattern::parse("d2", &a).unwrap()));
        assert!(set.contains(&Pattern::parse("d3", &a).unwrap()));
        assert!(!set.contains(&Pattern::parse("d4", &a).unwrap()));
        // "d1 d0" occurs in sequences 2 and 3 -> support 0.5.
        assert!(set.contains(&Pattern::parse("d1 d0", &a).unwrap()));
        for (p, v) in &r.frequent {
            assert!((db_support(p, &database) - v).abs() < 1e-12);
            assert!(*v >= 0.5);
        }
    }

    #[test]
    fn match_model_mining_agrees_with_oracle_values() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(4);
        let r = mine_levelwise(&database, &metric, 5, 0.15, &space, 100);
        assert!(!r.frequent.is_empty());
        for (p, v) in &r.frequent {
            let exact = db_match(p, &database, &matrix);
            assert!((exact - v).abs() < 1e-12);
            assert!(*v >= 0.15);
        }
        // Downward closure: every immediate subpattern of a frequent pattern
        // is frequent.
        let set = r.pattern_set();
        for (p, _) in &r.frequent {
            for sub in p.immediate_subpatterns() {
                if space.admits(&sub) {
                    assert!(set.contains(&sub), "missing subpattern {sub} of {p}");
                }
            }
        }
    }

    #[test]
    fn match_model_finds_more_than_support_model_at_low_threshold() {
        // §5.2: at the paper's low thresholds (0.001) the match model
        // explores more candidates per level than the support model, because
        // partial matches give many patterns a small positive match.
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(4);
        let threshold = 0.001;
        let match_r = mine_levelwise(&database, &metric, 5, threshold, &space, 100);
        let support_r = mine_levelwise(&database, &SupportMetric, 5, threshold, &space, 100);
        assert!(match_r.frequent.len() > support_r.frequent.len());
        assert!(match_r.trace.total_candidates() > support_r.trace.total_candidates());
        // And the match tail extends to deeper levels (Fig. 9's slower decay).
        assert!(match_r.trace.levels() >= support_r.trace.levels());
    }

    #[test]
    fn counter_budget_charges_extra_scans() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(3);
        let generous = mine_levelwise(&database, &metric, 5, 0.1, &space, 10_000);
        let tight = mine_levelwise(&database, &metric, 5, 0.1, &space, 2);
        assert_eq!(generous.pattern_set(), tight.pattern_set());
        assert!(tight.scans > generous.scans);
        // Generous budget: exactly one scan per explored level.
        assert_eq!(generous.scans, generous.trace.levels());
    }

    #[test]
    fn empty_database_mines_nothing() {
        let database = MemoryDb::new();
        let matrix = CompatibilityMatrix::paper_figure2();
        let metric = MatchMetric { matrix: &matrix };
        let r = mine_levelwise(&database, &metric, 5, 0.1, &PatternSpace::contiguous(3), 10);
        assert!(r.frequent.is_empty());
        assert_eq!(r.scans, 0);
    }

    #[test]
    fn evaluate_patterns_chunks_scans() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let metric = MatchMetric { matrix: &matrix };
        let a = Alphabet::synthetic(5);
        let patterns: Vec<Pattern> = ["d0", "d1", "d2", "d3", "d4"]
            .iter()
            .map(|t| Pattern::parse(t, &a).unwrap())
            .collect();
        let mut scans = 0;
        let values = evaluate_patterns(&patterns, &database, &metric, 2, &mut scans);
        assert_eq!(scans, 3); // ceil(5 / 2)
        for (p, v) in patterns.iter().zip(&values) {
            assert!((db_match(p, &database, &matrix) - v).abs() < 1e-12);
        }
    }
}
