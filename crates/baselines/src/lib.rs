//! # noisemine-baselines
//!
//! The comparison algorithms of the paper's evaluation (Section 5):
//!
//! - [`levelwise`] — exact level-wise (Apriori) mining, generic over the
//!   match/support [`noisemine_core::matching::PatternMetric`]; the oracle
//!   and the support-model miner;
//! - [`maxminer`] — a Max-Miner-style look-ahead miner adapted to sequences
//!   and the match metric (Fig. 14's deterministic baseline);
//! - [`toivonen`] — sampling followed by level-wise finalization (Fig. 14's
//!   sampling baseline);
//! - [`depthfirst`] — projection-based depth-first mining for
//!   memory-resident data (the §2.2 alternative the paper sets aside);
//! - [`topk`] — best-first top-k mining, an extension that removes the
//!   need to guess `min_match`;
//! - [`hierarchical`] — coarse-to-fine mining over symbol groups, the
//!   paper's stated future work for huge alphabets (Section 6).

pub mod depthfirst;
pub mod hierarchical;
pub mod levelwise;
pub mod maxminer;
pub mod toivonen;
pub mod topk;

pub use depthfirst::{mine_depth_first, DepthFirstResult};
pub use hierarchical::{mine_hierarchical, HierarchicalResult, SymbolGrouping};
pub use levelwise::{evaluate_patterns, mine_levelwise, LevelwiseResult};
pub use maxminer::{mine_maxminer, MaxMinerConfig, MaxMinerResult};
pub use toivonen::{mine_toivonen, toivonen_config, ToivonenResult};
pub use topk::{mine_top_k, TopKResult};
