//! A Max-Miner-style look-ahead miner adapted to sequential patterns and
//! the match metric (Bayardo, SIGMOD 1998 — the deterministic long-pattern
//! baseline of the paper's Figure 14).
//!
//! Max-Miner's essence is *look-ahead*: alongside the level-`k` candidates,
//! each scan also counts speculative **long** candidates; if such a pattern
//! proves frequent, all of its subpatterns are frequent by the Apriori
//! property and need never be counted — entire levels of the search
//! collapse. For itemsets the speculative candidate is "head ∪ full tail";
//! for *sequences* no such canonical completion exists, so this adaptation
//! builds each speculative candidate by greedily chaining the strongest
//! observed pairwise transitions: from the last concrete symbol `a`, follow
//! the extension `(gap, b)` whose 2-pattern value `v(a ⋯ b)` is highest,
//! while that value stays above the threshold. On motif-bearing data the
//! transition chain reconstructs the motif, which is exactly the situation
//! where look-ahead pays off.
//!
//! Like the original, this remains a deterministic, full-database,
//! breadth-first algorithm: every counting pass is a real database scan —
//! which is why the paper's sampling + border-collapsing approach beats it
//! on scans (Fig. 14(b)).

use std::collections::{HashMap, HashSet};

use noisemine_core::candidates::{next_level, LevelTrace, PatternSpace};
use noisemine_core::lattice::Border;
use noisemine_core::matching::{PatternMetric, SequenceScan};
use noisemine_core::pattern::Pattern;
use noisemine_core::Symbol;

use crate::levelwise::evaluate_patterns;

/// Result of a Max-Miner run.
#[derive(Debug, Clone, Default)]
pub struct MaxMinerResult {
    /// Every frequent pattern discovered, with its exact value where it was
    /// counted (`None` when implied by a frequent look-ahead superpattern).
    pub frequent: Vec<(Pattern, Option<f64>)>,
    /// The border (maximal frequent patterns).
    pub border: Border,
    /// Full database scans consumed.
    pub scans: usize,
    /// Look-ahead candidates that proved frequent.
    pub lookahead_hits: usize,
    /// Candidates counted / survivors per level.
    pub trace: LevelTrace,
}

impl MaxMinerResult {
    /// The frequent patterns as a set.
    pub fn pattern_set(&self) -> HashSet<Pattern> {
        self.frequent.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// Configuration of the look-ahead.
#[derive(Debug, Clone, Copy)]
pub struct MaxMinerConfig {
    /// Maximum number of speculative long candidates counted per scan.
    pub lookaheads_per_scan: usize,
    /// Counter budget per scan (shared with level candidates).
    pub counters_per_scan: usize,
}

impl Default for MaxMinerConfig {
    fn default() -> Self {
        Self {
            lookaheads_per_scan: 64,
            counters_per_scan: 10_000,
        }
    }
}

/// Runs the look-ahead miner. `m` is the alphabet size.
pub fn mine_maxminer<S, M>(
    db: &S,
    metric: &M,
    m: usize,
    min_value: f64,
    space: &PatternSpace,
    config: &MaxMinerConfig,
) -> MaxMinerResult
where
    S: SequenceScan + ?Sized,
    M: PatternMetric,
{
    let mut result = MaxMinerResult::default();
    let n = db.num_sequences();
    if n == 0 || m == 0 {
        return result;
    }

    // Scan 1: symbol values.
    let mut symbol_values = vec![0.0f64; m];
    {
        let mut per_seq = vec![0.0f64; m];
        db.scan(&mut |_, seq| {
            metric.symbol_values(seq, m, &mut per_seq);
            for (acc, &v) in symbol_values.iter_mut().zip(&per_seq) {
                *acc += v;
            }
        });
        result.scans += 1;
        for v in &mut symbol_values {
            *v /= n as f64;
        }
    }

    let mut alive: HashSet<Pattern> = HashSet::new();
    // Confirmed long frequent patterns (look-ahead hits); any candidate
    // covered by one is frequent without counting.
    let mut confirmed = Border::new();
    let mut survivors: Vec<Pattern> = Vec::new();
    let mut surviving_symbols: Vec<Symbol> = Vec::new();
    let mut survived1 = 0usize;
    for (i, &v) in symbol_values.iter().enumerate() {
        if v >= min_value {
            let p = Pattern::single(Symbol(i as u16));
            result.frequent.push((p.clone(), Some(v)));
            alive.insert(p.clone());
            survivors.push(p);
            surviving_symbols.push(Symbol(i as u16));
            survived1 += 1;
        }
    }
    result.trace.record(m, survived1);

    // Pairwise transition table, filled when level 2 is counted:
    // transitions[a] = [(gap, b, value)] sorted descending by value.
    let mut transitions: HashMap<Symbol, Vec<(usize, Symbol, f64)>> = HashMap::new();

    while !survivors.is_empty() {
        let candidates = next_level(&survivors, &alive, &surviving_symbols, space);
        if candidates.is_empty() {
            break;
        }

        // Split off candidates already implied frequent by a look-ahead hit.
        let (implied, to_count): (Vec<Pattern>, Vec<Pattern>) = candidates
            .iter()
            .cloned()
            .partition(|p| confirmed.covers(p));

        // Speculative long candidates for this scan.
        let lookaheads = build_lookaheads(
            &survivors,
            &transitions,
            min_value,
            space,
            config.lookaheads_per_scan,
            &confirmed,
        );

        let mut batch = to_count.clone();
        batch.extend(lookaheads.iter().cloned());
        let values = if batch.is_empty() {
            Vec::new()
        } else {
            evaluate_patterns(
                &batch,
                db,
                metric,
                config.counters_per_scan,
                &mut result.scans,
            )
        };

        let mut next_survivors: Vec<Pattern> = Vec::new();
        for p in implied {
            result.frequent.push((p.clone(), None));
            alive.insert(p.clone());
            next_survivors.push(p);
        }
        for (p, &v) in to_count.iter().zip(&values) {
            if v >= min_value {
                result.frequent.push((p.clone(), Some(v)));
                alive.insert(p.clone());
                next_survivors.push(p.clone());
                record_transition(&mut transitions, p, v);
            }
        }
        for (p, &v) in lookaheads.iter().zip(values[to_count.len()..].iter()) {
            if v >= min_value {
                result.lookahead_hits += 1;
                confirmed.insert(p.clone());
                result.frequent.push((p.clone(), Some(v)));
            }
        }
        result.trace.record(batch.len(), next_survivors.len());
        survivors = next_survivors;
    }

    // A look-ahead hit is recorded at probe time and may be regenerated as a
    // level candidate later; deduplicate, preferring entries with a counted
    // value.
    let mut best: HashMap<Pattern, Option<f64>> = HashMap::new();
    for (p, v) in result.frequent.drain(..) {
        let slot = best.entry(p).or_insert(None);
        if slot.is_none() {
            *slot = v;
        }
    }
    result.frequent = best.into_iter().collect();
    result.frequent.sort_by(|a, b| a.0.cmp(&b.0));

    result.border = Border::from_patterns(result.frequent.iter().map(|(p, _)| p.clone()));
    result
}

/// Records the transition strength of a 2-pattern `a (gap ×*) b`.
fn record_transition(
    transitions: &mut HashMap<Symbol, Vec<(usize, Symbol, f64)>>,
    pattern: &Pattern,
    value: f64,
) {
    if pattern.non_eternal_count() != 2 {
        return;
    }
    let syms: Vec<Symbol> = pattern.symbols().collect();
    let gap = pattern.len() - 2;
    let entry = transitions.entry(syms[0]).or_default();
    entry.push((gap, syms[1], value));
    entry.sort_by(|a, b| b.2.total_cmp(&a.2));
}

/// Builds speculative long candidates: each survivor extended greedily along
/// the strongest frequent transitions until the space bounds or a dead end.
fn build_lookaheads(
    survivors: &[Pattern],
    transitions: &HashMap<Symbol, Vec<(usize, Symbol, f64)>>,
    min_value: f64,
    space: &PatternSpace,
    limit: usize,
    confirmed: &Border,
) -> Vec<Pattern> {
    if transitions.is_empty() || limit == 0 {
        return Vec::new();
    }
    let mut out: Vec<Pattern> = Vec::new();
    let mut seen: HashSet<Pattern> = HashSet::new();
    for base in survivors {
        if out.len() >= limit {
            break;
        }
        let mut chain = base.clone();
        let mut last = match chain.symbols().last() {
            Some(s) => s,
            None => continue,
        };
        loop {
            let next = transitions.get(&last).and_then(|exts| {
                exts.iter()
                    .find(|&&(gap, _, v)| v >= min_value && chain.len() + gap < space.max_len)
                    .copied()
            });
            match next {
                Some((gap, sym, _)) => {
                    chain = chain.extend(gap, sym);
                    last = sym;
                }
                None => break,
            }
        }
        // Only worth a speculative counter if it jumps ahead of the frontier
        // and is not already known frequent.
        if chain.non_eternal_count() > base.non_eternal_count() + 1
            && !confirmed.covers(&chain)
            && seen.insert(chain.clone())
        {
            out.push(chain);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelwise::mine_levelwise;
    use noisemine_core::matching::MatchMetric;
    use noisemine_core::{Alphabet, CompatibilityMatrix};
    use noisemine_seqdb::MemoryDb;

    /// A database with a strong planted chain d0 d1 d2 d3 so look-ahead has
    /// something to find.
    fn motif_db() -> MemoryDb {
        let a = Alphabet::synthetic(6);
        let mut seqs = Vec::new();
        for _ in 0..8 {
            seqs.push(a.encode("d0 d1 d2 d3 d4").unwrap());
        }
        seqs.push(a.encode("d5 d4 d5").unwrap());
        seqs.push(a.encode("d4 d5 d0 d1 d2 d3").unwrap());
        MemoryDb::from_sequences(seqs)
    }

    #[test]
    fn finds_same_patterns_as_levelwise() {
        let database = motif_db();
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.1).unwrap();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(6);
        let min_value = 0.4;
        let exact = mine_levelwise(&database, &metric, 6, min_value, &space, 10_000);
        let mm = mine_maxminer(
            &database,
            &metric,
            6,
            min_value,
            &space,
            &MaxMinerConfig::default(),
        );
        assert_eq!(mm.pattern_set(), exact.pattern_set());
        // Counted values agree with the oracle.
        for (p, v) in &mm.frequent {
            if let Some(v) = v {
                let oracle = exact.value_of(p).expect("pattern in oracle set");
                assert!((v - oracle).abs() < 1e-12, "{p}");
            }
        }
    }

    #[test]
    fn lookahead_confirms_long_chain() {
        let database = motif_db();
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.05).unwrap();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(6);
        let mm = mine_maxminer(
            &database,
            &metric,
            6,
            0.4,
            &space,
            &MaxMinerConfig::default(),
        );
        assert!(
            mm.lookahead_hits > 0,
            "expected the greedy transition chain to confirm the planted motif"
        );
        let a = Alphabet::synthetic(6);
        let motif = Pattern::parse("d0 d1 d2 d3", &a).unwrap();
        assert!(mm.border.covers(&motif));
    }

    #[test]
    fn implied_patterns_carry_no_value() {
        let database = motif_db();
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.05).unwrap();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(6);
        let mm = mine_maxminer(
            &database,
            &metric,
            6,
            0.4,
            &space,
            &MaxMinerConfig::default(),
        );
        // If look-ahead hit, at least one later pattern should be implied
        // (counted as None) — the whole point of the optimization.
        if mm.lookahead_hits > 0 {
            assert!(mm.frequent.iter().any(|(_, v)| v.is_none()));
        }
    }

    #[test]
    fn disabled_lookahead_degrades_to_levelwise_scans() {
        let database = motif_db();
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.1).unwrap();
        let metric = MatchMetric { matrix: &matrix };
        let space = PatternSpace::contiguous(6);
        let cfg_off = MaxMinerConfig {
            lookaheads_per_scan: 0,
            ..MaxMinerConfig::default()
        };
        let off = mine_maxminer(&database, &metric, 6, 0.4, &space, &cfg_off);
        let exact = mine_levelwise(&database, &metric, 6, 0.4, &space, 10_000);
        assert_eq!(off.pattern_set(), exact.pattern_set());
        assert_eq!(off.scans, exact.scans);
        assert_eq!(off.lookahead_hits, 0);
    }

    #[test]
    fn empty_inputs() {
        let matrix = CompatibilityMatrix::identity(3);
        let metric = MatchMetric { matrix: &matrix };
        let r = mine_maxminer(
            &MemoryDb::new(),
            &metric,
            3,
            0.5,
            &PatternSpace::contiguous(4),
            &MaxMinerConfig::default(),
        );
        assert!(r.frequent.is_empty());
        assert_eq!(r.scans, 0);
    }
}
