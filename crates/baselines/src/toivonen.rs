//! Sampling-based level-wise mining (Toivonen, VLDB 1996 — the sampling
//! baseline of the paper's Figure 14).
//!
//! The first two phases are identical to the paper's miner: one scan for
//! per-symbol matches and a uniform sample, then Chernoff-bound
//! classification of every candidate on the sample. The difference is the
//! finalization: where the paper's algorithm collapses the two borders by
//! probing halfway layers, the sampling-based approach verifies the
//! ambiguous region **level by level** from the bottom — the "(advanced)
//! starting position of a level-wise search" (§2.3) — which costs at least
//! one scan per ambiguous level and is exactly what Figure 14 shows losing
//! to border collapsing once patterns get long.

use noisemine_core::border_collapse::{collapse, ProbeStrategy};
use noisemine_core::candidates::PatternSpace;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::lattice::{AmbiguousSpace, Border};
use noisemine_core::matching::SequenceScan;
use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::miner::{phase1, FrequentPattern, MinerConfig};
use noisemine_core::sample_miner::mine_sample_budgeted;
use noisemine_core::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a sampling + level-wise run.
#[derive(Debug, Clone)]
pub struct ToivonenResult {
    /// All frequent patterns (sample-confident plus verified).
    pub frequent: Vec<FrequentPattern>,
    /// The border of frequent patterns.
    pub border: Border,
    /// Full database scans consumed (phase 1 + verification).
    pub scans: usize,
    /// Ambiguous patterns the verification stage had to resolve.
    pub ambiguous_verified: usize,
    /// Exact counters evaluated during verification.
    pub probes: usize,
    /// Patterns counted per verification scan, in scan order.
    pub probes_per_scan: Vec<usize>,
}

/// Runs sampling followed by level-wise finalization. Accepts the same
/// configuration as the paper's miner (the `probe_strategy` field is
/// ignored — this baseline always finalizes level-wise).
pub fn mine_toivonen<S>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
) -> Result<ToivonenResult>
where
    S: SequenceScan + ?Sized,
{
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scans = 0usize;

    // Phase 1: symbol matches + sample (one scan).
    let p1 = phase1(db, matrix, config.sample_size, &mut rng);
    scans += 1;

    // Phase 2: classify candidates on the sample.
    let p2 = mine_sample_budgeted(
        &p1.sample,
        matrix,
        &p1.symbol_match,
        config.min_match,
        config.delta,
        config.spread_mode,
        &config.space,
        config.max_sample_patterns,
    );
    if p2.truncated {
        return Err(noisemine_core::Error::InvalidConfig(
            "phase 2 exceeded the candidate budget; raise the sample size, threshold, or delta"
                .into(),
        ));
    }

    // Finalization: level-wise verification of the ambiguous region.
    let ambiguous = AmbiguousSpace::new(p2.ambiguous.iter().map(|(p, _)| p.clone()));
    let ambiguous_verified = ambiguous.len();
    let p3 = collapse(
        ambiguous,
        db,
        matrix,
        config.min_match,
        config.counters_per_scan,
        ProbeStrategy::LevelWise,
    );
    scans += p3.scans;

    let (frequent, border) = noisemine_core::miner::assemble_outcome(&p2, &p3);

    Ok(ToivonenResult {
        frequent,
        border,
        scans,
        ambiguous_verified,
        probes: p3.probes,
        probes_per_scan: p3.probes_per_scan,
    })
}

/// Convenience: builds a [`MinerConfig`] for this baseline.
pub fn toivonen_config(
    min_match: f64,
    delta: f64,
    sample_size: usize,
    counters_per_scan: usize,
    space: PatternSpace,
    seed: u64,
) -> MinerConfig {
    MinerConfig {
        min_match,
        delta,
        sample_size,
        counters_per_scan,
        space,
        spread_mode: SpreadMode::Restricted,
        probe_strategy: ProbeStrategy::LevelWise,
        seed,
        max_sample_patterns: noisemine_core::sample_miner::DEFAULT_MAX_SAMPLE_PATTERNS,
        threads: 0,
        match_kernel: noisemine_core::MatchKernel::default(),
        index: noisemine_core::IndexMode::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::miner::mine;
    use noisemine_core::Alphabet;
    use noisemine_seqdb::MemoryDb;

    fn db() -> MemoryDb {
        let a = Alphabet::synthetic(5);
        let mut seqs = Vec::new();
        for _ in 0..5 {
            seqs.push(a.encode("d0 d1 d2 d0").unwrap());
            seqs.push(a.encode("d3 d1 d0").unwrap());
            seqs.push(a.encode("d2 d3 d1 d0").unwrap());
            seqs.push(a.encode("d1 d1").unwrap());
        }
        MemoryDb::from_sequences(seqs)
    }

    fn config() -> MinerConfig {
        toivonen_config(0.15, 0.01, 20, 4, PatternSpace::contiguous(4), 7)
    }

    #[test]
    fn same_frequent_set_as_border_collapsing() {
        // Both finalizations resolve the same ambiguous region exactly, so
        // the final pattern sets must be identical (only scan counts differ).
        let database = db();
        let matrix = noisemine_core::CompatibilityMatrix::paper_figure2();
        let cfg = config();
        let t = mine_toivonen(&database, &matrix, &cfg).unwrap();
        let mut bc_cfg = cfg.clone();
        bc_cfg.probe_strategy = ProbeStrategy::BorderCollapsing;
        let b = mine(&database, &matrix, &bc_cfg).unwrap();
        let tset: std::collections::HashSet<_> =
            t.frequent.iter().map(|f| f.pattern.clone()).collect();
        let bset: std::collections::HashSet<_> =
            b.frequent.iter().map(|f| f.pattern.clone()).collect();
        assert_eq!(tset, bset);
        // Note: on tiny instances bottom-up verification can use *fewer*
        // scans than border collapsing (one infrequent 1-pattern resolves
        // everything above it); the paper's scan advantage materializes for
        // long patterns and is exercised by the fig14 experiment instead.
        assert!(t.scans >= 1 && b.stats.db_scans >= 1);
    }

    #[test]
    fn scans_include_phase1() {
        let database = db();
        let matrix = noisemine_core::CompatibilityMatrix::paper_figure2();
        let t = mine_toivonen(&database, &matrix, &config()).unwrap();
        assert!(t.scans >= 1);
        assert_eq!(database.scans_performed(), t.scans);
    }

    #[test]
    fn rejects_invalid_config() {
        let database = db();
        let matrix = noisemine_core::CompatibilityMatrix::paper_figure2();
        let mut cfg = config();
        cfg.delta = 2.0;
        assert!(mine_toivonen(&database, &matrix, &cfg).is_err());
    }
}
