//! Top-k pattern mining — an extension beyond the paper.
//!
//! Choosing `min_match` requires knowing the data; asking for the *k*
//! best-matching patterns does not. This best-first search exploits the
//! same Apriori property the paper's miner relies on: a pattern's
//! extensions never match better than the pattern itself, so exploring
//! patterns in decreasing match order lets the search stop exactly when
//! the best unexplored pattern cannot displace the current k-th best.
//! The result is identical to thresholding at the k-th best match, without
//! knowing that threshold in advance.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use noisemine_core::candidates::PatternSpace;
use noisemine_core::matching::sequence_match;
use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::pattern::Pattern;
use noisemine_core::Symbol;

/// A pattern with its exact match, ordered by match (then pattern, for
/// determinism).
#[derive(Debug, Clone, PartialEq)]
struct Scored {
    value: f64,
    pattern: Pattern,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.pattern.cmp(&self.pattern))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a top-k mining run.
#[derive(Debug, Clone, Default)]
pub struct TopKResult {
    /// The k best patterns, sorted by decreasing match (ties by pattern).
    pub patterns: Vec<(Pattern, f64)>,
    /// Patterns whose match was evaluated.
    pub evaluated: usize,
    /// The implied threshold: the match of the k-th best pattern (0 when
    /// fewer than k patterns exist in the space).
    pub implied_threshold: f64,
}

/// Finds the `k` patterns with the highest database match, best-first.
///
/// Deterministic: ties are broken by pattern order. Single symbols count as
/// patterns. With `k = 0` the result is empty.
pub fn mine_top_k(
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    k: usize,
    space: &PatternSpace,
) -> TopKResult {
    let mut result = TopKResult::default();
    let n = sequences.len();
    let m = matrix.len();
    if n == 0 || m == 0 || k == 0 {
        return result;
    }

    let evaluate = |pattern: &Pattern, evaluated: &mut usize| -> f64 {
        *evaluated += 1;
        let total: f64 = sequences
            .iter()
            .map(|s| sequence_match(pattern, s, matrix))
            .sum();
        total / n as f64
    };

    // Frontier: evaluated-but-unexpanded patterns, max-first.
    let mut frontier: BinaryHeap<Scored> = BinaryHeap::new();
    for i in 0..m {
        let pattern = Pattern::single(Symbol(i as u16));
        let value = evaluate(&pattern, &mut result.evaluated);
        if value > 0.0 {
            frontier.push(Scored { value, pattern });
        }
    }

    let mut top: Vec<Scored> = Vec::with_capacity(k);
    while let Some(best) = frontier.pop() {
        // Everything still in the frontier (and all their descendants, by
        // Apriori) matches at most `best.value`; once the top-k is full and
        // its weakest member beats that, the search is complete.
        if top.len() >= k && top[k - 1].value >= best.value {
            break;
        }
        // Insert into the running top-k (kept sorted, largest first).
        let pos = top.binary_search_by(|s| best.cmp(s)).unwrap_or_else(|p| p);
        top.insert(pos, best.clone());
        top.truncate(k);

        // Expand: children can never beat their parent, so only evaluate
        // them while they could still enter the top-k.
        let bound = if top.len() >= k {
            top[k - 1].value
        } else {
            0.0
        };
        for gap in 0..=space.max_gap {
            if best.pattern.len() + gap + 1 > space.max_len {
                break;
            }
            for i in 0..m {
                let child = best.pattern.extend(gap, Symbol(i as u16));
                let value = evaluate(&child, &mut result.evaluated);
                if value > 0.0 && (top.len() < k || value > bound) {
                    frontier.push(Scored {
                        value,
                        pattern: child,
                    });
                }
            }
        }
    }

    result.implied_threshold = if top.len() >= k {
        top[k - 1].value
    } else {
        0.0
    };
    result.patterns = top.into_iter().map(|s| (s.pattern, s.value)).collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelwise::mine_levelwise;
    use noisemine_core::matching::MatchMetric;
    use noisemine_core::Alphabet;
    use noisemine_seqdb::MemoryDb;

    fn db() -> Vec<Vec<Symbol>> {
        let a = Alphabet::synthetic(5);
        vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
        ]
    }

    #[test]
    fn top_k_equals_thresholding_at_implied_threshold() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let space = PatternSpace::contiguous(4);
        for k in [1usize, 3, 5, 10] {
            let topk = mine_top_k(&seqs, &matrix, k, &space);
            assert_eq!(topk.patterns.len(), k.min(topk.patterns.len()));
            // Oracle: exhaustive level-wise at a tiny threshold, take top k.
            let mem = MemoryDb::from_sequences(seqs.clone());
            let mut all = mine_levelwise(
                &mem,
                &MatchMetric { matrix: &matrix },
                5,
                1e-9,
                &space,
                usize::MAX,
            )
            .frequent;
            all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (i, ((p, v), (op, ov))) in topk.patterns.iter().zip(&all).enumerate() {
                assert!(
                    (v - ov).abs() < 1e-12,
                    "k={k} rank {i}: {p} {v} vs {op} {ov}"
                );
            }
        }
    }

    #[test]
    fn results_sorted_descending() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let topk = mine_top_k(&seqs, &matrix, 8, &PatternSpace::contiguous(4));
        for w in topk.patterns.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!((topk.implied_threshold - topk.patterns.last().unwrap().1).abs() < 1e-12);
    }

    #[test]
    fn best_first_evaluates_fewer_than_exhaustive() {
        let seqs = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let space = PatternSpace::contiguous(4);
        let topk = mine_top_k(&seqs, &matrix, 3, &space);
        // The exhaustive search over this space would evaluate far more
        // than the ~dozens the best-first search needs.
        assert!(topk.evaluated < 200, "evaluated {}", topk.evaluated);
    }

    #[test]
    fn zero_k_and_empty_input() {
        let matrix = CompatibilityMatrix::identity(3);
        assert!(mine_top_k(&[], &matrix, 5, &PatternSpace::contiguous(3))
            .patterns
            .is_empty());
        let seqs = db();
        let m2 = CompatibilityMatrix::paper_figure2();
        assert!(mine_top_k(&seqs, &m2, 0, &PatternSpace::contiguous(3))
            .patterns
            .is_empty());
    }
}
