#![allow(missing_docs)] // criterion macros expand to undocumented items

//! Microbenchmarks of the lattice machinery behind phase 3: halfway-layer
//! generation (Algorithm 4.4) and Apriori propagation through the
//! ambiguous space (Figure 6's collapsing step).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use noisemine_core::lattice::{halfway, AmbiguousSpace};
use noisemine_core::{Pattern, Symbol};

/// A chain pattern d0 d1 ... d(k-1).
fn chain(k: usize) -> Pattern {
    let syms: Vec<Symbol> = (0..k).map(|i| Symbol(i as u16)).collect();
    Pattern::contiguous(&syms).unwrap()
}

fn bench_halfway(c: &mut Criterion) {
    let mut group = c.benchmark_group("halfway_generation");
    for k in [6usize, 10, 14] {
        let lower = vec![chain(2)];
        let upper = vec![chain(k)];
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| halfway(black_box(&lower), black_box(&upper)))
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    // An ambiguous space holding every contiguous window of a long chain.
    let full = chain(16);
    let mut patterns = Vec::new();
    for start in 0..16usize {
        for end in (start + 1)..=16 {
            let syms: Vec<Symbol> = (start..end).map(|i| Symbol(i as u16)).collect();
            patterns.push(Pattern::contiguous(&syms).unwrap());
        }
    }
    let mut group = c.benchmark_group("ambiguous_space");
    group.bench_function("resolve_frequent_full_chain", |b| {
        b.iter(|| {
            let mut space = AmbiguousSpace::new(patterns.clone());
            black_box(space.resolve_frequent(&full)).len()
        })
    });
    group.bench_function("resolve_infrequent_bottom", |b| {
        let bottom = chain(1);
        b.iter(|| {
            let mut space = AmbiguousSpace::new(patterns.clone());
            black_box(space.resolve_infrequent(&bottom)).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_halfway, bench_propagation);
criterion_main!(benches);
