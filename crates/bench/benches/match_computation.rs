#![allow(missing_docs)] // criterion macros expand to undocumented items

//! Microbenchmarks of the match kernel (Definitions 3.5/3.6): the
//! early-abort sliding window vs the workload shape, on sparse (structured
//! noise) and dense (uniform noise) compatibility matrices — design
//! decision ✦2 of DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use noisemine_core::matching::{db_match_many, sequence_match, MemorySequences};
use noisemine_core::{CompatibilityMatrix, Pattern, Symbol};
use noisemine_datagen::noise::{channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};

fn workload(len: usize) -> (Vec<Vec<Symbol>>, Pattern) {
    let motif_syms: Vec<Symbol> = (0..8).map(Symbol).collect();
    let motif = Pattern::contiguous(&motif_syms).unwrap();
    let seqs = generate(&GeneratorConfig {
        num_sequences: 200,
        min_len: len,
        max_len: len,
        alphabet_size: 20,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif.clone(), 0.5)],
        seed: 7,
    });
    (seqs, motif)
}

fn dense_matrix() -> CompatibilityMatrix {
    CompatibilityMatrix::uniform_noise(20, 0.2).unwrap()
}

fn sparse_matrix() -> CompatibilityMatrix {
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    channel_to_compatibility(&partner_channel(20, 0.2, &partners))
}

fn bench_sequence_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_match");
    for len in [50usize, 200, 1000] {
        let (seqs, motif) = workload(len);
        let dense = dense_matrix();
        let sparse = sparse_matrix();
        group.bench_with_input(BenchmarkId::new("dense", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for s in &seqs {
                    acc += sequence_match(black_box(&motif), s, &dense);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for s in &seqs {
                    acc += sequence_match(black_box(&motif), s, &sparse);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_db_match_many(c: &mut Criterion) {
    let (seqs, _) = workload(100);
    let db = MemorySequences(seqs);
    let matrix = dense_matrix();
    let mut group = c.benchmark_group("db_match_many");
    for count in [16usize, 128, 512] {
        let patterns: Vec<Pattern> = (0..count)
            .map(|i| {
                Pattern::contiguous(&[
                    Symbol((i % 20) as u16),
                    Symbol(((i / 20) % 20) as u16),
                    Symbol(((i / 400) % 20) as u16),
                ])
                .unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, _| {
            b.iter(|| db_match_many(black_box(&patterns), &db, &matrix))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequence_match, bench_db_match_many);
criterion_main!(benches);
