#![allow(missing_docs)] // criterion macros expand to undocumented items

//! End-to-end miner benchmarks on a fixed noisy workload: the three-phase
//! border-collapsing miner vs exact level-wise, Max-Miner, and the
//! Toivonen-style baseline (ablations ✦4/✦5 of DESIGN.md, the
//! wall-clock companion to Figure 14's scan counts).

use criterion::{criterion_group, criterion_main, Criterion};
use noisemine_baselines::{
    mine_depth_first, mine_levelwise, mine_maxminer, mine_toivonen, MaxMinerConfig,
};
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::MatchMetric;
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{CompatibilityMatrix, PatternSpace};
use noisemine_datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};
use noisemine_seqdb::MemoryDb;

fn workload() -> (MemoryDb, CompatibilityMatrix) {
    let (seqs, matrix) = workload_raw();
    (MemoryDb::from_sequences(seqs), matrix)
}

fn workload_raw() -> (Vec<Vec<noisemine_core::Symbol>>, CompatibilityMatrix) {
    let motif_syms: Vec<_> = (0..10).map(noisemine_core::Symbol).collect();
    let motif = noisemine_core::Pattern::contiguous(&motif_syms).unwrap();
    let standard = generate(&GeneratorConfig {
        num_sequences: 400,
        min_len: 30,
        max_len: 40,
        alphabet_size: 20,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif, 0.5)],
        seed: 21,
    });
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(20, 0.25, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .unwrap();
    (noisy, matrix)
}

fn config(strategy: ProbeStrategy) -> MinerConfig {
    MinerConfig {
        min_match: 0.15,
        delta: 0.01,
        sample_size: 200,
        counters_per_scan: 512,
        space: PatternSpace::contiguous(12),
        spread_mode: SpreadMode::Restricted,
        probe_strategy: strategy,
        seed: 5,
        ..MinerConfig::default()
    }
}

fn bench_miners(c: &mut Criterion) {
    let (db, matrix) = workload();
    let mut group = c.benchmark_group("miners");
    group.sample_size(10);

    group.bench_function("three_phase_border_collapsing", |b| {
        b.iter(|| mine(&db, &matrix, &config(ProbeStrategy::BorderCollapsing)).unwrap())
    });
    group.bench_function("three_phase_levelwise_verification", |b| {
        b.iter(|| mine(&db, &matrix, &config(ProbeStrategy::LevelWise)).unwrap())
    });
    group.bench_function("toivonen", |b| {
        b.iter(|| mine_toivonen(&db, &matrix, &config(ProbeStrategy::LevelWise)).unwrap())
    });
    group.bench_function("exact_levelwise", |b| {
        b.iter(|| {
            mine_levelwise(
                &db,
                &MatchMetric { matrix: &matrix },
                20,
                0.15,
                &PatternSpace::contiguous(12),
                512,
            )
        })
    });
    group.bench_function("depth_first", |b| {
        let (seqs, matrix2) = workload_raw();
        b.iter(|| mine_depth_first(&seqs, &matrix2, 0.15, &PatternSpace::contiguous(12)))
    });
    group.bench_function("maxminer", |b| {
        b.iter(|| {
            mine_maxminer(
                &db,
                &MatchMetric { matrix: &matrix },
                20,
                0.15,
                &PatternSpace::contiguous(12),
                &MaxMinerConfig {
                    lookaheads_per_scan: 64,
                    counters_per_scan: 512,
                },
            )
        })
    });

    // Ablation: restricted spread vs full spread (Claim 4.2, Fig. 11(b)).
    let mut full = config(ProbeStrategy::BorderCollapsing);
    full.spread_mode = SpreadMode::Full;
    full.min_match = 0.2; // full spread needs wider margins to terminate
    let mut restricted = full.clone();
    restricted.spread_mode = SpreadMode::Restricted;
    group.bench_function("spread_full", |b| {
        b.iter(|| mine(&db, &matrix, &full).unwrap())
    });
    group.bench_function("spread_restricted", |b| {
        b.iter(|| mine(&db, &matrix, &restricted).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
