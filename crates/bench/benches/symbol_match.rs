#![allow(missing_docs)] // criterion macros expand to undocumented items

//! Ablation ✦3 (DESIGN.md): Algorithm 4.1's per-symbol match scan with and
//! without the first-occurrence optimization — the paper's
//! `O(N·l̄·m)` vs `O(N·(l̄ + m²))` complexity claim (§4.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use noisemine_core::matching::{
    symbol_sequence_match_into, symbol_sequence_match_naive_into, SymbolMatchScratch,
};
use noisemine_core::{CompatibilityMatrix, Symbol};
use noisemine_datagen::{generate, Background, GeneratorConfig};

fn sequences(m: usize, len: usize) -> Vec<Vec<Symbol>> {
    generate(&GeneratorConfig {
        num_sequences: 100,
        min_len: len,
        max_len: len,
        alphabet_size: m,
        background: Background::Uniform,
        motifs: Vec::new(),
        seed: 3,
    })
}

fn bench_symbol_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbol_match_scan");
    // Long sequences over a small alphabet: the regime where the
    // first-occurrence optimization pays (l >> m).
    for (m, len) in [(20usize, 1000usize), (100, 1000), (20, 100)] {
        let seqs = sequences(m, len);
        let matrix = CompatibilityMatrix::uniform_noise(m, 0.2).unwrap();
        let id = format!("m{m}_len{len}");
        group.bench_with_input(BenchmarkId::new("naive", &id), &id, |b, _| {
            let mut out = vec![0.0f64; m];
            b.iter(|| {
                for s in &seqs {
                    out.fill(0.0);
                    symbol_sequence_match_naive_into(black_box(s), &matrix, &mut out);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("first_occurrence", &id), &id, |b, _| {
            let mut out = vec![0.0f64; m];
            b.iter(|| {
                for s in &seqs {
                    out.fill(0.0);
                    symbol_sequence_match_into(black_box(s), &matrix, &mut out);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("scratch_reuse", &id), &id, |b, _| {
            let mut scratch = SymbolMatchScratch::new(m);
            b.iter(|| {
                for s in &seqs {
                    black_box(scratch.sequence(s, &matrix));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_symbol_match);
criterion_main!(benches);
