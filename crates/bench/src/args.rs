//! A tiny `--key value` argument parser for the experiment binaries.
//!
//! Kept dependency-free on purpose (the workspace's allowed dependency set
//! does not include a CLI crate, and the experiment binaries only need flat
//! key/value overrides).

use std::collections::HashMap;

/// Parsed command-line overrides.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name). Accepts
    /// `--key value`, `--key=value`, and bare `--flag` forms.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token list (used by tests).
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = tokens.into_iter().map(Into::into).collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    values.insert(k.to_string(), v.to_string());
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(stripped.to_string(), tokens[i + 1].clone());
                    i += 1;
                } else {
                    flags.push(stripped.to_string());
                }
            }
            i += 1;
        }
        Self { values, flags }
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Panics if any parsed key or flag is not in `known` — call once per
    /// binary so a typo'd flag (`--thresold`) fails loudly instead of
    /// silently running with defaults.
    pub fn deny_unknown(&self, known: &[&str]) {
        for key in self.values.keys().chain(self.flags.iter()) {
            assert!(
                known.contains(&key.as_str()),
                "unrecognized argument --{key}; known arguments: {}",
                known
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    /// String override or default.
    pub fn get<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.values.get(name).map(String::as_str).unwrap_or(default)
    }

    /// `usize` override or default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message on an unparsable value — wrong CLI input
    /// should fail loudly.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `u64` override or default.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `f64` override or default.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Comma-separated `f64` list override or default.
    pub fn f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        self.values
            .get(name)
            .map(|v| {
                v.split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{name} expects numbers, got {t:?}"))
                    })
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    }

    /// Comma-separated `usize` list override or default.
    pub fn usize_list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        self.values
            .get(name)
            .map(|v| {
                v.split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{name} expects integers, got {t:?}"))
                    })
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_and_flags() {
        let a = Args::from_tokens(["--n", "100", "--alpha=0.2", "--fast", "--list", "1,2,3"]);
        assert_eq!(a.usize("n", 5), 100);
        assert!((a.f64("alpha", 0.0) - 0.2).abs() < 1e-12);
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
        assert_eq!(a.usize_list("list", &[9]), vec![1, 2, 3]);
        assert_eq!(a.usize("missing", 7), 7);
        assert_eq!(a.get("name", "x"), "x");
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::from_tokens(["--x", "-1"]);
        // "-1" does not start with --, so it is consumed as the value.
        assert_eq!(a.get("x", ""), "-1");
    }

    #[test]
    fn f64_list_with_spaces() {
        let a = Args::from_tokens(["--alphas=0.1, 0.2 ,0.3"]);
        assert_eq!(a.f64_list("alphas", &[]), vec![0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        Args::from_tokens(["--n", "abc"]).usize("n", 0);
    }

    #[test]
    fn deny_unknown_accepts_known() {
        Args::from_tokens(["--n", "3", "--fast"]).deny_unknown(&["n", "fast"]);
    }

    #[test]
    #[should_panic(expected = "unrecognized argument --thresold")]
    fn deny_unknown_rejects_typo() {
        Args::from_tokens(["--thresold", "0.1"]).deny_unknown(&["threshold"]);
    }
}
