//! Ablation study for the design decisions DESIGN.md marks with ✦ —
//! each row compares a mechanism against its naive alternative on the same
//! workload, with identical outputs asserted where applicable.
//!
//! 1. window kernel: best-so-far pruned sliding window vs full products;
//! 2. per-symbol scan: first-occurrence optimization vs naive (§4.1);
//! 3. Chernoff spread: restricted (Claim 4.2) vs default `R = 1`;
//! 4. phase-3 probing: border collapsing vs level-wise verification;
//! 5. memory-resident mining: depth-first projection vs level-wise.

use std::time::Instant;

use noisemine_baselines::{mine_depth_first, mine_levelwise};
use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::{
    segment_match, sequence_match, symbol_sequence_match_into, symbol_sequence_match_naive_into,
    MatchMetric,
};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{CompatibilityMatrix, Pattern, PatternSpace, Symbol};
use noisemine_datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};
use noisemine_seqdb::MemoryDb;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["seed", "sequences", "length"]);
    let seed = args.u64("seed", 2002);
    let n = args.usize("sequences", 600);
    let len = args.usize("length", 60);

    // Shared workload: planted 10-motif, symmetric-pair noise at 0.25.
    let motif_syms: Vec<Symbol> = (0..10).map(Symbol).collect();
    let motif = Pattern::contiguous(&motif_syms).unwrap();
    let standard = generate(&GeneratorConfig {
        num_sequences: n,
        min_len: len,
        max_len: len,
        alphabet_size: 20,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif.clone(), 0.5)],
        seed,
    });
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(20, 0.25, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xab);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let norm = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .unwrap();
    let dense = CompatibilityMatrix::uniform_noise(20, 0.25).unwrap();

    let mut t = Table::new(
        "Ablations: each mechanism vs its naive alternative (identical outputs asserted)",
        ["ablation", "variant", "time (s)", "notes"],
    );

    // 1. Window kernel: pruned vs naive full-product, dense matrix (the
    //    worst case for pruning-by-zero; best-so-far pruning still wins).
    {
        let naive_seq_match = |p: &Pattern, s: &[Symbol]| -> f64 {
            s.windows(p.len())
                .map(|w| segment_match(p, w, &dense))
                .fold(0.0, f64::max)
        };
        const REPS: usize = 50;
        let start = Instant::now();
        let mut acc_naive = 0.0;
        for _ in 0..REPS {
            for s in &noisy {
                acc_naive += naive_seq_match(&motif, s);
            }
        }
        let naive_time = start.elapsed();
        let start = Instant::now();
        let mut acc_pruned = 0.0;
        for _ in 0..REPS {
            for s in &noisy {
                acc_pruned += sequence_match(&motif, s, &dense);
            }
        }
        let pruned_time = start.elapsed();
        assert!((acc_naive - acc_pruned).abs() < 1e-9);
        t.row([
            "window kernel (dense matrix)".into(),
            "full products".into(),
            noisemine_bench::secs(naive_time),
            String::new(),
        ]);
        t.row([
            "window kernel (dense matrix)".into(),
            "best-so-far pruned".into(),
            noisemine_bench::secs(pruned_time),
            format!(
                "{:.1}x",
                naive_time.as_secs_f64() / pruned_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }

    // 2. Per-symbol scan: naive vs first-occurrence (§4.1).
    {
        const REPS: usize = 200;
        let mut out = vec![0.0f64; 20];
        let start = Instant::now();
        for _ in 0..REPS {
            for s in &noisy {
                out.fill(0.0);
                symbol_sequence_match_naive_into(s, &dense, &mut out);
            }
        }
        let naive_time = start.elapsed();
        let start = Instant::now();
        for _ in 0..REPS {
            for s in &noisy {
                out.fill(0.0);
                symbol_sequence_match_into(s, &dense, &mut out);
            }
        }
        let opt_time = start.elapsed();
        t.row([
            "per-symbol scan (Alg 4.1)".into(),
            "naive O(l*m)".into(),
            noisemine_bench::secs(naive_time),
            String::new(),
        ]);
        t.row([
            "per-symbol scan (Alg 4.1)".into(),
            "first-occurrence".into(),
            noisemine_bench::secs(opt_time),
            format!(
                "{:.1}x",
                naive_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }

    // 3/4. Spread mode and probe strategy, via the full miner.
    let db = MemoryDb::from_sequences(noisy.clone());
    let base = MinerConfig {
        min_match: 0.2,
        delta: 0.01,
        sample_size: 300,
        counters_per_scan: 256,
        space: PatternSpace::contiguous(12),
        spread_mode: SpreadMode::Restricted,
        probe_strategy: ProbeStrategy::BorderCollapsing,
        seed,
        ..MinerConfig::default()
    };
    {
        for (label, mode) in [
            ("full R=1", SpreadMode::Full),
            ("restricted", SpreadMode::Restricted),
        ] {
            let mut cfg = base.clone();
            cfg.spread_mode = mode;
            let start = Instant::now();
            let outcome = mine(&db, &norm, &cfg).unwrap();
            t.row([
                "Chernoff spread (Claim 4.2)".into(),
                label.into(),
                noisemine_bench::secs(start.elapsed()),
                format!(
                    "{} ambiguous, {} scans",
                    outcome.stats.ambiguous_after_sample, outcome.stats.db_scans
                ),
            ]);
        }
    }
    {
        let mut results = Vec::new();
        for (label, strategy) in [
            ("level-wise", ProbeStrategy::LevelWise),
            ("border collapsing", ProbeStrategy::BorderCollapsing),
        ] {
            let mut cfg = base.clone();
            cfg.probe_strategy = strategy;
            let start = Instant::now();
            let outcome = mine(&db, &norm, &cfg).unwrap();
            t.row([
                "phase-3 probing (Alg 4.3)".into(),
                label.into(),
                noisemine_bench::secs(start.elapsed()),
                format!("{} db scans", outcome.stats.db_scans),
            ]);
            results.push(outcome.patterns());
        }
        assert_eq!(results[0], results[1], "strategies must agree");
    }

    // 5. Memory-resident mining: depth-first projection vs level-wise.
    {
        let space = PatternSpace::contiguous(12);
        let start = Instant::now();
        let lw = mine_levelwise(
            &db,
            &MatchMetric { matrix: &norm },
            20,
            0.2,
            &space,
            usize::MAX,
        );
        let lw_time = start.elapsed();
        let start = Instant::now();
        let dfs = mine_depth_first(&noisy, &norm, 0.2, &space);
        let dfs_time = start.elapsed();
        assert_eq!(lw.pattern_set(), dfs.pattern_set());
        t.row([
            "in-memory mining (§2.2)".into(),
            "level-wise".into(),
            noisemine_bench::secs(lw_time),
            format!("{} candidates", lw.trace.total_candidates()),
        ]);
        t.row([
            "in-memory mining (§2.2)".into(),
            "depth-first projection".into(),
            noisemine_bench::secs(dfs_time),
            format!(
                "{} evaluated, {:.1}x",
                dfs.patterns_evaluated,
                lw_time.as_secs_f64() / dfs_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }

    t.emit(Some(std::path::Path::new("results/ablations.csv")));
    println!(
        "all paired variants produced identical outputs; times are wall-clock on this machine \
         (sequences = {n}, length = {len})"
    );
}
