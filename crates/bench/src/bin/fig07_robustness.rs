//! Figure 7: robustness of the match model vs the support model.
//!
//! - 7(a)/(b): accuracy and completeness of each model as the noise degree
//!   `α` grows from 0 to 0.6;
//! - 7(c)/(d): accuracy and completeness per number of non-eternal symbols
//!   at a fixed `α` (paper: 0.1) — run with `--by-length`.
//!
//! Protocol (§5.1). The reference set `R = R_S = R_M` is mined from the
//! standard (noise-free) planted-motif database; test databases with
//! degree-`α` noise are mined under each model at the *same* threshold, and
//! accuracy `|R' ∩ R| / |R'|` / completeness `|R' ∩ R| / |R|` are reported.
//! The match model runs on the **diagonal-normalized** score matrix
//! (`Ĉ(i,j) = C(i,j)/C(i,i)`), which expresses each pattern's match on the
//! noise-free support scale — the paper's "real support … expected if a
//! noise-free environment is assumed" — so that one threshold is meaningful
//! across models and pattern lengths (see EXPERIMENTS.md).
//!
//! Two noise channels are reported:
//! - `uniform` — the paper's α-noise (substitution to a uniformly random
//!   other symbol), where the compatibility matrix is nearly uninformative
//!   off-diagonal (`α/19` posteriors);
//! - `partner` — structured mutation into each amino acid's
//!   BLOSUM-likeliest partner (the paper's Figure 1 motivation: N→D, K→R,
//!   V→I), where degraded occurrences retain substantial match credit.
//!
//! The paper's qualitative claims — match quality far above support
//! quality, with the gap growing in both α and pattern length — appear in
//! the structured channel, which is the regime its motivation describes.

use std::collections::HashSet;

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::{pct, Table};
use noisemine_core::matching::{MatchMetric, MemorySequences, SupportMetric};
use noisemine_core::{CompatibilityMatrix, Pattern, PatternSpace};
use noisemine_datagen::accuracy_completeness;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "max-len",
        "by-length",
        "alphas",
        "alpha",
    ]);
    let seed = args.u64("seed", 2002);
    let min_value = args.f64("threshold", 0.05);
    let max_len = args.usize("max-len", 14);
    let workload = noisemine_bench::default_protein_workload(seed);
    let space = PatternSpace::contiguous(max_len);
    let std_db = MemorySequences(workload.standard.clone());

    // Noise-free references per model.
    let identity = CompatibilityMatrix::identity(20);
    let ref_support: HashSet<Pattern> =
        mine_levelwise(&std_db, &SupportMetric, 20, min_value, &space, usize::MAX).pattern_set();
    // With the identity matrix, match == support; still computed through the
    // match path as a consistency baseline.
    let ref_match_clean: HashSet<Pattern> = mine_levelwise(
        &std_db,
        &MatchMetric { matrix: &identity },
        20,
        min_value,
        &space,
        usize::MAX,
    )
    .pattern_set();
    assert_eq!(
        ref_support, ref_match_clean,
        "identity-matrix match must equal support (Section 3, observation 3)"
    );

    if args.flag("by-length") {
        by_length(&args, &workload, min_value, &space, &std_db);
        return;
    }

    let alphas = args.f64_list("alphas", &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
    let mut t = Table::new(
        "Figure 7(a)/(b): accuracy & completeness vs noise degree alpha",
        [
            "alpha",
            "channel",
            "support acc",
            "support compl",
            "match acc",
            "match compl",
        ],
    );
    for &alpha in &alphas {
        for channel in ["uniform", "blosum", "partner"] {
            let (noisy, matrix) = match channel {
                "uniform" => workload.uniform_test_db(alpha, seed ^ 0x0701),
                "blosum" => workload.blosum_test_db(alpha.min(0.99), seed ^ 0x0702),
                "partner" => workload.partner_test_db(alpha, seed ^ 0x0703),
                _ => unreachable!(),
            };
            let noisy_db = MemorySequences(noisy);
            let s_test =
                mine_levelwise(&noisy_db, &SupportMetric, 20, min_value, &space, usize::MAX)
                    .pattern_set();
            let (s_acc, s_com) = accuracy_completeness(&s_test, &ref_support);

            // Match model on the diagonal-normalized score matrix, against
            // the shared noise-free reference R.
            let norm = matrix
                .diagonal_normalized_clamped()
                .expect("channel posteriors have positive diagonals");
            let m_test = mine_levelwise(
                &noisy_db,
                &MatchMetric { matrix: &norm },
                20,
                min_value,
                &space,
                usize::MAX,
            )
            .pattern_set();
            let (m_acc, m_com) = accuracy_completeness(&m_test, &ref_support);

            t.row([
                format!("{alpha:.1}"),
                channel.to_string(),
                pct(s_acc),
                pct(s_com),
                pct(m_acc),
                pct(m_com),
            ]);
        }
    }
    t.emit(Some(std::path::Path::new("results/fig07ab.csv")));
}

/// Figure 7(c)/(d): quality bucketed by the number of non-eternal symbols,
/// at fixed alpha.
fn by_length(
    args: &Args,
    workload: &noisemine_datagen::ProteinWorkload,
    min_value: f64,
    space: &PatternSpace,
    std_db: &MemorySequences,
) {
    let alpha = args.f64("alpha", 0.3);
    let seed = args.u64("seed", 2002);

    let ref_support: Vec<(Pattern, f64)> =
        mine_levelwise(std_db, &SupportMetric, 20, min_value, space, usize::MAX).frequent;
    let ref_match = ref_support.clone();
    // A *symmetric* single-partner channel (amino acids in fixed substitute
    // pairs) keeps the posterior maximally informative, so the per-length
    // separation window between the models is widest — the regime of the
    // paper's flat match curve.
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let channel = noisemine_datagen::noise::partner_channel(20, alpha, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x0703);
    let noisy_p = noisemine_datagen::apply_channel(&workload.standard, &channel, &mut rng);
    let matrix_p = noisemine_datagen::noise::channel_to_compatibility(&channel);
    let noisy_db = MemorySequences(noisy_p);
    let norm_p = matrix_p
        .diagonal_normalized_clamped()
        .expect("partner matrices have positive diagonals");
    let test_support: HashSet<Pattern> =
        mine_levelwise(&noisy_db, &SupportMetric, 20, min_value, space, usize::MAX).pattern_set();
    let test_match: HashSet<Pattern> = mine_levelwise(
        &noisy_db,
        &MatchMetric { matrix: &norm_p },
        20,
        min_value,
        space,
        usize::MAX,
    )
    .pattern_set();

    let max_k = ref_support
        .iter()
        .chain(&ref_match)
        .map(|(p, _)| p.non_eternal_count())
        .max()
        .unwrap_or(1);
    let mut t = Table::new(
        &format!(
            "Figure 7(c)/(d): quality vs non-eternal symbols (alpha = {alpha}, partner channel)"
        ),
        [
            "k",
            "|ref support|",
            "support compl",
            "|ref match|",
            "match compl",
        ],
    );
    for k in 1..=max_k {
        let ref_s: HashSet<Pattern> = ref_support
            .iter()
            .filter(|(p, _)| p.non_eternal_count() == k)
            .map(|(p, _)| p.clone())
            .collect();
        let ref_m: HashSet<Pattern> = ref_match
            .iter()
            .filter(|(p, _)| p.non_eternal_count() == k)
            .map(|(p, _)| p.clone())
            .collect();
        let s_kept = ref_s.iter().filter(|p| test_support.contains(*p)).count();
        let m_kept = ref_m.iter().filter(|p| test_match.contains(*p)).count();
        let s_com = if ref_s.is_empty() {
            1.0
        } else {
            s_kept as f64 / ref_s.len() as f64
        };
        let m_com = if ref_m.is_empty() {
            1.0
        } else {
            m_kept as f64 / ref_m.len() as f64
        };
        t.row([
            k.to_string(),
            ref_s.len().to_string(),
            pct(s_com),
            ref_m.len().to_string(),
            pct(m_com),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/fig07cd.csv")));
}
