//! Figure 8: robustness of the match model to *error in the compatibility
//! matrix itself* (α = 0.2 test database).
//!
//! The matrix handed to the miner is a perturbed copy of the true one: each
//! diagonal entry `C(dᵢ, dᵢ)` is moved by `e%` (direction random) and the
//! rest of the column is rescaled to keep it stochastic — the paper's exact
//! protocol. Accuracy/completeness are measured against the result of
//! mining the same test database with the *true* matrix.

use std::collections::HashSet;

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::{pct, Table};
use noisemine_core::matching::{MatchMetric, MemorySequences};
use noisemine_core::{Pattern, PatternSpace};
use noisemine_datagen::accuracy_completeness;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["seed", "threshold", "alpha", "errors", "max-len"]);
    let seed = args.u64("seed", 2002);
    let min_value = args.f64("threshold", 0.05);
    let alpha = args.f64("alpha", 0.2);
    let errors = args.f64_list("errors", &[0.0, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20]);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::default_protein_workload(seed);

    // Test database at alpha = 0.2 under the structured channel (where the
    // matrix actually matters; with uniform noise the matrix is nearly
    // uninformative and perturbing it changes almost nothing).
    let (noisy, true_matrix) = workload.partner_test_db(alpha, seed ^ 0x0801);
    let noisy_db = MemorySequences(noisy);

    let norm_true = true_matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let reference: HashSet<Pattern> = mine_levelwise(
        &noisy_db,
        &MatchMetric { matrix: &norm_true },
        20,
        min_value,
        &space,
        usize::MAX,
    )
    .pattern_set();

    let mut t = Table::new(
        &format!("Figure 8: match-model quality vs compatibility-matrix error (alpha = {alpha})"),
        ["error", "accuracy", "completeness"],
    );
    for &e in &errors {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0802 ^ (e * 1000.0) as u64);
        let perturbed = if e == 0.0 {
            true_matrix.clone()
        } else {
            true_matrix
                .perturb_diagonal(e, &mut rng)
                .expect("error fraction in range")
        };
        let norm = perturbed
            .diagonal_normalized_clamped()
            .expect("positive diagonals");
        let result: HashSet<Pattern> = mine_levelwise(
            &noisy_db,
            &MatchMetric { matrix: &norm },
            20,
            min_value,
            &space,
            usize::MAX,
        )
        .pattern_set();
        let (acc, com) = accuracy_completeness(&result, &reference);
        t.row([format!("{:.0}%", e * 100.0), pct(acc), pct(com)]);
    }
    t.emit(Some(std::path::Path::new("results/fig08.csv")));
    println!(
        "paper reports (10% error): 88% accuracy, 85% completeness — moderate degradation \
         with increasing matrix error is the reproduction target"
    );
}
