//! Figure 9: number of candidate patterns at each level of the lattice,
//! support model vs match model (α = 0.2 test database, same threshold).
//!
//! The paper's observation: candidate counts peak around the 10th–14th
//! level and then diminish, but under the match model they diminish *much*
//! more slowly — partial credit keeps diluted patterns alive at deep
//! levels, which is precisely what makes match mining harder and motivates
//! the probabilistic algorithm.
//!
//! The workload plants one long motif (default 18 symbols) plus the usual
//! graded motifs so the deep lattice levels are populated.

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::{MatchMetric, MemorySequences, SupportMetric};
use noisemine_core::PatternSpace;
use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "alpha",
        "motif-len",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let min_value = args.f64("threshold", 0.05);
    let alpha = args.f64("alpha", 0.2);
    let long_motif = args.usize("motif-len", 18);
    let space = PatternSpace::contiguous(args.usize("max-len", long_motif + 2));

    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: args.usize("sequences", 400),
        min_len: 40,
        max_len: 60,
        num_motifs: 5,
        min_motif_len: 4,
        max_motif_len: long_motif,
        occurrence: 0.5,
        seed,
    });
    let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x0901);
    let noisy_db = MemorySequences(noisy);

    let support = mine_levelwise(&noisy_db, &SupportMetric, 20, min_value, &space, usize::MAX);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let matched = mine_levelwise(
        &noisy_db,
        &MatchMetric { matrix: &norm },
        20,
        min_value,
        &space,
        usize::MAX,
    );

    let levels = support.trace.levels().max(matched.trace.levels());
    let mut t = Table::new(
        &format!(
            "Figure 9: candidate patterns per level (alpha = {alpha}, threshold = {min_value})"
        ),
        [
            "level",
            "support candidates",
            "support frequent",
            "match candidates",
            "match frequent",
        ],
    );
    for k in 0..levels {
        let sc = support.trace.candidates.get(k).copied().unwrap_or(0);
        let sf = support.trace.survivors.get(k).copied().unwrap_or(0);
        let mc = matched.trace.candidates.get(k).copied().unwrap_or(0);
        let mf = matched.trace.survivors.get(k).copied().unwrap_or(0);
        t.row([
            (k + 1).to_string(),
            sc.to_string(),
            sf.to_string(),
            mc.to_string(),
            mf.to_string(),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/fig09.csv")));
    println!(
        "support explored {} levels / {} candidates total; match explored {} levels / {} candidates total",
        support.trace.levels(),
        support.trace.total_candidates(),
        matched.trace.levels(),
        matched.trace.total_candidates(),
    );
}
