//! Figure 10: number of ambiguous patterns vs sample size, for several
//! noise degrees α.
//!
//! Runs phases 1–2 of the miner only (per-symbol matches + Chernoff
//! classification on the sample) and counts the patterns that fall inside
//! the `±ε` band. The paper's observations: ambiguity drops sharply as the
//! sample grows, and higher noise produces more ambiguity.

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::MemorySequences;
use noisemine_core::miner::phase1;
use noisemine_core::sample_miner::mine_sample_budgeted;
use noisemine_core::PatternSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "delta",
        "alphas",
        "samples",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let min_match = args.f64("threshold", 0.1);
    let delta = args.f64("delta", 0.01);
    let alphas = args.f64_list("alphas", &[0.1, 0.2, 0.3]);
    let sample_sizes = args.usize_list("samples", &[250, 500, 1000, 2000, 4000]);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::sampling_protein_workload(seed, args.usize("sequences", 4000));

    let mut t = Table::new(
        &format!(
            "Figure 10: ambiguous patterns vs sample size (delta = {delta}, threshold = {min_match})"
        ),
        ["samples", "alpha", "ambiguous", "sample-frequent"],
    );
    for &alpha in &alphas {
        let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x1001);
        let norm = matrix
            .diagonal_normalized_clamped()
            .expect("positive diagonals");
        let db = MemorySequences(noisy);
        for &n in &sample_sizes {
            let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) << 8);
            let p1 = phase1(&db, &norm, n, &mut rng);
            let p2 = mine_sample_budgeted(
                &p1.sample,
                &norm,
                &p1.symbol_match,
                min_match,
                delta,
                SpreadMode::Restricted,
                &space,
                2_000_000,
            );
            assert!(
                !p2.truncated,
                "sample of {n} too small to prune at this threshold/delta"
            );
            t.row([
                n.to_string(),
                format!("{alpha:.1}"),
                p2.ambiguous.len().to_string(),
                p2.frequent.len().to_string(),
            ]);
        }
    }
    t.emit(Some(std::path::Path::new("results/fig10.csv")));
}
