//! Figure 11: effect of the restricted spread `R` (Claim 4.2).
//!
//! - 11(a): average spread `R = minᵢ match[dᵢ]` of a candidate pattern, by
//!   number of non-eternal symbols, for several α;
//! - 11(b): the ratio of ambiguous patterns produced with the restricted
//!   spread over the count with the default `R = 1` — the paper reports a
//!   roughly five-fold reduction for patterns beyond ten symbols.

use std::collections::HashMap;

use noisemine_bench::args::Args;
use noisemine_bench::table::{fmt, Table};
use noisemine_core::chernoff::{restricted_spread, SpreadMode};
use noisemine_core::matching::MemorySequences;
use noisemine_core::miner::phase1;
use noisemine_core::sample_miner::mine_sample;
use noisemine_core::PatternSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "delta",
        "samples",
        "alphas",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let min_match = args.f64("threshold", 0.1);
    let delta = args.f64("delta", 0.001);
    let sample_size = args.usize("samples", 1500);
    let alphas = args.f64_list("alphas", &[0.1, 0.2, 0.3]);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::sampling_protein_workload(seed, args.usize("sequences", 4000));

    let mut spread_table = Table::new(
        "Figure 11(a): average spread R of candidate patterns vs non-eternal symbols",
        ["k", "alpha", "avg spread R", "candidates"],
    );
    let mut ratio_table = Table::new(
        "Figure 11(b): ambiguous patterns, restricted R vs default R = 1",
        [
            "alpha",
            "ambiguous (R=1)",
            "ambiguous (restricted)",
            "ratio",
        ],
    );

    for &alpha in &alphas {
        let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x1101);
        let norm = matrix
            .diagonal_normalized_clamped()
            .expect("positive diagonals");
        let db = MemorySequences(noisy);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1102);
        let p1 = phase1(&db, &norm, sample_size, &mut rng);

        let restricted = mine_sample(
            &p1.sample,
            &norm,
            &p1.symbol_match,
            min_match,
            delta,
            SpreadMode::Restricted,
            &space,
        );
        let full = mine_sample(
            &p1.sample,
            &norm,
            &p1.symbol_match,
            min_match,
            delta,
            SpreadMode::Full,
            &space,
        );

        // 11(a): average restricted spread per level over all evaluated
        // candidates (frequent + ambiguous + infrequent).
        let mut by_level: HashMap<usize, (f64, usize)> = HashMap::new();
        for pattern in restricted.labels.keys() {
            let k = pattern.non_eternal_count();
            let r = restricted_spread(pattern, &p1.symbol_match);
            let e = by_level.entry(k).or_insert((0.0, 0));
            e.0 += r;
            e.1 += 1;
        }
        let mut levels: Vec<usize> = by_level.keys().copied().collect();
        levels.sort_unstable();
        for k in levels {
            let (sum, count) = by_level[&k];
            spread_table.row([
                k.to_string(),
                format!("{alpha:.1}"),
                fmt(sum / count as f64, 4),
                count.to_string(),
            ]);
        }

        // 11(b): ambiguity reduction.
        let n_full = full.ambiguous.len();
        let n_restricted = restricted.ambiguous.len();
        let ratio = if n_full == 0 {
            1.0
        } else {
            n_restricted as f64 / n_full as f64
        };
        ratio_table.row([
            format!("{alpha:.1}"),
            n_full.to_string(),
            n_restricted.to_string(),
            fmt(ratio, 3),
        ]);
    }
    spread_table.emit(Some(std::path::Path::new("results/fig11a.csv")));
    ratio_table.emit(Some(std::path::Path::new("results/fig11b.csv")));
    println!(
        "paper reports: spread tightens with more non-eternal symbols and higher alpha; the \
         restricted spread cuts ambiguous patterns to ~20% (a five-fold pruning power)"
    );
}
