//! Figure 12: effect of the Chernoff confidence `1 − δ`.
//!
//! - 12(a): number of ambiguous patterns vs confidence — smaller confidence
//!   shrinks ε and with it the ambiguous band;
//! - 12(b): the error rate (mislabeled patterns over frequent patterns) vs
//!   confidence — because the Chernoff bound is conservative, the measured
//!   error stays far below δ (the paper sees ~0.01 at 1 − δ = 0.9 and
//!   ~10⁻⁶ at 0.9999).
//!
//! The error rate is measured against exact level-wise mining of the full
//! database.

use std::collections::HashSet;

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::{fmt, Table};
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::{MatchMetric, MemorySequences};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{Pattern, PatternSpace};

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "alpha",
        "samples",
        "confidences",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let min_match = args.f64("threshold", 0.1);
    let alpha = args.f64("alpha", 0.2);
    let sample_size = args.usize("samples", 1500);
    let confidences = args.f64_list("confidences", &[0.9, 0.99, 0.999, 0.9999]);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::sampling_protein_workload(seed, args.usize("sequences", 4000));

    let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x1201);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let db = MemorySequences(noisy);

    // Exact oracle.
    let oracle: HashSet<Pattern> = mine_levelwise(
        &db,
        &MatchMetric { matrix: &norm },
        20,
        min_match,
        &space,
        usize::MAX,
    )
    .pattern_set();

    let mut t = Table::new(
        &format!(
            "Figure 12: effect of confidence 1-delta (alpha = {alpha}, {sample_size} samples)"
        ),
        [
            "confidence",
            "delta",
            "ambiguous",
            "mislabeled",
            "error rate",
        ],
    );
    for &confidence in &confidences {
        let delta = 1.0 - confidence;
        let config = MinerConfig {
            min_match,
            delta,
            sample_size,
            counters_per_scan: 100_000,
            space,
            spread_mode: SpreadMode::Restricted,
            probe_strategy: ProbeStrategy::BorderCollapsing,
            seed: seed ^ 0x1202,
            ..MinerConfig::default()
        };
        let outcome = mine(&db, &norm, &config).expect("valid config");
        let mined: HashSet<Pattern> = outcome.patterns().into_iter().collect();
        let mislabeled = oracle.symmetric_difference(&mined).count();
        let error_rate = if oracle.is_empty() {
            0.0
        } else {
            mislabeled as f64 / oracle.len() as f64
        };
        t.row([
            format!("{confidence}"),
            format!("{delta:.4}"),
            outcome.stats.ambiguous_after_sample.to_string(),
            mislabeled.to_string(),
            fmt(error_rate, 5),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/fig12.csv")));
    println!(
        "paper reports: ambiguity shrinks sharply as confidence drops; the measured error rate \
         stays orders of magnitude below delta (conservatism of the Chernoff bound)"
    );
}
