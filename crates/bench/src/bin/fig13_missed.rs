//! Figure 13: distribution of the true match of *missed* patterns.
//!
//! A pattern is "missed" when the probabilistic miner labels it infrequent
//! (or drops it) although its exact database match is at least `min_match`.
//! The paper's analysis (Section 4) predicts that the probability a missed
//! pattern lies `ρ` above the threshold decays as `exp(−2nρ²/R²)` — so
//! nearly all misses sit within a few percent of the threshold. The paper
//! reports >90 % of misses within 5 % of the threshold and none beyond
//! 15 %.
//!
//! To make misses observable at laptop scale the sample is kept small and
//! δ moderately large; the histogram is aggregated over many seeds.

use std::collections::HashSet;

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::{pct, Table};
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::{MatchMetric, MemorySequences};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{Pattern, PatternSpace};

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "alpha",
        "samples",
        "delta",
        "runs",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let min_match = args.f64("threshold", 0.1);
    let alpha = args.f64("alpha", 0.2);
    let sample_size = args.usize("samples", 100);
    let delta = args.f64("delta", 0.4);
    let runs = args.usize("runs", 30);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::sampling_protein_workload(seed, args.usize("sequences", 4000));

    let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x1301);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let db = MemorySequences(noisy);

    // Exact oracle with values.
    let oracle = mine_levelwise(
        &db,
        &MatchMetric { matrix: &norm },
        20,
        min_match,
        &space,
        usize::MAX,
    );
    let oracle_set: HashSet<Pattern> = oracle.pattern_set();

    // Histogram buckets over dis(P) = (true match - min_match)/min_match.
    let bucket_edges = [0.05, 0.10, 0.15];
    let mut buckets = [0usize; 4];
    let mut total_missed = 0usize;

    for run in 0..runs {
        let config = MinerConfig {
            min_match,
            delta,
            sample_size,
            counters_per_scan: 100_000,
            space,
            spread_mode: SpreadMode::Restricted,
            probe_strategy: ProbeStrategy::BorderCollapsing,
            seed: seed ^ 0x1302 ^ (run as u64),
            ..MinerConfig::default()
        };
        let outcome = mine(&db, &norm, &config).expect("valid config");
        let mined: HashSet<Pattern> = outcome.patterns().into_iter().collect();
        for p in &oracle_set {
            if !mined.contains(p) {
                let true_match = oracle.value_of(p).expect("oracle pattern has a value");
                let dis = (true_match - min_match) / min_match;
                total_missed += 1;
                let idx = bucket_edges.iter().position(|&e| dis < e).unwrap_or(3);
                buckets[idx] += 1;
            }
        }
    }

    let mut t = Table::new(
        &format!(
            "Figure 13: true match of missed patterns, distance above threshold \
             ({runs} runs, {sample_size} samples, delta = {delta})"
        ),
        ["distance above threshold", "missed patterns", "share"],
    );
    let labels = ["0-5%", "5-10%", "10-15%", ">15%"];
    for (label, &count) in labels.iter().zip(&buckets) {
        let share = if total_missed == 0 {
            0.0
        } else {
            count as f64 / total_missed as f64
        };
        t.row([label.to_string(), count.to_string(), pct(share)]);
    }
    t.emit(Some(std::path::Path::new("results/fig13.csv")));
    println!(
        "total missed across runs: {total_missed} (paper: >90% of misses within 5% of the \
         threshold, none beyond 15%)"
    );
}
