//! Figure 14: end-to-end comparison of the three algorithms on a
//! disk-resident database, sweeping the match threshold:
//!
//! - **border collapsing** — the paper's sampling + border-collapsing miner;
//! - **Max-Miner** — deterministic look-ahead search over the full database;
//! - **sampling + level-wise** — Toivonen-style finalization.
//!
//! Reported per threshold (the paper's panels): (a) CPU time, (b) number of
//! full database scans, (c) number of patterns whose match was counted
//! against the full database. The paper's shape: border collapsing needs
//! 2–4 scans where the other two need 5–10+, with correspondingly lower
//! CPU time, and the gap widens as the threshold drops (longer patterns).

use std::time::Instant;

use noisemine_baselines::{mine_maxminer, mine_toivonen, toivonen_config, MaxMinerConfig};
use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::matching::{MatchMetric, SequenceScan};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::PatternSpace;
use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};
use noisemine_seqdb::DiskDb;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "alpha",
        "thresholds",
        "samples",
        "counters",
        "delta",
        "max-len",
        "sequences",
    ]);
    let seed = args.u64("seed", 2002);
    let alpha = args.f64("alpha", 0.2);
    let thresholds = args.f64_list("thresholds", &[0.25, 0.20, 0.15, 0.12, 0.10]);
    let sample_size = args.usize("samples", 600);
    let counters = args.usize("counters", 512);
    let delta = args.f64("delta", 0.01);
    let space = PatternSpace::contiguous(args.usize("max-len", 20));

    // Long planted motifs make the frequent border deep — the regime the
    // paper targets.
    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: args.usize("sequences", 1200),
        min_len: 30,
        max_len: 40,
        num_motifs: 6,
        min_motif_len: 6,
        max_motif_len: 18,
        occurrence: 0.5,
        seed,
    });
    let (noisy, matrix) = workload.partner_test_db(alpha, seed ^ 0x1401);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");

    // Disk-resident database (the paper's cost model).
    let dir = std::env::temp_dir().join(format!("noisemine-fig14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("fig14.db");
    let db = DiskDb::create_from(&path, noisy.iter().map(Vec::as_slice)).expect("write disk db");
    println!(
        "disk database: {} sequences at {}\n",
        db.num_sequences(),
        path.display()
    );

    let mut t = Table::new(
        &format!(
            "Figure 14: border collapsing vs Max-Miner vs sampling+level-wise \
             (alpha = {alpha}, counters/scan = {counters})"
        ),
        [
            "min_match",
            "algorithm",
            "cpu (s)",
            "db scans",
            "patterns counted",
            "per-scan probes",
            "frequent",
        ],
    );

    for &threshold in &thresholds {
        // Border collapsing (the paper's algorithm).
        db.reset_scans();
        let config = MinerConfig {
            min_match: threshold,
            delta,
            sample_size,
            counters_per_scan: counters,
            space,
            spread_mode: SpreadMode::Restricted,
            probe_strategy: ProbeStrategy::BorderCollapsing,
            seed: seed ^ 0x1402,
            ..MinerConfig::default()
        };
        let start = Instant::now();
        let ours = mine(&db, &norm, &config).expect("valid config");
        let ours_time = start.elapsed();
        assert_eq!(db.scans_performed(), ours.stats.db_scans);
        t.row([
            format!("{threshold:.2}"),
            "border collapsing".into(),
            noisemine_bench::secs(ours_time),
            ours.stats.db_scans.to_string(),
            ours.stats.verified_patterns.to_string(),
            join_counts(&ours.stats.probes_per_scan),
            ours.frequent.len().to_string(),
        ]);

        // Max-Miner.
        db.reset_scans();
        let mm_config = MaxMinerConfig {
            lookaheads_per_scan: 64,
            counters_per_scan: counters,
        };
        let start = Instant::now();
        let mm = mine_maxminer(
            &db,
            &MatchMetric { matrix: &norm },
            20,
            threshold,
            &space,
            &mm_config,
        );
        let mm_time = start.elapsed();
        assert_eq!(db.scans_performed(), mm.scans);
        t.row([
            format!("{threshold:.2}"),
            "Max-Miner".into(),
            noisemine_bench::secs(mm_time),
            mm.scans.to_string(),
            mm.trace.total_candidates().to_string(),
            join_counts(&mm.trace.candidates),
            mm.frequent.len().to_string(),
        ]);

        // Sampling + level-wise (Toivonen-style).
        db.reset_scans();
        let t_config = toivonen_config(
            threshold,
            delta,
            sample_size,
            counters,
            space,
            seed ^ 0x1402,
        );
        let start = Instant::now();
        let toiv = mine_toivonen(&db, &norm, &t_config).expect("valid config");
        let toiv_time = start.elapsed();
        assert_eq!(db.scans_performed(), toiv.scans);
        t.row([
            format!("{threshold:.2}"),
            "sampling+level-wise".into(),
            noisemine_bench::secs(toiv_time),
            toiv.scans.to_string(),
            toiv.probes.to_string(),
            join_counts(&toiv.probes_per_scan),
            toiv.frequent.len().to_string(),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/fig14.csv")));

    std::fs::remove_dir_all(&dir).ok();
}

/// Renders per-scan counts compactly ("73" or "512+38+2").
fn join_counts(counts: &[usize]) -> String {
    if counts.is_empty() {
        "-".to_string()
    } else {
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("+")
    }
}
