//! Figure 15: scalability of the probabilistic algorithm in the number of
//! distinct symbols `m`.
//!
//! Synthetic databases with sparse random compatibility matrices ("a symbol
//! is compatible to around 10 % of other symbols", §5.7; the fan-out is
//! capped at `--max-fanout` to bound matrix memory at the largest sweep
//! points, where the paper itself notes the quadratic matrix cost is the
//! bottleneck). Reported: number of full scans and wall-clock response
//! time. The paper's shape: scans *decrease* with `m` (fewer qualified
//! patterns) while response time is U-shaped — it first falls and then
//! climbs once the matrix gets large.

use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::PatternSpace;
use noisemine_datagen::{scalability_db, sparse_random_matrix};
use noisemine_seqdb::MemoryDb;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "threshold",
        "symbols",
        "sequences",
        "length",
        "max-fanout",
        "max-len",
    ]);
    let seed = args.u64("seed", 2002);
    let min_match = args.f64("threshold", 0.15);
    let ms = args.usize_list("symbols", &[200, 500, 1000, 2000, 5000, 10000]);
    let n = args.usize("sequences", 300);
    let len = args.usize("length", 100);
    let max_fanout = args.usize("max-fanout", 400);
    let space = PatternSpace::contiguous(args.usize("max-len", 10));

    let mut t = Table::new(
        &format!("Figure 15: scalability vs number of distinct symbols (threshold = {min_match})"),
        [
            "m",
            "matrix density",
            "db scans",
            "response time (s)",
            "frequent",
        ],
    );
    for &m in &ms {
        // ~10% compatible symbols, capped for memory at large m.
        let density = (0.10f64).min(max_fanout as f64 / m as f64);
        let matrix = sparse_random_matrix(m, density, 0.85, seed ^ 0x1501);
        let db = MemoryDb::from_sequences(scalability_db(m, n, len, seed ^ 0x1502));

        let config = MinerConfig {
            min_match,
            delta: 0.01,
            sample_size: n,
            counters_per_scan: 10_000,
            space,
            spread_mode: SpreadMode::Restricted,
            probe_strategy: ProbeStrategy::BorderCollapsing,
            seed: seed ^ 0x1503,
            ..MinerConfig::default()
        };
        let start = Instant::now();
        let outcome = mine(&db, &matrix, &config).expect("valid config");
        let elapsed = start.elapsed();
        t.row([
            m.to_string(),
            format!("{:.4}", matrix.density()),
            outcome.stats.db_scans.to_string(),
            noisemine_bench::secs(elapsed),
            outcome.frequent.len().to_string(),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/fig15.csv")));
}
