//! Positional symbol index: skip-scan probe throughput vs the full scan.
//!
//! Times phase-3-style probe batches through
//! [`try_db_match_many_kernel_indexed`] with and without a [`SkipPlan`],
//! over a grid of alphabet sizes × probe lengths × batch sizes. Probe
//! batches mimic a border-collapse frontier: every probe shares a common
//! motif core and perturbs one position, exactly the shape
//! `collapse_with_known` emits — the shared core is what keeps the
//! union-of-candidates plan selective.
//!
//! The matrix is the identity, the sparsest compatibility structure: a
//! concrete probe symbol can only be observed as itself, so a sequence
//! missing any core symbol provably matches at 0.0 and the plan may skip
//! it. Dense matrices make every symbol reachable from every other and the
//! index (correctly) degrades to a no-op — that regime is not interesting
//! to time.
//!
//! Before timing anything it verifies the bit-identity contract: the
//! indexed scan must return the exact same `Vec<f64>` as the full scan for
//! every grid point. Plan construction is timed inside the indexed mode
//! (that is where `collapse_with_known` pays it). Results are printed as a
//! table and recorded as JSON (default `BENCH_index.json`); the CI bench
//! gate compares that file against the committed baseline.

use std::fmt::Write as _;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::try_db_match_many_kernel_indexed;
use noisemine_core::pattern::Pattern;
use noisemine_core::{CompatibilityMatrix, MatchKernel, SkipPlan, Symbol, SymbolIndexBuilder};
use noisemine_datagen::scalability_db;
use noisemine_seqdb::MemoryDb;

struct Row {
    symbols: usize,
    len: usize,
    candidates: usize,
    mode: &'static str,
    secs: f64,
    evals_per_sec: f64,
    speedup: f64,
    visit_frac: f64,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "symbols",
        "sequences",
        "length",
        "candidates",
        "probe-lens",
        "repeat",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    let symbol_counts = args.usize_list("symbols", &[32, 64, 128]);
    let n = args.usize("sequences", 2000);
    let seq_len = args.usize("length", 40);
    let candidate_counts = args.usize_list("candidates", &[16, 64]);
    let probe_lens = args.usize_list("probe-lens", &[6, 10]);
    let repeat = args.usize("repeat", 5).max(1);
    let out = args.get("out", "BENCH_index.json").to_string();

    noisemine_obs::enable();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut t = Table::new(
        &format!("Symbol-index skip-scan (n = {n}, seq_len = {seq_len}, {cpus} cpu(s))"),
        [
            "m", "len", "probes", "mode", "secs", "evals/s", "speedup", "visit",
        ],
    );
    let mut rows = Vec::new();
    for &m in &symbol_counts {
        // Identity: observed symbol x is compatible with probe symbol p iff
        // x == p. The sparse-alphabet regime the index targets.
        let matrix = CompatibilityMatrix::identity(m);
        let sequences = scalability_db(m, n, seq_len, seed ^ 0x59 ^ m as u64);
        let db = MemoryDb::from_sequences(sequences.clone());
        let mut builder = SymbolIndexBuilder::new(m);
        for seq in &sequences {
            builder.add_sequence(seq);
        }
        let index = builder.finish();

        for &len in &probe_lens {
            for &candidates in &candidate_counts {
                let probes = probe_batch(m, len, candidates);
                // Bit-identity first: the skip plan is only a valid
                // optimization if it never changes a single bit.
                let full_out = scan(&probes, &db, &matrix, None);
                let plan = SkipPlan::build(&index, &probes, &matrix);
                let indexed_out = scan(&probes, &db, &matrix, Some(&plan));
                assert!(
                    full_out == indexed_out,
                    "indexed scan diverged at m = {m}, len = {len}, candidates = {candidates} \
                     — bit-identity contract broken"
                );
                let visit_frac = plan.candidates() as f64 / n as f64;

                let full_secs = run_full(&probes, &db, &matrix, repeat);
                let indexed_secs = run_indexed(&probes, &db, &matrix, &index, repeat);
                for (mode, secs, visit) in [
                    ("full", full_secs, 1.0),
                    ("indexed", indexed_secs, visit_frac),
                ] {
                    let row = Row {
                        symbols: m,
                        len,
                        candidates,
                        mode,
                        secs,
                        evals_per_sec: (candidates * n) as f64 / secs,
                        speedup: full_secs / secs,
                        visit_frac: visit,
                    };
                    t.row([
                        row.symbols.to_string(),
                        row.len.to_string(),
                        row.candidates.to_string(),
                        row.mode.to_string(),
                        format!("{:.4}", row.secs),
                        format!("{:.0}", row.evals_per_sec),
                        format!("{:.2}", row.speedup),
                        format!("{:.2}", row.visit_frac),
                    ]);
                    rows.push(row);
                }
            }
        }
    }
    t.emit(None);

    std::fs::write(&out, to_json(seed, n, seq_len, cpus, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// A border-collapse-shaped probe batch: `count` length-`len` contiguous
/// probes sharing a fixed motif core spread across the `m`-symbol alphabet,
/// each perturbing exactly one core position. Every probe therefore demands
/// `len - 1` specific shared symbols, which is what keeps the union skip
/// plan selective even across a large batch.
fn probe_batch(m: usize, len: usize, count: usize) -> Vec<Pattern> {
    let core: Vec<usize> = (0..len).map(|j| (j * 17 + 3) % m).collect();
    let mut probes = Vec::with_capacity(count);
    for i in 0..count {
        let mut symbols: Vec<Symbol> = core.iter().map(|&s| Symbol(s as u16)).collect();
        let pos = i % len;
        symbols[pos] = Symbol(((core[pos] + 1 + i / len) % m) as u16);
        probes.push(Pattern::contiguous(&symbols).expect("non-empty probe"));
    }
    probes
}

fn scan(
    probes: &[Pattern],
    db: &MemoryDb,
    matrix: &CompatibilityMatrix,
    plan: Option<&SkipPlan>,
) -> Vec<f64> {
    try_db_match_many_kernel_indexed(probes, db, matrix, 1, MatchKernel::Trie, plan)
        .expect("in-memory scan cannot fail")
}

/// Times `repeat` single-threaded full scans and returns the best
/// wall-clock.
fn run_full(probes: &[Pattern], db: &MemoryDb, matrix: &CompatibilityMatrix, repeat: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeat {
        let start = Instant::now();
        let out = scan(probes, db, matrix, None);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// Times `repeat` single-threaded indexed scans — including plan
/// construction, which is where `collapse_with_known` pays for it on every
/// probe batch — and returns the best wall-clock.
fn run_indexed(
    probes: &[Pattern],
    db: &MemoryDb,
    matrix: &CompatibilityMatrix,
    index: &noisemine_core::SymbolIndex,
    repeat: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeat {
        let start = Instant::now();
        let plan = SkipPlan::build(index, probes, matrix);
        let out = scan(probes, db, matrix, Some(&plan));
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(seed: u64, n: usize, seq_len: usize, cpus: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"index_scan\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"sequences\": {n},");
    let _ = writeln!(s, "  \"seq_len\": {seq_len},");
    let _ = writeln!(s, "  \"cpus\": {cpus},");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"symbols\": {}, \"len\": {}, \"candidates\": {}, \"mode\": \"{}\", \
             \"secs\": {:.6}, \"evals_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"visit_frac\": {:.4}}}{comma}",
            r.symbols,
            r.len,
            r.candidates,
            r.mode,
            r.secs,
            r.evals_per_sec,
            r.speedup,
            r.visit_frac,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
