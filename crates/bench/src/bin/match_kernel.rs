//! Batched candidate-trie and columnar SIMD kernels vs the naive oracle.
//!
//! Times [`db_match_many_kernel`] under all three [`MatchKernel`]s over a
//! grid of candidate-batch sizes × pattern lengths × alphabet sizes, on the
//! same synthetic database. Candidate batches mimic an Apriori level: the
//! first `candidates` length-`len` contiguous patterns over a small symbol
//! subset in lexicographic order, which share long prefixes exactly the way
//! a level-wise frontier does — that prefix sharing is what the trie and
//! simd kernels exploit (one window walk per batch instead of one per
//! pattern; the simd kernel additionally advances eight windows per step).
//!
//! Before timing anything it verifies the value contract: the trie kernel
//! must return the exact same `Vec<f64>` as the naive oracle, and the simd
//! kernel the exact same bits as the trie (its documented ULP tolerance is
//! zero) — for every grid point. Results are printed as a table and
//! recorded as JSON (default `BENCH_kernel.json`); the CI bench gate
//! compares that file against the committed baseline, gating simd rows on
//! the within-run `speedup_vs_trie` ratio so the verdict is
//! hardware-relative.

use std::fmt::Write as _;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::db_match_many_kernel;
use noisemine_core::pattern::Pattern;
use noisemine_core::{simd_active, CompatibilityMatrix, MatchKernel, Symbol};
use noisemine_datagen::{scalability_db, sparse_random_matrix};
use noisemine_seqdb::MemoryDb;

/// Symbols the candidate generator draws from — small on purpose, so
/// lexicographic neighbors share long prefixes (an Apriori level over a
/// frequent subset, not the whole alphabet).
const CANDIDATE_BASE: usize = 4;

struct Row {
    symbols: usize,
    len: usize,
    candidates: usize,
    kernel: &'static str,
    secs: f64,
    evals_per_sec: f64,
    speedup: f64,
    speedup_vs_trie: f64,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "symbols",
        "sequences",
        "length",
        "candidates",
        "pattern-lens",
        "repeat",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    // Alphabets from the paper's regimes: 20 (protein, the running
    // example) and 100 (mid-scale of the |Λ| ≤ 1000 scalability sweeps).
    let symbol_counts = args.usize_list("symbols", &[20, 100]);
    // Large enough that the fastest rows run long enough to time reliably
    // on a busy host (sub-100µs rows made the gated ratios flaky).
    let n = args.usize("sequences", 2000);
    let seq_len = args.usize("length", 40);
    let candidate_counts = args.usize_list("candidates", &[16, 64, 256]);
    // Short control (4: the regime where the trie's per-window pruning
    // already wins) plus the long-pattern lengths the paper targets.
    let pattern_lens = args.usize_list("pattern-lens", &[4, 12, 16]);
    let repeat = args.usize("repeat", 3).max(1);
    let out = args.get("out", "BENCH_kernel.json").to_string();

    noisemine_obs::enable();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let simd_path = if simd_active() { "avx2" } else { "scalar" };

    let mut t = Table::new(
        &format!(
            "Batched match kernel (n = {n}, seq_len = {seq_len}, {cpus} cpu(s), simd = {simd_path})"
        ),
        [
            "m", "len", "cands", "kernel", "secs", "evals/s", "vs naive", "vs trie",
        ],
    );
    let mut rows = Vec::new();
    for &m in &symbol_counts {
        let matrix = sparse_random_matrix(m, 0.2, 0.85, seed ^ 0x57 ^ m as u64);
        let db = MemoryDb::from_sequences(scalability_db(m, n, seq_len, seed ^ 0x59 ^ m as u64));
        for &len in &pattern_lens {
            for &candidates in &candidate_counts {
                let patterns = apriori_level(m, len, candidates);
                // Value contracts first: the fast kernels are only valid
                // optimizations if they never change a single bit.
                let naive_out =
                    db_match_many_kernel(&patterns, &db, &matrix, 1, MatchKernel::Naive);
                let trie_out = db_match_many_kernel(&patterns, &db, &matrix, 1, MatchKernel::Trie);
                assert!(
                    naive_out == trie_out,
                    "trie kernel diverged from naive at m = {m}, len = {len}, \
                     candidates = {candidates} — bit-identity contract broken"
                );
                let simd_out = db_match_many_kernel(&patterns, &db, &matrix, 1, MatchKernel::Simd);
                for (i, (a, b)) in simd_out.iter().zip(&trie_out).enumerate() {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "simd kernel diverged from trie at m = {m}, len = {len}, \
                         candidates = {candidates}, pattern {i}: {a} vs {b} \
                         — SIMD_MAX_ULP = 0 contract broken"
                    );
                }

                let naive_secs = run(&patterns, &db, &matrix, MatchKernel::Naive, repeat);
                let trie_secs = run(&patterns, &db, &matrix, MatchKernel::Trie, repeat);
                let simd_secs = run(&patterns, &db, &matrix, MatchKernel::Simd, repeat);
                for (kernel, secs) in [
                    ("naive", naive_secs),
                    ("trie", trie_secs),
                    ("simd", simd_secs),
                ] {
                    let row = Row {
                        symbols: m,
                        len,
                        candidates,
                        kernel,
                        secs,
                        evals_per_sec: (candidates * n) as f64 / secs,
                        speedup: naive_secs / secs,
                        speedup_vs_trie: trie_secs / secs,
                    };
                    t.row([
                        row.symbols.to_string(),
                        row.len.to_string(),
                        row.candidates.to_string(),
                        row.kernel.to_string(),
                        format!("{:.4}", row.secs),
                        format!("{:.0}", row.evals_per_sec),
                        format!("{:.2}", row.speedup),
                        format!("{:.2}", row.speedup_vs_trie),
                    ]);
                    rows.push(row);
                }
            }
        }
    }
    t.emit(None);

    std::fs::write(&out, to_json(seed, n, seq_len, cpus, simd_path, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// The first `count` length-`len` contiguous patterns over the first
/// [`CANDIDATE_BASE`] symbols of an `m`-symbol alphabet, in lexicographic
/// order — a synthetic Apriori level with maximal prefix sharing.
fn apriori_level(m: usize, len: usize, count: usize) -> Vec<Pattern> {
    let base = CANDIDATE_BASE.min(m);
    let mut patterns = Vec::with_capacity(count);
    let mut digits = vec![0usize; len];
    for _ in 0..count {
        let symbols: Vec<Symbol> = digits.iter().map(|&d| Symbol(d as u16)).collect();
        patterns.push(Pattern::contiguous(&symbols).expect("non-empty candidate"));
        // Lexicographic increment (most-significant digit first).
        for d in digits.iter_mut().rev() {
            *d += 1;
            if *d < base {
                break;
            }
            *d = 0;
        }
    }
    patterns
}

/// Times `repeat` single-threaded scans of the full batch and returns the
/// best wall-clock — the kernels' algorithmic difference, not scheduling
/// noise, is what this bench isolates.
fn run(
    patterns: &[Pattern],
    db: &MemoryDb,
    matrix: &CompatibilityMatrix,
    kernel: MatchKernel,
    repeat: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeat {
        let start = Instant::now();
        let out = db_match_many_kernel(patterns, db, matrix, 1, kernel);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(
    seed: u64,
    n: usize,
    seq_len: usize,
    cpus: usize,
    simd_path: &str,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"match_kernel\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"sequences\": {n},");
    let _ = writeln!(s, "  \"seq_len\": {seq_len},");
    let _ = writeln!(s, "  \"cpus\": {cpus},");
    let _ = writeln!(s, "  \"simd_path\": \"{simd_path}\",");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"symbols\": {}, \"len\": {}, \"candidates\": {}, \"kernel\": \"{}\", \
             \"secs\": {:.6}, \"evals_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"speedup_vs_trie\": {:.3}}}{comma}",
            r.symbols,
            r.len,
            r.candidates,
            r.kernel,
            r.secs,
            r.evals_per_sec,
            r.speedup,
            r.speedup_vs_trie,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
