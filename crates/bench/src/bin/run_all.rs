//! Runs the full experiment suite — every figure/table binary with its
//! default (laptop-scale) parameters — and reports per-experiment wall
//! time. CSV outputs land in `results/`.
//!
//! Usage: `cargo run --release -p noisemine-bench --bin run_all`
//! (pass `--skip-slow` to omit the two multi-minute experiments).

use std::process::Command;
use std::time::Instant;

use noisemine_bench::args::Args;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["skip-slow"]);
    let skip_slow = args.flag("skip-slow");
    let binaries: &[(&str, &[&str], bool)] = &[
        ("table_fig4", &[], false),
        ("fig07_robustness", &[], true),
        ("fig07_robustness", &["--by-length"], true),
        ("table_blosum", &[], false),
        ("fig08_matrix_error", &[], false),
        ("fig09_candidates", &[], false),
        ("fig10_sample_size", &[], true),
        ("fig11_spread", &[], false),
        ("fig12_confidence", &[], false),
        ("fig13_missed", &[], true),
        ("fig14_performance", &[], true),
        ("fig15_scalability", &[], false),
        ("ablations", &[], false),
        ("table_gapped", &[], false),
        ("table_hierarchical", &[], false),
        ("stress", &[], true),
    ];

    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    let total = Instant::now();
    for &(name, extra_args, slow) in binaries {
        if slow && skip_slow {
            println!("=== {name} (skipped: --skip-slow)\n");
            continue;
        }
        println!("=== {name} {}", extra_args.join(" "));
        let start = Instant::now();
        // `cargo run --bin run_all` only builds this target, so sibling
        // binaries may be absent on a fresh checkout; fall back to cargo.
        let exe = exe_dir.join(name);
        let status = if exe.exists() {
            Command::new(&exe).args(extra_args).status()
        } else {
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "noisemine-bench",
                    "--bin",
                    name,
                    "--",
                ])
                .args(extra_args)
                .status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
        println!(
            "[{name} finished in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
    println!(
        "all experiments finished in {:.1}s; tables printed above, CSVs in results/",
        total.elapsed().as_secs_f64()
    );
}
