//! Parallel phase-1 scan throughput (`scan_map_reduce` over both stores).
//!
//! Times [`phase1_threads`] over the same synthetic database at several
//! worker-thread counts, against both the in-memory store and the
//! disk-resident store (whose block scan overlaps file I/O with compute via
//! read-ahead double buffering). Before timing anything it verifies the
//! determinism contract: symbol matches **and** the seeded sample must be
//! bit-identical at every thread count. Results are printed as a table and
//! recorded as JSON (default `BENCH_parallel.json`), including the host's
//! available parallelism — speedups are meaningless without it.

use std::fmt::Write as _;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::SequenceScan;
use noisemine_core::miner::{phase1_threads, Phase1Output};
use noisemine_core::CompatibilityMatrix;
use noisemine_datagen::{scalability_db, sparse_random_matrix};
use noisemine_seqdb::{DiskDb, MemoryDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    backend: &'static str,
    threads: usize,
    secs: f64,
    seqs_per_sec: f64,
    speedup: f64,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "symbols",
        "sequences",
        "length",
        "sample",
        "threads",
        "repeat",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    let m = args.usize("symbols", 20);
    let n = args.usize("sequences", 20_000);
    let len = args.usize("length", 50);
    let sample = args.usize("sample", 500);
    let thread_counts = args.usize_list("threads", &[1, 2, 4, 8]);
    let repeat = args.usize("repeat", 3).max(1);
    let out = args.get("out", "BENCH_parallel.json").to_string();

    noisemine_obs::enable();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let matrix = sparse_random_matrix(m, 0.2, 0.85, seed ^ 0x57);
    let seqs = scalability_db(m, n, len, seed ^ 0x59);

    let disk_path =
        std::env::temp_dir().join(format!("noisemine-scan-bench-{}.nmdb", std::process::id()));
    let disk = DiskDb::create_from(&disk_path, seqs.iter().map(Vec::as_slice)).expect("disk db");
    let memory = MemoryDb::from_sequences(seqs);

    let mut t = Table::new(
        &format!("Parallel phase-1 scan (n = {n}, len = {len}, m = {m}, {cpus} cpu(s))"),
        ["backend", "threads", "secs", "seqs/s", "speedup"],
    );
    let mut rows = Vec::new();
    for (backend, db) in [
        ("memory", &memory as &dyn SequenceScan),
        ("disk", &disk as &dyn SequenceScan),
    ] {
        let (serial_secs, serial_p1) = run(db, &matrix, sample, seed, 1, repeat);
        for &threads in &thread_counts {
            let (secs, p1) = if threads == 1 {
                (serial_secs, serial_p1.clone())
            } else {
                run(db, &matrix, sample, seed, threads, repeat)
            };
            assert!(
                p1.symbol_match == serial_p1.symbol_match && p1.sample == serial_p1.sample,
                "{backend} phase 1 diverged at {threads} threads — determinism contract broken"
            );
            let row = Row {
                backend,
                threads,
                secs,
                seqs_per_sec: n as f64 / secs,
                speedup: serial_secs / secs,
            };
            t.row([
                row.backend.to_string(),
                row.threads.to_string(),
                format!("{:.4}", row.secs),
                format!("{:.0}", row.seqs_per_sec),
                format!("{:.2}", row.speedup),
            ]);
            rows.push(row);
        }
    }
    std::fs::remove_file(&disk_path).ok();
    t.emit(None);

    std::fs::write(&out, to_json(seed, m, n, len, sample, cpus, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// Times `repeat` runs of phase 1 (fresh seeded RNG each run, so every run
/// draws the same sample) and returns the best wall-clock with the output.
fn run(
    db: &dyn SequenceScan,
    matrix: &CompatibilityMatrix,
    sample: usize,
    seed: u64,
    threads: usize,
    repeat: usize,
) -> (f64, Phase1Output) {
    let mut best = f64::INFINITY;
    let mut output = None;
    for _ in 0..repeat {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = Instant::now();
        let p1 = phase1_threads(db, matrix, sample, &mut rng, threads);
        best = best.min(start.elapsed().as_secs_f64());
        output = Some(p1);
    }
    (best, output.expect("repeat >= 1"))
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(
    seed: u64,
    m: usize,
    n: usize,
    len: usize,
    sample: usize,
    cpus: usize,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"scan_parallel\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"symbols\": {m},");
    let _ = writeln!(s, "  \"sequences\": {n},");
    let _ = writeln!(s, "  \"seq_len\": {len},");
    let _ = writeln!(s, "  \"sample\": {sample},");
    let _ = writeln!(s, "  \"cpus\": {cpus},");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"backend\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \
             \"seqs_per_sec\": {:.1}, \"speedup\": {:.3}}}{comma}",
            r.backend, r.threads, r.secs, r.seqs_per_sec, r.speedup,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
