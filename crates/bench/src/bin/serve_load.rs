//! Load benchmark for the online match-serving layer (`noisemine-serve`).
//!
//! Starts a real in-process [`Server`] per grid point and hammers
//! `POST /v1/classify` from `concurrency` loopback client threads, over a
//! grid of model sizes (pattern counts) × client concurrency × connection
//! mode. Every request goes through the full production path — TCP accept,
//! HTTP parsing, admission, the batched trie kernel, JSON response — so the
//! numbers are end-to-end request throughput, not kernel microbenchmarks.
//!
//! `--mode close` opens a fresh connection per request (the pre-keep-alive
//! behaviour); `--mode keepalive` reuses one persistent connection per
//! client; `--mode both` (default) runs each grid point in both modes and
//! asserts the classify response bodies are byte-identical across them.
//! The default batch is a single short sequence per request — the
//! online-serving shape where connection overhead matters; `--batch` and
//! `--seq-len` scale the request body up to amortize it. The smallest
//! pattern-count grid point isolates connection handling (classification
//! is nearly free there); the larger ones show classify-cost scaling.
//! Each grid point is measured `--repeat` times and the best run is kept
//! (scheduling noise on a shared box only ever subtracts throughput).
//!
//! Reports requests/second plus p50/p99 request latency per grid point and
//! records JSON (default `BENCH_serve.json`); the CI bench gate compares
//! the `rps` column against the committed baseline.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::lattice::Border;
use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use noisemine_serve::{ModelRegistry, ServeConfig, ServeModel, Server};

struct Row {
    patterns: usize,
    concurrency: usize,
    mode: &'static str,
    requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "patterns",
        "concurrency",
        "requests",
        "batch",
        "seq-len",
        "threads",
        "mode",
        "repeat",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    let pattern_counts = args.usize_list("patterns", &[4, 16, 64]);
    let concurrencies = args.usize_list("concurrency", &[1, 8]);
    let requests = args.usize("requests", 200);
    let batch = args.usize("batch", 1);
    let seq_len = args.usize("seq-len", 10);
    let threads = args.usize("threads", 4);
    let modes: &[&str] = match args.get("mode", "both") {
        "close" => &["close"],
        "keepalive" => &["keepalive"],
        "both" => &["close", "keepalive"],
        other => panic!("--mode must be close|keepalive|both, got {other:?}"),
    };
    let repeat = args.usize("repeat", 3).max(1);
    let out = args.get("out", "BENCH_serve.json").to_string();

    noisemine_obs::enable();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let alphabet = Alphabet::amino_acids();
    let m = alphabet.len();
    let body = classify_body(&alphabet, batch, seq_len, seed);
    let close_wire = Arc::new(request_wire(&body, true));
    let ka_wire = Arc::new(request_wire(&body, false));

    let mut t = Table::new(
        &format!(
            "Serve load (batch = {batch} × len {seq_len}, {requests} req/client, \
             {threads} server thread(s), {cpus} cpu(s))"
        ),
        [
            "patterns", "clients", "mode", "requests", "rps", "p50 ms", "p99 ms",
        ],
    );
    let mut rows = Vec::new();
    for &p in &pattern_counts {
        let model = synthetic_model(&alphabet, m, p, seed);
        for &concurrency in &concurrencies {
            for &mode in modes {
                let mut best: Option<Row> = None;
                for _ in 0..repeat {
                    let registry = Arc::new(ModelRegistry::new(0.0));
                    registry.swap("default", ServeModel::compile(model.clone()));
                    let server = Server::start(
                        &ServeConfig {
                            addr: "127.0.0.1:0".into(),
                            threads,
                            ..ServeConfig::default()
                        },
                        registry,
                    )
                    .expect("server starts");
                    let addr = server.addr().to_string();

                    // The connection mode must not change classification:
                    // responses are byte-identical across close and keep-alive.
                    let reference = classify_close(&addr, &close_wire);
                    assert_eq!(status_of(&reference), 200, "warm-up classify failed");
                    let via_keepalive = {
                        let mut client = KeepAliveClient::connect(&addr);
                        client.classify(&ka_wire)
                    };
                    assert_eq!(
                        body_of(&reference),
                        body_of(&via_keepalive),
                        "classify response differs between close and keep-alive"
                    );

                    let start = Instant::now();
                    let clients: Vec<_> = (0..concurrency)
                        .map(|_| {
                            let addr = addr.clone();
                            let close_wire = Arc::clone(&close_wire);
                            let ka_wire = Arc::clone(&ka_wire);
                            std::thread::spawn(move || {
                                let mut keepalive =
                                    (mode == "keepalive").then(|| KeepAliveClient::connect(&addr));
                                let mut latencies = Vec::with_capacity(requests);
                                for _ in 0..requests {
                                    let t0 = Instant::now();
                                    let response = match &mut keepalive {
                                        Some(client) => client.classify(&ka_wire),
                                        None => classify_close(&addr, &close_wire),
                                    };
                                    assert_eq!(
                                        status_of(&response),
                                        200,
                                        "classify failed under load"
                                    );
                                    latencies.push(t0.elapsed().as_secs_f64());
                                }
                                latencies
                            })
                        })
                        .collect();
                    let mut latencies: Vec<f64> = clients
                        .into_iter()
                        .flat_map(|c| c.join().expect("client thread"))
                        .collect();
                    let wall = start.elapsed().as_secs_f64();
                    server.stop();
                    server.join();

                    latencies.sort_by(|a, b| a.total_cmp(b));
                    let total = latencies.len();
                    let row = Row {
                        patterns: p,
                        concurrency,
                        mode,
                        requests: total,
                        rps: total as f64 / wall,
                        p50_ms: 1e3 * percentile(&latencies, 0.50),
                        p99_ms: 1e3 * percentile(&latencies, 0.99),
                    };
                    // Best-of-`repeat` (highest rps): scheduling noise on a
                    // shared box only ever subtracts throughput.
                    if best.as_ref().is_none_or(|b| row.rps > b.rps) {
                        best = Some(row);
                    }
                }
                let row = best.expect("repeat >= 1");
                t.row([
                    row.patterns.to_string(),
                    row.concurrency.to_string(),
                    row.mode.to_string(),
                    row.requests.to_string(),
                    format!("{:.0}", row.rps),
                    format!("{:.3}", row.p50_ms),
                    format!("{:.3}", row.p99_ms),
                ]);
                rows.push(row);
            }
        }
    }
    t.emit(None);

    std::fs::write(&out, to_json(seed, batch, seq_len, threads, cpus, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// A model with exactly `count` deterministic contiguous patterns — grid
/// points differ only in pattern-set size, not mining noise.
fn synthetic_model(alphabet: &Alphabet, m: usize, count: usize, seed: u64) -> PatternModel {
    let matrix = CompatibilityMatrix::uniform_noise(m, 0.15).expect("valid noise");
    let mut state = seed | 1;
    let frequent = (0..count)
        .map(|_| {
            let symbols: Vec<Symbol> = (0..5)
                .map(|_| {
                    state = lcg(state);
                    Symbol(((state >> 33) % m as u64) as u16)
                })
                .collect();
            FrequentPattern {
                pattern: Pattern::contiguous(&symbols).expect("non-empty"),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }
        })
        .collect();
    let outcome = MineOutcome {
        frequent,
        border: Border::default(),
        symbol_match: vec![0.4; m],
        stats: MineStats::default(),
    };
    PatternModel::from_outcome(&outcome, alphabet, &matrix, 0.1, 1)
}

/// A fixed classify request body: `batch` random sequences of `seq_len`
/// symbol names.
fn classify_body(alphabet: &Alphabet, batch: usize, seq_len: usize, seed: u64) -> String {
    let m = alphabet.len() as u64;
    let mut state = seed ^ 0x9e37_79b9;
    let seqs: Vec<String> = (0..batch)
        .map(|_| {
            let names: Vec<String> = (0..seq_len)
                .map(|_| {
                    state = lcg(state);
                    let sym = Symbol(((state >> 33) % m) as u16);
                    format!("\"{}\"", alphabet.name(sym).expect("in range"))
                })
                .collect();
            format!("[{}]", names.join(","))
        })
        .collect();
    format!(
        "{{\"tenant\": \"default\", \"sequences\": [{}]}}",
        seqs.join(",")
    )
}

fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// The classify request rendered to wire bytes once — clients resend the
/// same bytes rather than re-formatting per request.
fn request_wire(body: &str, close: bool) -> Vec<u8> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "POST /v1/classify HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
         {connection}\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One classify request over a fresh loopback connection (`Connection:
/// close`); returns the raw response.
fn classify_close(addr: &str, wire: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(wire).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// A persistent HTTP/1.1 client: one loopback connection reused across
/// requests, responses framed by `Content-Length`.
struct KeepAliveClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: &str) -> Self {
        KeepAliveClient {
            stream: TcpStream::connect(addr).expect("connect"),
            carry: Vec::new(),
        }
    }

    /// Sends one classify request and reads exactly one framed response.
    fn classify(&mut self, wire: &[u8]) -> String {
        self.stream.write_all(wire).expect("send request");

        let mut raw = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = find_terminator(&raw) {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "connection closed mid-response");
            raw.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&raw[..head_end]).expect("utf-8 head");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("content-length"))
            })
            .expect("response has Content-Length");
        let total = head_end + 4 + content_length;
        while raw.len() < total {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            raw.extend_from_slice(&chunk[..n]);
        }
        self.carry = raw.split_off(total);
        String::from_utf8(raw).expect("utf-8 response")
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// HTTP status code of a raw response.
fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

/// Body of a raw response (everything after the head terminator).
fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default()
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(
    seed: u64,
    batch: usize,
    seq_len: usize,
    threads: usize,
    cpus: usize,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve_load\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"batch\": {batch},");
    let _ = writeln!(s, "  \"seq_len\": {seq_len},");
    let _ = writeln!(s, "  \"server_threads\": {threads},");
    let _ = writeln!(s, "  \"cpus\": {cpus},");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"patterns\": {}, \"concurrency\": {}, \"mode\": \"{}\", \"requests\": {}, \
             \"rps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{comma}",
            r.patterns, r.concurrency, r.mode, r.requests, r.rps, r.p50_ms, r.p99_ms,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
