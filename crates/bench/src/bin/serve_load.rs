//! Load benchmark for the online match-serving layer (`noisemine-serve`).
//!
//! Starts a real in-process [`Server`] per grid point and hammers
//! `POST /v1/classify` from `concurrency` loopback client threads, over a
//! grid of model sizes (pattern counts) × client concurrency. Every
//! request goes through the full production path — TCP accept, HTTP
//! parsing, admission, the batched trie kernel, JSON response — so the
//! numbers are end-to-end request throughput, not kernel microbenchmarks.
//!
//! Reports requests/second plus p50/p99 request latency per grid point and
//! records JSON (default `BENCH_serve.json`); the CI bench gate compares
//! the `rps` column against the committed baseline.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::lattice::Border;
use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use noisemine_serve::{ModelRegistry, ServeConfig, ServeModel, Server};

struct Row {
    patterns: usize,
    concurrency: usize,
    requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "patterns",
        "concurrency",
        "requests",
        "batch",
        "seq-len",
        "threads",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    let pattern_counts = args.usize_list("patterns", &[16, 64]);
    let concurrencies = args.usize_list("concurrency", &[1, 4]);
    let requests = args.usize("requests", 50);
    let batch = args.usize("batch", 16);
    let seq_len = args.usize("seq-len", 30);
    let threads = args.usize("threads", 4);
    let out = args.get("out", "BENCH_serve.json").to_string();

    noisemine_obs::enable();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let alphabet = Alphabet::amino_acids();
    let m = alphabet.len();
    let body = Arc::new(classify_body(&alphabet, batch, seq_len, seed));

    let mut t = Table::new(
        &format!(
            "Serve load (batch = {batch} × len {seq_len}, {requests} req/client, \
             {threads} server thread(s), {cpus} cpu(s))"
        ),
        ["patterns", "clients", "requests", "rps", "p50 ms", "p99 ms"],
    );
    let mut rows = Vec::new();
    for &p in &pattern_counts {
        let model = synthetic_model(&alphabet, m, p, seed);
        for &concurrency in &concurrencies {
            let registry = Arc::new(ModelRegistry::new(0.0));
            registry.swap("default", ServeModel::compile(model.clone()));
            let server = Server::start(
                &ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    threads,
                },
                registry,
            )
            .expect("server starts");
            let addr = server.addr().to_string();

            let start = Instant::now();
            let clients: Vec<_> = (0..concurrency)
                .map(|_| {
                    let addr = addr.clone();
                    let body = Arc::clone(&body);
                    std::thread::spawn(move || {
                        let mut latencies = Vec::with_capacity(requests);
                        for _ in 0..requests {
                            let t0 = Instant::now();
                            let status = classify_once(&addr, &body);
                            assert_eq!(status, 200, "classify failed under load");
                            latencies.push(t0.elapsed().as_secs_f64());
                        }
                        latencies
                    })
                })
                .collect();
            let mut latencies: Vec<f64> = clients
                .into_iter()
                .flat_map(|c| c.join().expect("client thread"))
                .collect();
            let wall = start.elapsed().as_secs_f64();
            server.stop();
            server.join();

            latencies.sort_by(|a, b| a.total_cmp(b));
            let total = latencies.len();
            let row = Row {
                patterns: p,
                concurrency,
                requests: total,
                rps: total as f64 / wall,
                p50_ms: 1e3 * percentile(&latencies, 0.50),
                p99_ms: 1e3 * percentile(&latencies, 0.99),
            };
            t.row([
                row.patterns.to_string(),
                row.concurrency.to_string(),
                row.requests.to_string(),
                format!("{:.0}", row.rps),
                format!("{:.3}", row.p50_ms),
                format!("{:.3}", row.p99_ms),
            ]);
            rows.push(row);
        }
    }
    t.emit(None);

    std::fs::write(&out, to_json(seed, batch, seq_len, threads, cpus, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// A model with exactly `count` deterministic contiguous patterns — grid
/// points differ only in pattern-set size, not mining noise.
fn synthetic_model(alphabet: &Alphabet, m: usize, count: usize, seed: u64) -> PatternModel {
    let matrix = CompatibilityMatrix::uniform_noise(m, 0.15).expect("valid noise");
    let mut state = seed | 1;
    let frequent = (0..count)
        .map(|_| {
            let symbols: Vec<Symbol> = (0..5)
                .map(|_| {
                    state = lcg(state);
                    Symbol(((state >> 33) % m as u64) as u16)
                })
                .collect();
            FrequentPattern {
                pattern: Pattern::contiguous(&symbols).expect("non-empty"),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }
        })
        .collect();
    let outcome = MineOutcome {
        frequent,
        border: Border::default(),
        symbol_match: vec![0.4; m],
        stats: MineStats::default(),
    };
    PatternModel::from_outcome(&outcome, alphabet, &matrix, 0.1, 1)
}

/// A fixed classify request body: `batch` random sequences of `seq_len`
/// symbol names.
fn classify_body(alphabet: &Alphabet, batch: usize, seq_len: usize, seed: u64) -> String {
    let m = alphabet.len() as u64;
    let mut state = seed ^ 0x9e37_79b9;
    let seqs: Vec<String> = (0..batch)
        .map(|_| {
            let names: Vec<String> = (0..seq_len)
                .map(|_| {
                    state = lcg(state);
                    let sym = Symbol(((state >> 33) % m) as u16);
                    format!("\"{}\"", alphabet.name(sym).expect("in range"))
                })
                .collect();
            format!("[{}]", names.join(","))
        })
        .collect();
    format!(
        "{{\"tenant\": \"default\", \"sequences\": [{}]}}",
        seqs.join(",")
    )
}

fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// One classify request over a fresh loopback connection; returns the
/// HTTP status.
fn classify_once(addr: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST /v1/classify HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(
    seed: u64,
    batch: usize,
    seq_len: usize,
    threads: usize,
    cpus: usize,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve_load\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"batch\": {batch},");
    let _ = writeln!(s, "  \"seq_len\": {seq_len},");
    let _ = writeln!(s, "  \"server_threads\": {threads},");
    let _ = writeln!(s, "  \"cpus\": {cpus},");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"patterns\": {}, \"concurrency\": {}, \"requests\": {}, \"rps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{comma}",
            r.patterns, r.concurrency, r.requests, r.rps, r.p50_ms, r.p99_ms,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
