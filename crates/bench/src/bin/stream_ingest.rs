//! Ingest throughput of the streaming engine (`noisemine-stream`).
//!
//! Feeds synthetic sequence batches through [`StreamState::ingest_all`] and
//! reports sustained throughput (sequences/s and symbols/s), the cost of a
//! checkpoint/restore cycle at each scale point, and the wall-clock of one
//! drift-triggered re-mine over the reservoir. Results are printed as a
//! table and recorded as JSON (default `BENCH_stream.json` in the working
//! directory) so CI can archive the numbers.

use std::fmt::Write as _;
use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::miner::MinerConfig;
use noisemine_core::PatternSpace;
use noisemine_datagen::{scalability_db, sparse_random_matrix};
use noisemine_seqdb::MemoryDb;
use noisemine_stream::StreamState;

struct Row {
    sequences: usize,
    seq_len: usize,
    ingest_secs: f64,
    seqs_per_sec: f64,
    symbols_per_sec: f64,
    checkpoint_secs: f64,
    restore_secs: f64,
    remine_secs: f64,
    frequent: usize,
}

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "seed",
        "symbols",
        "sequences",
        "length",
        "reservoir",
        "threshold",
        "max-len",
        "out",
    ]);
    let seed = args.u64("seed", 2002);
    let m = args.usize("symbols", 20);
    let scales = args.usize_list("sequences", &[1_000, 5_000, 20_000]);
    let len = args.usize("length", 50);
    let reservoir = args.usize("reservoir", 500);
    let min_match = args.f64("threshold", 0.3);
    let space = PatternSpace::contiguous(args.usize("max-len", 6));
    let out = args.get("out", "BENCH_stream.json").to_string();

    noisemine_obs::enable();
    let matrix = sparse_random_matrix(m, 0.2, 0.85, seed ^ 0x57);
    let config = MinerConfig {
        min_match,
        delta: 0.01,
        sample_size: reservoir,
        counters_per_scan: 10_000,
        space,
        seed: seed ^ 0x58,
        ..MinerConfig::default()
    };

    let mut t = Table::new(
        &format!("Streaming ingest throughput (m = {m}, reservoir = {reservoir})"),
        [
            "sequences",
            "ingest (s)",
            "seqs/s",
            "symbols/s",
            "ckpt (s)",
            "restore (s)",
            "re-mine (s)",
            "frequent",
        ],
    );
    let ckpt = std::env::temp_dir().join(format!("noisemine-bench-{}.ckpt", std::process::id()));
    let mut rows = Vec::new();
    for &n in &scales {
        let seqs = scalability_db(m, n, len, seed ^ 0x59);
        let symbols: usize = seqs.iter().map(Vec::len).sum();
        let mut engine = StreamState::new(matrix.clone(), config.clone()).expect("valid config");

        let start = Instant::now();
        engine.ingest_all(seqs.iter().map(Vec::as_slice));
        let ingest = start.elapsed().as_secs_f64();

        let start = Instant::now();
        engine.checkpoint(&ckpt).expect("checkpoint");
        let checkpoint = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut engine = StreamState::restore(&ckpt, matrix.clone()).expect("restore");
        let restore = start.elapsed().as_secs_f64();

        let db = MemoryDb::from_sequences(seqs);
        let start = Instant::now();
        let outcome = engine.mine(&db).expect("mine");
        let remine = start.elapsed().as_secs_f64();

        let row = Row {
            sequences: n,
            seq_len: len,
            ingest_secs: ingest,
            seqs_per_sec: n as f64 / ingest,
            symbols_per_sec: symbols as f64 / ingest,
            checkpoint_secs: checkpoint,
            restore_secs: restore,
            remine_secs: remine,
            frequent: outcome.frequent.len(),
        };
        t.row([
            row.sequences.to_string(),
            format!("{:.3}", row.ingest_secs),
            format!("{:.0}", row.seqs_per_sec),
            format!("{:.0}", row.symbols_per_sec),
            format!("{:.4}", row.checkpoint_secs),
            format!("{:.4}", row.restore_secs),
            format!("{:.3}", row.remine_secs),
            row.frequent.to_string(),
        ]);
        rows.push(row);
    }
    std::fs::remove_file(&ckpt).ok();
    t.emit(None);

    std::fs::write(&out, to_json(seed, m, reservoir, min_match, &rows)).expect("write json");
    println!("\nwrote {out}");
}

/// Hand-rolled JSON (the vendored serde shim does not serialize).
fn to_json(seed: u64, m: usize, reservoir: usize, min_match: f64, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"stream_ingest\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"symbols\": {m},");
    let _ = writeln!(s, "  \"reservoir\": {reservoir},");
    let _ = writeln!(s, "  \"min_match\": {min_match},");
    let _ = writeln!(
        s,
        "  \"metrics\": {},",
        noisemine_bench::metrics_json_fragment(2)
    );
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"sequences\": {}, \"seq_len\": {}, \"ingest_secs\": {:.6}, \
             \"seqs_per_sec\": {:.1}, \"symbols_per_sec\": {:.1}, \
             \"checkpoint_secs\": {:.6}, \"restore_secs\": {:.6}, \
             \"remine_secs\": {:.6}, \"frequent\": {}}}{comma}",
            r.sequences,
            r.seq_len,
            r.ingest_secs,
            r.seqs_per_sec,
            r.symbols_per_sec,
            r.checkpoint_secs,
            r.restore_secs,
            r.remine_secs,
            r.frequent,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
