//! Disk-resident stress run: the paper's deployment story at adjustable
//! scale. Generates a planted-motif database straight to the binary disk
//! format (never holding it all in memory on the mining side), then runs
//! the three-phase miner against the file and reports per-phase cost.
//!
//! Defaults are laptop-friendly (~20 K sequences, ~8 MB); pass
//! `--sequences 600000 --length 500` for the paper's full scale if you
//! have the disk and the patience.

use std::time::Instant;

use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{Pattern, PatternSpace, Symbol};
use noisemine_datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};
use noisemine_seqdb::{DiskDb, DiskDbWriter};

fn main() {
    let args = Args::parse();
    args.deny_unknown(&[
        "sequences",
        "length",
        "seed",
        "threshold",
        "samples",
        "counters",
        "batch",
    ]);
    let n = args.usize("sequences", 20_000);
    let len = args.usize("length", 200);
    let seed = args.u64("seed", 2002);
    let threshold = args.f64("threshold", 0.08);
    let samples = args.usize("samples", 2_000);
    let counters = args.usize("counters", 4_096);
    let batch = args.usize("batch", 5_000);

    let motif_syms: Vec<Symbol> = (0..12).map(Symbol).collect();
    let motif = Pattern::contiguous(&motif_syms).unwrap();
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(20, 0.15, &partners);
    let norm = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .unwrap();

    // Stream-generate to disk in batches so the generation side never holds
    // the whole database either.
    let dir = std::env::temp_dir().join(format!("noisemine-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("stress.db");
    let start = Instant::now();
    let mut writer = DiskDbWriter::create(&path).expect("create db");
    let mut written = 0u64;
    let mut batch_seed = seed;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x57);
    while (written as usize) < n {
        let count = batch.min(n - written as usize);
        let standard = generate(&GeneratorConfig {
            num_sequences: count,
            min_len: len,
            max_len: len,
            alphabet_size: 20,
            background: Background::Uniform,
            motifs: vec![PlantedMotif::new(motif.clone(), 0.5)],
            seed: batch_seed,
        });
        let noisy = apply_channel(&standard, &channel, &mut rng);
        for seq in &noisy {
            writer.write_sequence(written, seq).expect("write sequence");
            written += 1;
        }
        batch_seed = batch_seed.wrapping_add(1);
    }
    let db: DiskDb = writer.finish().expect("finalize db");
    let gen_time = start.elapsed();
    let bytes = std::fs::metadata(&path).expect("stat db").len();

    let mut t = Table::new(
        &format!("Disk-resident stress run ({n} sequences x {len} symbols)"),
        ["stage", "value"],
    );
    t.row([
        "generate + write".into(),
        format!(
            "{:.1}s ({:.1} MB, {:.1} MB/s)",
            gen_time.as_secs_f64(),
            bytes as f64 / 1e6,
            bytes as f64 / 1e6 / gen_time.as_secs_f64().max(1e-9)
        ),
    ]);

    let config = MinerConfig {
        min_match: threshold,
        delta: 0.001,
        sample_size: samples,
        counters_per_scan: counters,
        space: PatternSpace::contiguous(16),
        spread_mode: SpreadMode::Restricted,
        probe_strategy: ProbeStrategy::BorderCollapsing,
        seed,
        ..MinerConfig::default()
    };
    let start = Instant::now();
    let outcome = mine(&db, &norm, &config).expect("valid config");
    let mine_time = start.elapsed();
    assert_eq!(db.scans_performed(), outcome.stats.db_scans);

    t.row([
        "phase 1 (scan + sample)".into(),
        noisemine_bench::secs(outcome.stats.phase1_time),
    ]);
    t.row([
        "phase 2 (sample mining)".into(),
        noisemine_bench::secs(outcome.stats.phase2_time),
    ]);
    t.row([
        "phase 3 (verification)".into(),
        noisemine_bench::secs(outcome.stats.phase3_time),
    ]);
    t.row(["total mining".into(), noisemine_bench::secs(mine_time)]);
    t.row(["db scans".into(), outcome.stats.db_scans.to_string()]);
    t.row([
        "ambiguous after sample".into(),
        outcome.stats.ambiguous_after_sample.to_string(),
    ]);
    t.row([
        "frequent patterns".into(),
        outcome.frequent.len().to_string(),
    ]);
    t.row([
        "planted 12-motif recovered".into(),
        outcome
            .frequent
            .iter()
            .any(|f| f.pattern == motif)
            .to_string(),
    ]);
    t.emit(Some(std::path::Path::new("results/stress.csv")));

    std::fs::remove_dir_all(&dir).ok();
}
