//! The §5.1 in-text BLOSUM50 experiment: a test database generated
//! according to the BLOSUM50 substitution model, mined under both models
//! with the same threshold. The paper reports match accuracy/completeness
//! "well over 99 %" versus 70 % / 50 % for support.

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::{pct, Table};
use noisemine_core::matching::{MatchMetric, MemorySequences, SupportMetric};
use noisemine_core::PatternSpace;
use noisemine_datagen::accuracy_completeness;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["seed", "threshold", "mu", "max-len"]);
    let seed = args.u64("seed", 2002);
    let min_value = args.f64("threshold", 0.05);
    let mu = args.f64("mu", 0.25);
    let space = PatternSpace::contiguous(args.usize("max-len", 14));
    let workload = noisemine_bench::default_protein_workload(seed);
    let std_db = MemorySequences(workload.standard.clone());

    let reference =
        mine_levelwise(&std_db, &SupportMetric, 20, min_value, &space, usize::MAX).pattern_set();

    let (noisy, matrix) = workload.blosum_test_db(mu, seed ^ 0xb105);
    let noisy_db = MemorySequences(noisy);

    let s_test =
        mine_levelwise(&noisy_db, &SupportMetric, 20, min_value, &space, usize::MAX).pattern_set();
    let (s_acc, s_com) = accuracy_completeness(&s_test, &reference);

    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("BLOSUM posterior has positive diagonals");
    let m_test = mine_levelwise(
        &noisy_db,
        &MatchMetric { matrix: &norm },
        20,
        min_value,
        &space,
        usize::MAX,
    )
    .pattern_set();
    let (m_acc, m_com) = accuracy_completeness(&m_test, &reference);

    let mut t = Table::new(
        &format!("§5.1 in-text: BLOSUM50-mutated test database (mu = {mu})"),
        ["model", "accuracy", "completeness"],
    );
    t.row(["support", &pct(s_acc), &pct(s_com)]);
    t.row(["match", &pct(m_acc), &pct(m_com)]);
    t.emit(Some(std::path::Path::new("results/table_blosum.csv")));
    println!(
        "paper reports: match > 99% / > 99%, support 70% / 50% (600K real sequences; shape — match \
         dominating support on both measures — is the reproduction target)"
    );
}
