//! Reproduces the paper's worked example: Figure 4(b) (support and match of
//! each symbol), Figure 4(c) (2-patterns), Figure 4(d) (the match an
//! observed "d2 d2" contributes to every 2-pattern), and the Figure 5(b)
//! per-sequence match trace — all computed from the Figure 2 compatibility
//! matrix and the Figure 4(a) database.
//!
//! Values follow Definitions 3.5–3.7 exactly; the handful of places where
//! the paper's printed tables disagree with its own definitions (d1/d3 in
//! Fig. 4(b), d2d2 in Fig. 4(c), the 0.00522 narrative value) are noted in
//! the core test suite (`noisemine-core::matching`).

use noisemine_bench::table::{fmt, Table};
use noisemine_core::matching::{db_match, db_support, segment_match, MemorySequences};
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, Symbol};

fn main() {
    let alphabet = Alphabet::new((1..=5).map(|i| format!("d{i}"))).expect("distinct names");
    let matrix = CompatibilityMatrix::paper_figure2();
    let db = MemorySequences(vec![
        alphabet.encode("d1 d2 d3 d1").unwrap(),
        alphabet.encode("d4 d2 d1").unwrap(),
        alphabet.encode("d3 d4 d2 d1").unwrap(),
        alphabet.encode("d2 d2").unwrap(),
    ]);

    // Figure 4(b): support and match of each symbol.
    let mut t = Table::new(
        "Figure 4(b): support and match of each symbol",
        ["symbol", "support", "match"],
    );
    for i in 0..5u16 {
        let p = Pattern::single(Symbol(i));
        t.row([
            alphabet.name(Symbol(i)).unwrap().to_string(),
            fmt(db_support(&p, &db), 3),
            fmt(db_match(&p, &db, &matrix), 3),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/table_fig4b.csv")));

    // Figure 4(c): support and match of all 2-patterns.
    let mut t = Table::new(
        "Figure 4(c): support and match of patterns with two symbols",
        ["pattern", "support", "match"],
    );
    for a in 0..5u16 {
        for b in 0..5u16 {
            let p = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
            t.row([
                p.display(&alphabet).unwrap(),
                fmt(db_support(&p, &db), 2),
                fmt(db_match(&p, &db, &matrix), 3),
            ]);
        }
    }
    t.emit(Some(std::path::Path::new("results/table_fig4c.csv")));

    // Figure 4(d): match contributed by the observed segment "d2 d2".
    let obs = alphabet.encode("d2 d2").unwrap();
    let mut t = Table::new(
        "Figure 4(d): match contributed to each 2-pattern by an observed \"d2 d2\"",
        ["pattern", "match"],
    );
    let mut total = 0.0;
    for a in 0..5u16 {
        for b in 0..5u16 {
            let p = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
            let v = segment_match(&p, &obs, &matrix);
            total += v;
            t.row([p.display(&alphabet).unwrap(), fmt(v, 2)]);
        }
    }
    t.emit(Some(std::path::Path::new("results/table_fig4d.csv")));
    println!("sum of contributions = {total:.3} (the paper notes it is exactly 1)\n");

    // Figure 5(b): running per-symbol match after each sequence.
    let mut t = Table::new(
        "Figure 5(b): match of each symbol after examining each sequence",
        ["symbol", "seq 1", "seq 2", "seq 3", "seq 4"],
    );
    let n = db.0.len() as f64;
    let mut acc = vec![0.0f64; 5];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for seq in &db.0 {
        let mut per_seq = vec![0.0f64; 5];
        noisemine_core::matching::symbol_sequence_match_into(seq, &matrix, &mut per_seq);
        for (a, v) in acc.iter_mut().zip(&per_seq) {
            *a += v / n;
        }
        columns.push(acc.clone());
    }
    for (i, sym) in (0..5u16).map(Symbol).enumerate() {
        t.row([
            alphabet.name(sym).unwrap().to_string(),
            fmt(columns[0][i], 3),
            fmt(columns[1][i], 3),
            fmt(columns[2][i], 3),
            fmt(columns[3][i], 3),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/table_fig5b.csv")));
}
