//! Position-sensitive gapped-pattern mining at experiment scale.
//!
//! The eternal symbol `*` is one of the paper's model contributions
//! (Section 3: fixed-length gaps matter for DNA transcription factors like
//! the Zinc Finger `C**C…H**H`), but its evaluation section never measures
//! gapped mining directly. This experiment fills that gap:
//!
//! - (a) recovery: a planted gapped signature is mined back from noisy data
//!   at increasing noise degrees, under the support and match models;
//! - (b) cost: how the explored candidate space grows with the `max_gap`
//!   budget — the price of position-sensitive flexibility.

use noisemine_baselines::mine_levelwise;
use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::{db_match, db_support, MatchMetric, MemorySequences, SupportMetric};
use noisemine_core::{Alphabet, Pattern, PatternSpace};
use noisemine_datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["seed", "sequences", "threshold", "alphas"]);
    let seed = args.u64("seed", 2002);
    let n = args.usize("sequences", 400);
    let threshold = args.f64("threshold", 0.25);
    let alphas = args.f64_list("alphas", &[0.0, 0.15, 0.3, 0.45]);

    let alphabet = Alphabet::amino_acids();
    // A shortened Zinc-Finger-like signature: C **C ****H **H.
    let signature = Pattern::parse("C**C****H**H", &alphabet).expect("valid signature");
    let standard = generate(&GeneratorConfig {
        num_sequences: n,
        min_len: 30,
        max_len: 45,
        alphabet_size: 20,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(signature.clone(), 0.5)],
        seed,
    });

    // (a) recovery vs noise degree, symmetric-pair channel.
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let mut recovery = Table::new(
        &format!(
            "Gapped signature recovery vs noise (threshold = {threshold}, signature {})",
            signature.display(&alphabet).unwrap()
        ),
        [
            "alpha",
            "support",
            "match",
            "support keeps?",
            "match keeps?",
        ],
    );
    for &alpha in &alphas {
        let channel = partner_channel(20, alpha, &partners);
        let mut rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ (alpha * 100.0) as u64);
        let noisy = apply_channel(&standard, &channel, &mut rng);
        let norm = channel_to_compatibility(&channel)
            .diagonal_normalized_clamped()
            .expect("positive diagonals");
        let db = MemorySequences(noisy);
        let s = db_support(&signature, &db);
        let mv = db_match(&signature, &db, &norm);
        recovery.row([
            format!("{alpha:.2}"),
            format!("{s:.3}"),
            format!("{mv:.3}"),
            (if s >= threshold { "yes" } else { "LOST" }).into(),
            (if mv >= threshold { "yes" } else { "LOST" }).into(),
        ]);
    }
    recovery.emit(Some(std::path::Path::new(
        "results/table_gapped_recovery.csv",
    )));

    // (b) candidate-space cost vs max_gap, mined on the noisy database.
    let alpha = 0.3;
    let channel = partner_channel(20, alpha, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x9a);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let norm = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let db = MemorySequences(noisy);
    let mut cost = Table::new(
        &format!("Mining cost vs gap budget (alpha = {alpha}, threshold = {threshold})"),
        [
            "max_gap",
            "metric",
            "candidates",
            "frequent",
            "levels",
            "time (s)",
        ],
    );
    for max_gap in [0usize, 1, 2, 4] {
        let space = PatternSpace::new(max_gap, 12).expect("valid space");
        for metric in ["support", "match"] {
            let start = std::time::Instant::now();
            let (trace, frequent) = if metric == "support" {
                let r = mine_levelwise(&db, &SupportMetric, 20, threshold, &space, usize::MAX);
                (r.trace, r.frequent.len())
            } else {
                let r = mine_levelwise(
                    &db,
                    &MatchMetric { matrix: &norm },
                    20,
                    threshold,
                    &space,
                    usize::MAX,
                );
                (r.trace, r.frequent.len())
            };
            cost.row([
                max_gap.to_string(),
                metric.into(),
                trace.total_candidates().to_string(),
                frequent.to_string(),
                trace.levels().to_string(),
                noisemine_bench::secs(start.elapsed()),
            ]);
        }
    }
    cost.emit(Some(std::path::Path::new("results/table_gapped_cost.csv")));
}
