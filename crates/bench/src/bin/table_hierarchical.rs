//! Future-work experiment (paper §6): coarse-to-fine mining over symbol
//! groups for large alphabets.
//!
//! Workload: an `m`-symbol catalog where every product has a near-
//! substitute (symmetric pairs), Zipf-distributed usage, a planted
//! purchase habit, and substitution noise — the paper's E-Commerce
//! setting. For each `m`, plain level-wise mining is compared against the
//! hierarchical miner (identical outputs asserted); the win is the number
//! of full-data candidate evaluations avoided by skeleton pruning.

use std::time::Instant;

use noisemine_baselines::{mine_hierarchical, mine_levelwise};
use noisemine_bench::args::Args;
use noisemine_bench::table::Table;
use noisemine_core::matching::MatchMetric;
use noisemine_core::{Pattern, PatternSpace, Symbol};
use noisemine_datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine_datagen::{generate, Background, GeneratorConfig, PlantedMotif};
use noisemine_seqdb::MemoryDb;

fn main() {
    let args = Args::parse();
    args.deny_unknown(&["seed", "sequences", "threshold", "symbols", "alpha"]);
    let seed = args.u64("seed", 2002);
    let n = args.usize("sequences", 300);
    let threshold = args.f64("threshold", 0.2);
    let alpha = args.f64("alpha", 0.3);
    let ms = args.usize_list("symbols", &[40, 100, 200, 400]);

    let mut t = Table::new(
        &format!(
            "Future work (paper §6): hierarchical mining over symbol groups \
             (threshold = {threshold}, alpha = {alpha})"
        ),
        [
            "m",
            "groups",
            "plain candidates",
            "hier fine evals",
            "skeleton pruned",
            "plain (s)",
            "hier (s)",
        ],
    );

    for &m in &ms {
        // Planted habit over the first few even symbols.
        let motif_syms: Vec<Symbol> = (0..5).map(|i| Symbol((i * 2) as u16)).collect();
        let motif = Pattern::contiguous(&motif_syms).unwrap();
        let standard = generate(&GeneratorConfig {
            num_sequences: n,
            min_len: 20,
            max_len: 30,
            alphabet_size: m,
            background: Background::Zipf(0.7),
            motifs: vec![PlantedMotif::new(motif, 0.5)],
            seed,
        });
        let partners: Vec<Vec<usize>> = (0..m)
            .map(|i| {
                let p = i ^ 1;
                vec![if p >= m { i - 1 } else { p }]
            })
            .collect();
        let channel = partner_channel(m, alpha, &partners);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ m as u64);
        let noisy = apply_channel(&standard, &channel, &mut rng);
        let matrix = channel_to_compatibility(&channel)
            .diagonal_normalized_clamped()
            .expect("positive diagonals");
        let space = PatternSpace::contiguous(8);

        let start = Instant::now();
        let db = MemoryDb::from_sequences(noisy.clone());
        let plain = mine_levelwise(
            &db,
            &MatchMetric { matrix: &matrix },
            m,
            threshold,
            &space,
            usize::MAX,
        );
        let plain_time = start.elapsed();

        let start = Instant::now();
        let hier = mine_hierarchical(&noisy, &matrix, threshold, &space, 0.05);
        let hier_time = start.elapsed();

        assert_eq!(
            plain.pattern_set(),
            hier.pattern_set(),
            "hierarchical mining must be exact (m = {m})"
        );

        t.row([
            m.to_string(),
            hier.groups.to_string(),
            plain.trace.total_candidates().to_string(),
            hier.fine_evaluated.to_string(),
            hier.skeleton_pruned.to_string(),
            noisemine_bench::secs(plain_time),
            noisemine_bench::secs(hier_time),
        ]);
    }
    t.emit(Some(std::path::Path::new("results/table_hierarchical.csv")));
    println!(
        "identical frequent sets asserted at every m; 'skeleton pruned' candidates were \
         discarded from the cheap quotient pass instead of being counted against the full data"
    );
}
