//! # noisemine-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 5). Each `src/bin/` binary reproduces one
//! figure and prints the same rows/series the paper reports; `run_all`
//! executes the full suite. Criterion microbenchmarks live in `benches/`.
//!
//! All binaries take `--key value` overrides for scale parameters; the
//! defaults are laptop-scale versions of the paper's workloads, chosen to
//! preserve the *shape* of every result.

pub mod args;
pub mod table;

use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};

/// The default laptop-scale protein workload shared by the §5.1–§5.6
/// experiments (the paper uses 600 K NCBI sequences; see DESIGN.md for the
/// substitution rationale).
pub fn default_protein_workload(seed: u64) -> ProteinWorkload {
    ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: 600,
        min_len: 40,
        max_len: 60,
        num_motifs: 6,
        min_motif_len: 3,
        max_motif_len: 12,
        occurrence: 0.4,
        seed,
    })
}

/// A larger, shorter-sequence workload for the sampling experiments
/// (Figures 10-13): the Chernoff machinery needs enough sequences that the
/// error band `ε` fits under the threshold (see
/// `noisemine_core::sample_miner::DEFAULT_MAX_SAMPLE_PATTERNS`), and
/// shorter sequences keep the random-occurrence floor of short patterns
/// below the classification band.
pub fn sampling_protein_workload(seed: u64, num_sequences: usize) -> ProteinWorkload {
    ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences,
        min_len: 30,
        max_len: 40,
        num_motifs: 5,
        min_motif_len: 3,
        max_motif_len: 10,
        occurrence: 0.4,
        seed,
    })
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Renders the process-wide metrics registry as a JSON fragment suitable
/// for embedding as a value inside a larger hand-rolled document, indented
/// by `indent` spaces (the first line is not indented — it follows a key).
///
/// Benches call [`noisemine_obs::enable`] up front and embed this under a
/// `"metrics"` key so every `BENCH_*.json` carries the instrumentation
/// counters (scans, bytes, stall counts, span histograms) alongside the
/// wall-clock rows.
pub fn metrics_json_fragment(indent: usize) -> String {
    let doc = noisemine_obs::global().snapshot().to_json();
    let pad = " ".repeat(indent);
    let mut out = String::with_capacity(doc.len());
    for (i, line) in doc.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            if !line.is_empty() {
                out.push_str(&pad);
            }
        }
        out.push_str(line);
    }
    out
}
