//! Aligned text tables (and CSV) for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table, printed like the paper's result tables.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title (e.g. `"Figure 7(a): accuracy vs alpha"`)
    /// and column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>w$}", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the rendered table to stdout and, when `csv_path` is set,
    /// writes the CSV alongside.
    pub fn emit(&self, csv_path: Option<&std::path::Path>) {
        print!("{}", self.render());
        println!();
        if let Some(path) = csv_path {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(path, self.to_csv())
                .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
            println!("[csv written to {}]", path.display());
            println!();
        }
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", ["alpha", "accuracy"]);
        t.row(["0.1", "99.0%"]);
        t.row(["0.6", "61.5%"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", ["a", "b"]);
        t.row(["1,5", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", ["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(0.12345, 3), "0.123");
        assert_eq!(pct(0.615), "61.5%");
    }
}
