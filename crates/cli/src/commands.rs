//! Implementations of the `noisemine` subcommands.

use std::path::Path;

use noisemine_baselines::{
    mine_depth_first, mine_levelwise, mine_maxminer, mine_top_k, MaxMinerConfig,
};
use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::matching::{db_match, db_support, MatchMetric, MemorySequences, SequenceScan};
use noisemine_core::miner::{mine, mine_indexed, MinerConfig};
use noisemine_core::{
    matrix_io, Alphabet, CompatibilityMatrix, IndexMode, MatchKernel, Pattern, PatternModel,
    PatternSpace, Symbol,
};
use noisemine_datagen::learn_matrix;
use noisemine_datagen::noise::{channel_to_compatibility, partner_channel};
use noisemine_datagen::{
    apply_channel, apply_uniform_noise, blosum, generate, Background, GeneratorConfig, PlantedMotif,
};
use noisemine_seqdb::{text, DiskDb, FaultPolicy, MemoryDb};
use noisemine_stream::StreamState;

use crate::opts::{CliResult, Opts};

/// `noisemine gen` — generate a synthetic sequence database (and its
/// compatibility matrix) as text files.
pub fn cmd_gen(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&[
        "out",
        "matrix-out",
        "sequences",
        "min-len",
        "max-len",
        "alphabet",
        "motifs",
        "occurrence",
        "noise",
        "seed",
    ])?;
    let out = opts.required("out")?;
    let n = opts.num("sequences", 1000usize)?;
    let min_len = opts.num("min-len", 40usize)?;
    let max_len = opts.num("max-len", 60usize)?;
    let seed = opts.num("seed", 2002u64)?;
    let occurrence = opts.num("occurrence", 0.4f64)?;

    let alphabet = parse_alphabet(opts.get_or("alphabet", "amino"))?;
    let m = alphabet.len();

    let motifs: Vec<PlantedMotif> = match opts.get("motifs") {
        None => Vec::new(),
        Some(spec) => spec
            .split(',')
            .map(|tok| {
                let (pat, occ) = match tok.split_once(':') {
                    Some((p, o)) => (
                        p,
                        o.parse::<f64>()
                            .map_err(|_| format!("motif occurrence {o:?} is not a number"))?,
                    ),
                    None => (tok, occurrence),
                };
                let pattern = Pattern::parse(pat.trim(), &alphabet)
                    .map_err(|e| format!("motif {pat:?}: {e}"))?;
                Ok(PlantedMotif::new(pattern, occ))
            })
            .collect::<CliResult<_>>()?,
    };

    let standard = generate(&GeneratorConfig {
        num_sequences: n,
        min_len,
        max_len,
        alphabet_size: m,
        background: Background::Uniform,
        motifs,
        seed,
    });

    // Optional noise channel: "uniform:0.2", "partner:0.3", "blosum:0.2".
    let (sequences, matrix) = match opts.get("noise") {
        None => (standard, CompatibilityMatrix::identity(m)),
        Some(spec) => {
            let (kind, level) = spec
                .split_once(':')
                .ok_or_else(|| format!("--noise {spec:?} must be kind:level, e.g. uniform:0.2"))?;
            let level: f64 = level
                .parse()
                .map_err(|_| format!("noise level {level:?} is not a number"))?;
            let mut rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x006e_015e);
            match kind {
                "uniform" => {
                    let noisy = apply_uniform_noise(&standard, level, m, &mut rng);
                    let matrix =
                        CompatibilityMatrix::uniform_noise(m, level).map_err(|e| e.to_string())?;
                    (noisy, matrix)
                }
                "partner" => {
                    let partners: Vec<Vec<usize>> = if m == 20 {
                        blosum::partner_map(1)
                    } else {
                        (0..m).map(|i| vec![i_xor_1_clamped(i, m)]).collect()
                    };
                    let channel = partner_channel(m, level, &partners);
                    let noisy = apply_channel(&standard, &channel, &mut rng);
                    (noisy, channel_to_compatibility(&channel))
                }
                "blosum" => {
                    if m != 20 {
                        return Err("--noise blosum requires the amino alphabet".into());
                    }
                    let channel = blosum::mutation_channel(level);
                    let noisy = apply_channel(&standard, &channel, &mut rng);
                    (noisy, blosum::compatibility_matrix(level))
                }
                other => return Err(format!("unknown noise kind {other:?}").into()),
            }
        }
    };

    text::write_sequences_file(out, &sequences, &alphabet).map_err(|e| e.to_string())?;
    println!("wrote {} sequences to {out}", sequences.len());
    if let Some(matrix_out) = opts.get("matrix-out") {
        let rendered = if m > 64 {
            matrix_io::to_sparse_string(&alphabet, &matrix)
        } else {
            matrix_io::to_dense_string(&alphabet, &matrix)
        }
        .map_err(|e| e.to_string())?;
        std::fs::write(matrix_out, rendered).map_err(|e| e.to_string())?;
        println!("wrote compatibility matrix to {matrix_out}");
    }
    Ok(())
}

/// `noisemine learn` — estimate a compatibility matrix from paired
/// (truth, observed) sequence files.
pub fn cmd_learn(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&["truth", "observed", "out", "lambda"])?;
    let truth_path = opts.required("truth")?;
    let observed_path = opts.required("observed")?;
    let out = opts.required("out")?;
    let lambda = opts.num("lambda", 0.0f64)?;

    // The alphabet must cover both files; infer from their concatenation.
    let mut text_both =
        std::fs::read_to_string(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
    text_both.push('\n');
    text_both.push_str(
        &std::fs::read_to_string(observed_path).map_err(|e| format!("{observed_path}: {e}"))?,
    );
    let alphabet =
        noisemine_seqdb::infer_alphabet(text_both.as_bytes()).map_err(|e| e.to_string())?;

    let truth = text::read_sequences_file(truth_path, &alphabet).map_err(|e| e.to_string())?;
    let observed =
        text::read_sequences_file(observed_path, &alphabet).map_err(|e| e.to_string())?;
    let matrix =
        learn_matrix(&truth, &observed, alphabet.len(), lambda).map_err(|e| e.to_string())?;

    let rendered = if alphabet.len() > 64 {
        matrix_io::to_sparse_string(&alphabet, &matrix)
    } else {
        matrix_io::to_dense_string(&alphabet, &matrix)
    }
    .map_err(|e| e.to_string())?;
    std::fs::write(out, rendered).map_err(|e| e.to_string())?;
    println!(
        "learned a {m}x{m} compatibility matrix from {} paired sequences (lambda = {lambda});          wrote {out}",
        truth.len(),
        m = alphabet.len(),
    );
    Ok(())
}

/// `noisemine stats` — database statistics (and per-symbol matches when a
/// matrix is given).
pub fn cmd_stats(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&["db", "matrix"])?;
    let (alphabet, sequences) = load_db(opts)?;
    let db = MemorySequences(sequences);
    let n = db.num_sequences();
    let total: usize = db.0.iter().map(Vec::len).sum();
    let (min_l, max_l) =
        db.0.iter()
            .map(Vec::len)
            .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
    println!("sequences:        {n}");
    println!("symbols total:    {total}");
    println!("alphabet size:    {}", alphabet.len());
    if n > 0 {
        println!(
            "length min/avg/max: {min_l} / {:.1} / {max_l}",
            total as f64 / n as f64
        );
    }

    // Symbol frequencies.
    let mut counts = vec![0usize; alphabet.len()];
    for seq in &db.0 {
        for s in seq {
            counts[s.index()] += 1;
        }
    }
    println!("\n{:<10} {:>10} {:>10}", "symbol", "count", "freq");
    let mut order: Vec<usize> = (0..alphabet.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    for &i in order.iter().take(20) {
        println!(
            "{:<10} {:>10} {:>9.2}%",
            alphabet.name(Symbol(i as u16)).map_err(|e| e.to_string())?,
            counts[i],
            100.0 * counts[i] as f64 / total.max(1) as f64,
        );
    }

    if let Some(matrix_path) = opts.get("matrix") {
        let (_, matrix) = load_matrix(matrix_path, &alphabet)?;
        let matches = noisemine_core::matching::symbol_db_match(&db, &matrix);
        println!("\n{:<10} {:>10}", "symbol", "match");
        for &i in order.iter().take(20) {
            println!(
                "{:<10} {:>10.4}",
                alphabet.name(Symbol(i as u16)).map_err(|e| e.to_string())?,
                matches[i],
            );
        }
    }
    Ok(())
}

/// `noisemine match` — support and match of one pattern.
pub fn cmd_match(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&["db", "matrix", "pattern", "normalize"])?;
    let (alphabet, sequences) = load_db(opts)?;
    let db = MemorySequences(sequences);
    let pattern =
        Pattern::parse(opts.required("pattern")?, &alphabet).map_err(|e| e.to_string())?;
    println!(
        "pattern {} (length {}, {} concrete symbols)",
        pattern.display(&alphabet).map_err(|e| e.to_string())?,
        pattern.len(),
        pattern.non_eternal_count(),
    );
    println!("support: {:.6}", db_support(&pattern, &db));
    if let Some(matrix_path) = opts.get("matrix") {
        let (_, matrix) = load_matrix(matrix_path, &alphabet)?;
        let matrix = maybe_normalize(matrix, opts)?;
        println!("match:   {:.6}", db_match(&pattern, &db, &matrix));
    }
    Ok(())
}

/// `noisemine convert` — text ↔ binary sequence database conversion.
pub fn cmd_convert(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&["db", "out", "matrix", "index"])?;
    let input = opts.required("db")?;
    let out = opts.required("out")?;
    let index_mode = parse_index(opts)?;
    let to_binary = out.ends_with(".nmdb");
    if to_binary {
        // Binary files store symbol ids, so the encoding alphabet must
        // match whatever matrix is used at mining time — pass --matrix to
        // pin it; inference orders symbols by first occurrence.
        let (alphabet, how) = match opts.get("matrix") {
            Some(matrix_path) => (load_matrix_alphabet(matrix_path)?, "from --matrix"),
            None => (infer(input)?, "inferred"),
        };
        let sequences = text::read_sequences_file(input, &alphabet).map_err(|e| e.to_string())?;
        let db = DiskDb::create_from(out, sequences.iter().map(Vec::as_slice))
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {} sequences to binary database {out} (alphabet {how}: {} symbols; \
             note: binary files store ids, keep the alphabet alongside)",
            sequences.len(),
            alphabet.len(),
        );
        if index_mode.enabled() {
            let index = noisemine_seqdb::index::build_index(&db, alphabet.len())
                .map_err(|e| e.to_string())?;
            let side =
                noisemine_seqdb::index::write_sidecar(&db, &index).map_err(|e| e.to_string())?;
            println!(
                "wrote symbol index sidecar {} ({} sequences, {} symbols)",
                side.display(),
                index.num_sequences(),
                index.alphabet_size(),
            );
        }
    } else {
        return Err("convert currently writes binary .nmdb only; name the output *.nmdb".into());
    }
    Ok(())
}

/// `noisemine mine` — run a miner over a text database, or a binary
/// `.nmdb` database (scans stream from disk under the `--on-fault`
/// policy).
pub fn cmd_mine(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&[
        "db",
        "matrix",
        "min-match",
        "normalize",
        "max-gap",
        "max-len",
        "algorithm",
        "sample",
        "delta",
        "counters",
        "strategy",
        "seed",
        "threads",
        "kernel",
        "index",
        "limit",
        "top",
        "format",
        "metrics-out",
        "on-fault",
        "model-out",
        "model-version",
    ])?;
    let sink = metrics_sink(opts);
    if opts.required("db")?.ends_with(".nmdb") {
        return mine_binary(opts, sink.as_ref());
    }
    if opts.get("on-fault").is_some() {
        return Err(
            "--on-fault applies to binary .nmdb databases (text files are read whole)".into(),
        );
    }
    let (alphabet, sequences) = load_db(opts)?;
    let m = alphabet.len();
    let matrix = match opts.get("matrix") {
        Some(path) => load_matrix(path, &alphabet)?.1,
        None => CompatibilityMatrix::identity(m),
    };
    let matrix = maybe_normalize(matrix, opts)?;
    let min_match = opts.num("min-match", 0.1f64)?;
    let space = PatternSpace::new(opts.num("max-gap", 0usize)?, opts.num("max-len", 16usize)?)
        .map_err(|e| e.to_string())?;
    let algorithm = opts.get_or("algorithm", "three-phase");
    let limit = opts.num("limit", 50usize)?;

    let format = opts.get_or("format", "table");
    if !["table", "csv", "json"].contains(&format) {
        return Err(format!("unknown --format {format:?}; use table, csv, or json").into());
    }
    if opts.get("model-out").is_some() && (algorithm != "three-phase" || opts.get("top").is_some())
    {
        return Err(
            "--model-out needs the three-phase miner (it serializes the miner's full \
             outcome); drop --top and use --algorithm three-phase"
                .into(),
        );
    }

    // `--top k` switches to threshold-free best-first mining.
    if let Some(k) = opts.get("top") {
        let k: usize = k
            .parse()
            .map_err(|_| format!("--top got unparsable value {k:?}"))?;
        let r = mine_top_k(&sequences, &matrix, k, &space);
        eprintln!(
            "top-{k} patterns ({} evaluated, implied threshold {:.4}):",
            r.evaluated, r.implied_threshold
        );
        write_metrics(sink.as_ref())?;
        return emit(&r.patterns, r.patterns.len(), &alphabet, format);
    }

    let frequent: Vec<(Pattern, f64)> = match algorithm {
        "three-phase" => {
            let db = MemoryDb::from_sequences(sequences);
            let config = MinerConfig {
                min_match,
                delta: opts.num("delta", 0.001f64)?,
                sample_size: opts.num("sample", db.sequences().len())?,
                counters_per_scan: opts.num("counters", 100_000usize)?,
                space,
                probe_strategy: match opts.get_or("strategy", "border") {
                    "border" => ProbeStrategy::BorderCollapsing,
                    "levelwise" => ProbeStrategy::LevelWise,
                    other => return Err(format!("unknown strategy {other:?}").into()),
                },
                seed: opts.num("seed", 2002u64)?,
                threads: opts.num("threads", 0usize)?,
                match_kernel: parse_kernel(opts)?,
                index: parse_index(opts)?,
                ..MinerConfig::default()
            };
            let outcome = mine(&db, &matrix, &config).map_err(|e| e.to_string())?;
            eprintln!(
                "three-phase miner: {} db scans, {} sample-confident, {} verified, {} implied",
                outcome.stats.db_scans,
                outcome.stats.sample_frequent,
                outcome.stats.verified_patterns,
                outcome.stats.propagated_patterns,
            );
            maybe_write_model(opts, &outcome, &alphabet, &matrix, min_match)?;
            outcome
                .frequent
                .into_iter()
                .map(|f| (f.pattern, f.match_estimate))
                .collect()
        }
        "levelwise" => {
            let db = MemoryDb::from_sequences(sequences);
            let r = mine_levelwise(
                &db,
                &MatchMetric { matrix: &matrix },
                m,
                min_match,
                &space,
                usize::MAX,
            );
            eprintln!(
                "level-wise miner: {} scans, {} levels",
                r.scans,
                r.trace.levels()
            );
            r.frequent
        }
        "depth-first" => {
            let r = mine_depth_first(&sequences, &matrix, min_match, &space);
            eprintln!(
                "depth-first miner: {} patterns evaluated, depth {}",
                r.patterns_evaluated, r.max_depth
            );
            r.frequent
        }
        "max-miner" => {
            let db = MemoryDb::from_sequences(sequences);
            let r = mine_maxminer(
                &db,
                &MatchMetric { matrix: &matrix },
                m,
                min_match,
                &space,
                &MaxMinerConfig::default(),
            );
            eprintln!(
                "max-miner: {} scans, {} look-ahead hits",
                r.scans, r.lookahead_hits
            );
            r.frequent
                .into_iter()
                .map(|(p, v)| (p, v.unwrap_or(min_match)))
                .collect()
        }
        other => {
            return Err(format!(
                "unknown algorithm {other:?}; use three-phase, levelwise, depth-first, or max-miner"
            )
            .into())
        }
    };

    let mut sorted = frequent;
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    eprintln!(
        "{} frequent patterns (match >= {min_match}); top {}:",
        sorted.len(),
        limit.min(sorted.len())
    );
    write_metrics(sink.as_ref())?;
    emit(&sorted, limit, &alphabet, format)
}

/// Mines a binary `.nmdb` database with the three-phase miner, scanning
/// directly from disk: every pass streams through the fallible scan path
/// under the policy picked by `--on-fault` (see docs/ROBUSTNESS.md).
fn mine_binary(opts: &Opts, sink: Option<&noisemine_obs::FileSink>) -> CliResult<()> {
    let path = opts.required("db")?;
    let policy = parse_on_fault(opts)?;
    let db = DiskDb::open_with_policy(path, policy).map_err(|e| format!("{path}: {e}"))?;
    if !db.quarantined().is_empty() {
        eprintln!(
            "quarantined {} corrupt record(s); mining the {} surviving sequence(s)",
            db.quarantined().len(),
            db.num_sequences(),
        );
    }
    let algorithm = opts.get_or("algorithm", "three-phase");
    if algorithm != "three-phase" {
        return Err(format!(
            "binary databases mine with --algorithm three-phase (got {algorithm:?}); \
             the baseline miners need a text database"
        )
        .into());
    }
    if opts.get("top").is_some() {
        return Err("--top needs a text database".into());
    }
    let format = opts.get_or("format", "table");
    if !["table", "csv", "json"].contains(&format) {
        return Err(format!("unknown --format {format:?}; use table, csv, or json").into());
    }

    // Binary files store symbol ids only. Names come from --matrix; without
    // one, a sizing scan (itself under the fault policy) picks a synthetic
    // alphabet large enough for every surviving symbol.
    let (alphabet, matrix) = match opts.get("matrix") {
        Some(matrix_path) => {
            let alphabet = load_matrix_alphabet(matrix_path)?;
            let matrix = load_matrix(matrix_path, &alphabet)?.1;
            (alphabet, matrix)
        }
        None => {
            let mut max = 0usize;
            db.try_scan(&mut |_, seq| {
                for s in seq {
                    max = max.max(s.index());
                }
            })
            .map_err(|e| format!("{path}: {e}"))?;
            let alphabet = Alphabet::synthetic((max + 1).max(2));
            let m = alphabet.len();
            (alphabet, CompatibilityMatrix::identity(m))
        }
    };
    let matrix = maybe_normalize(matrix, opts)?;
    let min_match = opts.num("min-match", 0.1f64)?;
    let index_mode = parse_index(opts)?;
    // `--index build` rebuilds the sidecar unconditionally; `--index use`
    // loads it when it still matches the database (and quarantine view),
    // rebuilding otherwise — a stale sidecar is never silently used.
    let sidecar = match index_mode {
        IndexMode::Off => None,
        IndexMode::Build => {
            let index = noisemine_seqdb::index::build_index(&db, alphabet.len())
                .map_err(|e| format!("{path}: {e}"))?;
            let side = noisemine_seqdb::index::write_sidecar(&db, &index)
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "built symbol index over {} sequence(s); sidecar {}",
                index.num_sequences(),
                side.display(),
            );
            Some(index)
        }
        IndexMode::Use => {
            let fresh = noisemine_seqdb::load_validated(&db)
                .map_err(|e| format!("{path}: {e}"))?
                .filter(|ix| ix.alphabet_size() >= alphabet.len());
            let index = match fresh {
                Some(index) => {
                    eprintln!(
                        "using symbol index sidecar ({} sequence(s))",
                        index.num_sequences()
                    );
                    index
                }
                None => {
                    eprintln!("symbol index sidecar missing or stale; rebuilding");
                    noisemine_seqdb::ensure_index(&db, alphabet.len())
                        .map_err(|e| format!("{path}: {e}"))?
                }
            };
            Some(index)
        }
    };
    let config = MinerConfig {
        min_match,
        delta: opts.num("delta", 0.001f64)?,
        sample_size: opts.num("sample", db.num_sequences() as usize)?,
        counters_per_scan: opts.num("counters", 100_000usize)?,
        space: PatternSpace::new(opts.num("max-gap", 0usize)?, opts.num("max-len", 16usize)?)
            .map_err(|e| e.to_string())?,
        probe_strategy: match opts.get_or("strategy", "border") {
            "border" => ProbeStrategy::BorderCollapsing,
            "levelwise" => ProbeStrategy::LevelWise,
            other => return Err(format!("unknown strategy {other:?}").into()),
        },
        seed: opts.num("seed", 2002u64)?,
        threads: opts.num("threads", 0usize)?,
        match_kernel: parse_kernel(opts)?,
        index: index_mode,
        ..MinerConfig::default()
    };
    let outcome = mine_indexed(&db, &matrix, &config, sidecar.as_ref())
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "three-phase miner: {} db scans, {} sample-confident, {} verified, {} implied",
        outcome.stats.db_scans,
        outcome.stats.sample_frequent,
        outcome.stats.verified_patterns,
        outcome.stats.propagated_patterns,
    );
    maybe_write_model(opts, &outcome, &alphabet, &matrix, min_match)?;
    let mut sorted: Vec<(Pattern, f64)> = outcome
        .frequent
        .into_iter()
        .map(|f| (f.pattern, f.match_estimate))
        .collect();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let limit = opts.num("limit", 50usize)?;
    eprintln!(
        "{} frequent patterns (match >= {min_match}); top {}:",
        sorted.len(),
        limit.min(sorted.len())
    );
    write_metrics(sink)?;
    emit(&sorted, limit, &alphabet, format)
}

/// Writes the mined outcome as a versioned `NMMODEL` serving artifact
/// when `--model-out` is given (see docs/SERVING.md).
fn maybe_write_model(
    opts: &Opts,
    outcome: &noisemine_core::miner::MineOutcome,
    alphabet: &Alphabet,
    matrix: &CompatibilityMatrix,
    min_match: f64,
) -> CliResult<()> {
    let Some(path) = opts.get("model-out") else {
        return Ok(());
    };
    let version = opts.num("model-version", 1u64)?;
    let model = PatternModel::from_outcome(outcome, alphabet, matrix, min_match, version);
    noisemine_serve::write_model(path, &model).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote model v{version} ({} patterns) to {path}",
        model.patterns.len()
    );
    Ok(())
}

/// `noisemine serve` — the online match-serving HTTP server: loads
/// `NMMODEL` artifacts into per-tenant slots (from explicit `--model`
/// specs and/or a watched `--catalog` directory) and classifies incoming
/// sequences against them until `POST /admin/shutdown` (or SIGKILL). With
/// `--drift`, classified traffic feeds per-tenant drift detectors and the
/// server re-mines and self-swaps its own models. See docs/SERVING.md for
/// the API and lifecycle.
pub fn cmd_serve(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&[
        "model",
        "addr",
        "threads",
        "kernel",
        "tenant-quota",
        "metrics-out",
        "max-requests-per-conn",
        "idle-timeout",
        "catalog",
        "catalog-interval",
        "drift",
        "drift-interval",
        "drift-min-seqs",
        "remine-timeout",
        "remine-backoff",
        "remine-backoff-max",
        "breaker-threshold",
        "breaker-cooldown",
        "drift-sample",
        "drift-max-len",
        "drift-max-gap",
        "drift-max-buffer",
    ])?;
    let sink = metrics_sink(opts);
    let catalog_root = opts.get("catalog");
    if opts.get("model").is_none() && catalog_root.is_none() {
        return Err("serve needs --model <spec> and/or --catalog <dir>".into());
    }
    let quota = opts.num("tenant-quota", 0.0f64)?;
    let registry = std::sync::Arc::new(noisemine_serve::ModelRegistry::new(quota));
    for part in opts.get("model").unwrap_or("").split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // `tenant=path`, or a bare path served as the "default" tenant.
        let (tenant, path) = match part.split_once('=') {
            Some((t, p)) => (t, p),
            None => ("default", part),
        };
        if tenant.is_empty() {
            return Err(format!("--model entry {part:?} has an empty tenant name").into());
        }
        let model = noisemine_serve::read_model(path).map_err(|e| e.to_string())?;
        let compiled = noisemine_serve::ServeModel::compile(model);
        eprintln!(
            "tenant {tenant}: model v{} ({} patterns) from {path}",
            compiled.version(),
            compiled.num_patterns()
        );
        registry.swap(tenant, compiled);
    }
    // Catalog: sync once before serving (so /readyz is meaningful from the
    // first request), then hand the directory to the supervisor thread.
    let catalog_supervisor = match catalog_root {
        Some(root) => {
            let catalog = noisemine_serve::Catalog::new(root);
            let report = catalog.sync(&registry);
            for (tenant, version) in &report.adopted {
                eprintln!("tenant {tenant}: adopted v{version} from catalog");
            }
            for tenant in &report.modelless {
                eprintln!("tenant {tenant}: no valid model in catalog yet (degraded)");
            }
            let interval = positive_secs(opts, "catalog-interval", 2.0)?;
            Some(noisemine_serve::CatalogSupervisor::spawn(
                catalog,
                std::sync::Arc::clone(&registry),
                interval,
            ))
        }
        None => None,
    };
    // Drift loop: optional, catalog-backed when both are configured.
    let (drift_controller, drift_supervisor) = if opts.flag("drift") {
        let drift_config = noisemine_serve::DriftConfig {
            interval: positive_secs(opts, "drift-interval", 1.0)?,
            min_sequences: opts.num("drift-min-seqs", 256u64)?,
            remine_timeout: positive_secs(opts, "remine-timeout", 30.0)?,
            backoff_base: positive_secs(opts, "remine-backoff", 1.0)?,
            backoff_max: positive_secs(opts, "remine-backoff-max", 60.0)?,
            breaker_threshold: opts.num("breaker-threshold", 5u32)?.max(1),
            breaker_cooldown: positive_secs(opts, "breaker-cooldown", 30.0)?,
            max_buffer: opts.num("drift-max-buffer", 100_000usize)?,
            sample_size: opts.num("drift-sample", 512usize)?,
            max_len: opts.num("drift-max-len", 8usize)?,
            max_gap: opts.num("drift-max-gap", 0usize)?,
            ..noisemine_serve::DriftConfig::default()
        };
        let (controller, supervisor) = noisemine_serve::DriftSupervisor::spawn(
            drift_config,
            std::sync::Arc::clone(&registry),
            catalog_root.map(noisemine_serve::Catalog::new),
        );
        (Some(controller), Some(supervisor))
    } else {
        (None, None)
    };
    let idle_timeout = opts.num("idle-timeout", 10.0f64)?;
    if !idle_timeout.is_finite() || idle_timeout <= 0.0 {
        return Err(format!("--idle-timeout must be positive seconds, got {idle_timeout}").into());
    }
    let config = noisemine_serve::ServeConfig {
        addr: opts.get_or("addr", "127.0.0.1:7700").to_string(),
        threads: opts.num("threads", 4usize)?.max(1),
        max_requests_per_conn: opts.num("max-requests-per-conn", 0usize)?,
        idle_timeout: std::time::Duration::from_secs_f64(idle_timeout),
        kernel: parse_kernel(opts)?,
        ..noisemine_serve::ServeConfig::default()
    };
    let server = noisemine_serve::Server::start_with(&config, registry, drift_controller)
        .map_err(|e| e.to_string())?;
    // Printed (and flushed) so scripts binding port 0 can discover the
    // actual address before the first request.
    println!("serving on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    if let Some(s) = drift_supervisor {
        s.stop();
    }
    if let Some(s) = catalog_supervisor {
        s.stop();
    }
    write_metrics(sink.as_ref())?;
    eprintln!("server stopped");
    Ok(())
}

/// Parses `--<name>` as positive seconds into a `Duration`.
fn positive_secs(opts: &Opts, name: &str, default: f64) -> CliResult<std::time::Duration> {
    let secs = opts.num(name, default)?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("--{name} must be positive seconds, got {secs}").into());
    }
    Ok(std::time::Duration::from_secs_f64(secs))
}

/// Parses `--kernel trie|naive|simd` into a [`MatchKernel`] (default:
/// trie — the batched candidate-trie kernel; naive is the per-pattern
/// reference oracle, bit-identical but slower; simd is the columnar
/// AVX2 kernel, held to the trie's values by a zero-ULP contract, with a
/// portable scalar path on hosts without AVX2+FMA or under
/// `NOISEMINE_FORCE_SCALAR=1`).
fn parse_kernel(opts: &Opts) -> CliResult<MatchKernel> {
    let name = opts.get_or("kernel", "trie");
    MatchKernel::parse(name)
        .ok_or_else(|| format!("unknown --kernel {name:?}; use trie, naive, or simd").into())
}

/// Parses `--index off|build|use` into an [`IndexMode`] (default: off).
/// `build` constructs the positional symbol index (and, for binary
/// databases, persists the `NMIDX` sidecar); `use` loads a previously
/// written sidecar, rebuilding if it is stale. See docs/INDEXING.md.
fn parse_index(opts: &Opts) -> CliResult<IndexMode> {
    let name = opts.get_or("index", "off");
    IndexMode::parse(name)
        .ok_or_else(|| format!("unknown --index {name:?}; use off, build, or use").into())
}

/// Parses `--on-fault strict|retry[:N]|quarantine` into a [`FaultPolicy`]
/// (default: strict — fail on the first damaged byte).
fn parse_on_fault(opts: &Opts) -> CliResult<FaultPolicy> {
    let spec = opts.get_or("on-fault", "strict");
    if spec == "strict" {
        return Ok(FaultPolicy::Strict);
    }
    if spec == "quarantine" {
        return Ok(FaultPolicy::Quarantine);
    }
    if spec == "retry" || spec.starts_with("retry:") {
        let attempts = match spec.strip_prefix("retry:") {
            None => 3,
            Some(n) => n
                .parse::<u32>()
                .map_err(|_| format!("--on-fault retry:{n}: attempts must be an integer"))?,
        };
        return Ok(FaultPolicy::Retry {
            attempts,
            backoff: std::time::Duration::from_millis(20),
        });
    }
    Err(format!("unknown --on-fault {spec:?}; use strict, retry[:N], or quarantine").into())
}

/// `noisemine stream` — incremental ingestion + drift-triggered re-mining.
///
/// Reads a text database (or stdin with `--db -`), feeds it to a
/// [`StreamState`] in `--chunk`-sized batches, and re-mines only when the
/// per-symbol match estimates drift past the Chernoff bound. With
/// `--checkpoint`, engine state persists across invocations: a later run
/// against a *grown* file restores the engine and ingests only the tail
/// (the miner configuration is then taken from the checkpoint, not the
/// flags).
pub fn cmd_stream(opts: &Opts) -> CliResult<()> {
    opts.deny_unknown(&[
        "db",
        "matrix",
        "normalize",
        "checkpoint",
        "chunk",
        "min-match",
        "sample",
        "delta",
        "counters",
        "max-gap",
        "max-len",
        "strategy",
        "seed",
        "threads",
        "kernel",
        "limit",
        "format",
        "metrics-out",
    ])?;
    let sink = metrics_sink(opts);
    let (alphabet, sequences) = load_db_or_stdin(opts)?;
    let m = alphabet.len();
    let matrix = match opts.get("matrix") {
        Some(path) => load_matrix(path, &alphabet)?.1,
        None => CompatibilityMatrix::identity(m),
    };
    let matrix = maybe_normalize(matrix, opts)?;
    let limit = opts.num("limit", 50usize)?;
    let chunk = opts.num("chunk", 1000usize)?.max(1);
    let format = opts.get_or("format", "table");
    if !["table", "csv", "json"].contains(&format) {
        return Err(format!("unknown --format {format:?}; use table, csv, or json").into());
    }

    let checkpoint_path = opts.get("checkpoint").map(Path::new);
    let mut engine = match checkpoint_path {
        Some(path) if path.exists() => {
            let engine = StreamState::restore(path, matrix.clone())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!(
                "restored checkpoint {} ({} sequences already ingested)",
                path.display(),
                engine.total_seen(),
            );
            engine
        }
        _ => {
            let config = MinerConfig {
                min_match: opts.num("min-match", 0.1f64)?,
                delta: opts.num("delta", 0.001f64)?,
                sample_size: opts.num("sample", 1000usize)?,
                counters_per_scan: opts.num("counters", 100_000usize)?,
                space: PatternSpace::new(
                    opts.num("max-gap", 0usize)?,
                    opts.num("max-len", 16usize)?,
                )
                .map_err(|e| e.to_string())?,
                probe_strategy: match opts.get_or("strategy", "border") {
                    "border" => ProbeStrategy::BorderCollapsing,
                    "levelwise" => ProbeStrategy::LevelWise,
                    other => return Err(format!("unknown strategy {other:?}").into()),
                },
                seed: opts.num("seed", 2002u64)?,
                threads: opts.num("threads", 0usize)?,
                match_kernel: parse_kernel(opts)?,
                ..MinerConfig::default()
            };
            StreamState::new(matrix.clone(), config).map_err(|e| e.to_string())?
        }
    };

    let already = engine.total_seen() as usize;
    if already > sequences.len() {
        return Err(format!(
            "checkpoint has ingested {already} sequences but the input holds only {} — \
             the database shrank; delete the checkpoint to start over",
            sequences.len(),
        )
        .into());
    }
    let fresh = sequences.len() - already;
    eprintln!(
        "ingesting {fresh} new sequences in chunks of {chunk} ({} total)",
        sequences.len(),
    );

    let mut ingested = already;
    let mut remines = 0usize;
    let mut last_outcome = None;
    for batch in sequences[already..].chunks(chunk) {
        engine.ingest_all(batch);
        ingested += batch.len();
        if engine.drift_exceeded() {
            let prefix = MemorySequences(sequences[..ingested].to_vec());
            let outcome = engine.mine(&prefix).map_err(|e| e.to_string())?;
            remines += 1;
            eprintln!(
                "re-mined at {ingested} sequences: {} frequent, {} db scans \
                 (drift exceeded the Chernoff bound)",
                outcome.frequent.len(),
                outcome.stats.db_scans,
            );
            last_outcome = Some(outcome);
        }
        // Periodic emission: refresh the snapshot after every chunk so a
        // long-running ingest can be watched from outside.
        write_metrics(sink.as_ref())?;
    }

    if let Some(path) = checkpoint_path {
        engine
            .checkpoint(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("checkpoint written to {}", path.display());
    }
    write_metrics(sink.as_ref())?;

    match last_outcome {
        Some(outcome) => {
            let mut sorted: Vec<(Pattern, f64)> = outcome
                .frequent
                .into_iter()
                .map(|f| (f.pattern, f.match_estimate))
                .collect();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            eprintln!(
                "{} frequent patterns after {remines} re-mine(s); top {}:",
                sorted.len(),
                limit.min(sorted.len()),
            );
            emit(&sorted, limit, &alphabet, format)
        }
        None => {
            eprintln!(
                "estimates stable after {fresh} new sequences — no re-mine needed \
                 (borders unchanged since the last run)"
            );
            Ok(())
        }
    }
}

/// Prints mined patterns in the chosen output format. `json` emits an
/// array of `{"pattern": ..., "match": ...}` objects (strings escaped per
/// RFC 8259); `csv` a two-column file; `table` an aligned listing.
fn emit(
    patterns: &[(Pattern, f64)],
    limit: usize,
    alphabet: &Alphabet,
    format: &str,
) -> CliResult<()> {
    use std::io::Write;
    let rows: Vec<(String, f64)> = patterns
        .iter()
        .take(limit)
        .map(|(p, v)| Ok((p.display(alphabet).map_err(|e| e.to_string())?, *v)))
        .collect::<CliResult<_>>()?;
    // Buffered and broken-pipe tolerant: `noisemine mine ... | head` must
    // exit cleanly when the reader closes early.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result: std::io::Result<()> = (|| {
        match format {
            "table" => {
                writeln!(out, "{:<30} {:>10}", "pattern", "match")?;
                for (p, v) in &rows {
                    writeln!(out, "{p:<30} {v:>10.4}")?;
                }
            }
            "csv" => {
                writeln!(out, "pattern,match")?;
                for (p, v) in &rows {
                    let field = if p.contains(',') || p.contains('"') {
                        format!("\"{}\"", p.replace('"', "\"\""))
                    } else {
                        p.clone()
                    };
                    writeln!(out, "{field},{v}")?;
                }
            }
            "json" => {
                writeln!(out, "[")?;
                for (i, (p, v)) in rows.iter().enumerate() {
                    let escaped: String = p
                        .chars()
                        .flat_map(|c| match c {
                            '"' => "\\\"".chars().collect::<Vec<_>>(),
                            '\\' => "\\\\".chars().collect(),
                            c if (c as u32) < 0x20 => {
                                format!("\\u{:04x}", c as u32).chars().collect()
                            }
                            c => vec![c],
                        })
                        .collect();
                    let comma = if i + 1 < rows.len() { "," } else { "" };
                    writeln!(
                        out,
                        "  {{\"pattern\": \"{escaped}\", \"match\": {v}}}{comma}"
                    )?;
                }
                writeln!(out, "]")?;
            }
            _ => unreachable!("format validated in cmd_mine"),
        }
        out.flush()
    })();
    match result {
        Ok(()) => Ok(()),
        // Reader went away (e.g. `| head`); not an error for a CLI.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("i/o error: {e}").into()),
    }
}

// -- helpers ---------------------------------------------------------------

/// Turns `--metrics-out <path>` into a live metrics sink. Enabling the
/// global registry is what arms the (otherwise dormant) instrumentation in
/// core/seqdb/stream, so this must run before any mining starts.
fn metrics_sink(opts: &Opts) -> Option<noisemine_obs::FileSink> {
    opts.get("metrics-out").map(|path| {
        noisemine_obs::enable();
        noisemine_obs::FileSink::new(path)
    })
}

/// Writes the current registry snapshot through the sink (no-op without
/// `--metrics-out`). Format follows the sink path's extension: `.prom` /
/// `.txt` get Prometheus text exposition, anything else JSON.
fn write_metrics(sink: Option<&noisemine_obs::FileSink>) -> CliResult<()> {
    let Some(sink) = sink else { return Ok(()) };
    sink.write(&noisemine_obs::global().snapshot())
        .map_err(|e| format!("{}: {e}", sink.path().display()).into())
}

/// Symmetric pairing partner (`i ^ 1`); the last symbol of an odd-sized
/// alphabet pairs with its predecessor instead of falling off the end.
fn i_xor_1_clamped(i: usize, m: usize) -> usize {
    let p = i ^ 1;
    if p >= m {
        i - 1
    } else {
        p
    }
}

fn parse_alphabet(spec: &str) -> CliResult<Alphabet> {
    if spec == "amino" {
        Ok(Alphabet::amino_acids())
    } else if let Some(n) = spec.strip_prefix('d') {
        let m: usize = n
            .parse()
            .map_err(|_| format!("alphabet {spec:?}: expected `amino` or `dN`"))?;
        if m < 2 {
            return Err("alphabet needs at least 2 symbols".into());
        }
        Ok(Alphabet::synthetic(m))
    } else {
        Err(format!("alphabet {spec:?}: expected `amino` or `dN` (e.g. d50)").into())
    }
}

fn infer(path: &str) -> CliResult<Alphabet> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    noisemine_seqdb::infer_alphabet(file).map_err(|e| e.to_string().into())
}

/// Like [`load_db`], but `--db -` reads the whole of stdin instead.
fn load_db_or_stdin(opts: &Opts) -> CliResult<(Alphabet, Vec<Vec<Symbol>>)> {
    let path = opts.required("db")?;
    if path != "-" {
        return load_db(opts);
    }
    let mut buf = String::new();
    use std::io::Read;
    std::io::stdin()
        .read_to_string(&mut buf)
        .map_err(|e| format!("stdin: {e}"))?;
    let alphabet = match opts.get("matrix") {
        Some(matrix_path) => load_matrix_alphabet(matrix_path)?,
        None => noisemine_seqdb::infer_alphabet(buf.as_bytes()).map_err(|e| e.to_string())?,
    };
    let sequences =
        noisemine_seqdb::read_sequences(buf.as_bytes(), &alphabet).map_err(|e| e.to_string())?;
    Ok((alphabet, sequences))
}

/// Loads `--db` (text) with the alphabet from `--matrix` when given, else
/// inferred from the data.
fn load_db(opts: &Opts) -> CliResult<(Alphabet, Vec<Vec<Symbol>>)> {
    let path = opts.required("db")?;
    if !Path::new(path).exists() {
        return Err(format!("database file {path} does not exist").into());
    }
    let alphabet = match opts.get("matrix") {
        Some(matrix_path) => load_matrix_alphabet(matrix_path)?,
        None => infer(path)?,
    };
    let sequences = text::read_sequences_file(path, &alphabet).map_err(|e| e.to_string())?;
    Ok((alphabet, sequences))
}

fn load_matrix_alphabet(path: &str) -> CliResult<Alphabet> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let (alphabet, _) = matrix_io::read_matrix(file).map_err(|e| e.to_string())?;
    Ok(alphabet)
}

fn load_matrix(path: &str, expected: &Alphabet) -> CliResult<(Alphabet, CompatibilityMatrix)> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let (alphabet, matrix) = matrix_io::read_matrix(file).map_err(|e| e.to_string())?;
    if alphabet.len() != expected.len() {
        return Err(format!(
            "matrix alphabet has {} symbols but the database alphabet has {}",
            alphabet.len(),
            expected.len()
        )
        .into());
    }
    Ok((alphabet, matrix))
}

fn maybe_normalize(matrix: CompatibilityMatrix, opts: &Opts) -> CliResult<CompatibilityMatrix> {
    if opts.flag("normalize") {
        matrix
            .diagonal_normalized_clamped()
            .map_err(|e| e.to_string().into())
    } else {
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_alphabet_variants() {
        assert_eq!(parse_alphabet("amino").unwrap().len(), 20);
        assert_eq!(parse_alphabet("d50").unwrap().len(), 50);
        assert!(parse_alphabet("d1").is_err()); // below 2 symbols
        assert!(parse_alphabet("protein").is_err());
        assert!(parse_alphabet("dxyz").is_err());
    }

    #[test]
    fn symmetric_pairing_clamps_at_odd_end() {
        assert_eq!(i_xor_1_clamped(0, 5), 1);
        assert_eq!(i_xor_1_clamped(1, 5), 0);
        assert_eq!(i_xor_1_clamped(3, 5), 2);
        // Last symbol of an odd alphabet pairs backwards.
        assert_eq!(i_xor_1_clamped(4, 5), 3);
    }

    #[test]
    fn parse_on_fault_variants() {
        let policy = |args: &[&str]| {
            let mut v = vec!["mine", "--db", "x.nmdb"];
            v.extend_from_slice(args);
            parse_on_fault(&Opts::parse(v).unwrap())
        };
        assert_eq!(policy(&[]).unwrap(), FaultPolicy::Strict);
        assert_eq!(
            policy(&["--on-fault", "strict"]).unwrap(),
            FaultPolicy::Strict
        );
        assert_eq!(
            policy(&["--on-fault", "quarantine"]).unwrap(),
            FaultPolicy::Quarantine
        );
        assert!(matches!(
            policy(&["--on-fault", "retry"]).unwrap(),
            FaultPolicy::Retry { attempts: 3, .. }
        ));
        assert!(matches!(
            policy(&["--on-fault", "retry:7"]).unwrap(),
            FaultPolicy::Retry { attempts: 7, .. }
        ));
        assert!(policy(&["--on-fault", "retry:x"]).is_err());
        assert!(policy(&["--on-fault", "panic"]).is_err());
    }

    #[test]
    fn parse_index_variants() {
        let mode = |args: &[&str]| {
            let mut v = vec!["mine", "--db", "x.nmdb"];
            v.extend_from_slice(args);
            parse_index(&Opts::parse(v).unwrap())
        };
        assert_eq!(mode(&[]).unwrap(), IndexMode::Off);
        assert_eq!(mode(&["--index", "off"]).unwrap(), IndexMode::Off);
        assert_eq!(mode(&["--index", "build"]).unwrap(), IndexMode::Build);
        assert_eq!(mode(&["--index", "use"]).unwrap(), IndexMode::Use);
        assert!(mode(&["--index", "sidecar"]).is_err());
    }

    #[test]
    fn maybe_normalize_respects_flag() {
        let matrix = CompatibilityMatrix::uniform_noise(4, 0.2).unwrap();
        let plain = Opts::parse(["mine", "--db", "x"]).unwrap();
        let kept = maybe_normalize(matrix.clone(), &plain).unwrap();
        assert!((kept.get(Symbol(0), Symbol(0)) - 0.8).abs() < 1e-12);
        let normalized = Opts::parse(["mine", "--db", "x", "--normalize"]).unwrap();
        let scaled = maybe_normalize(matrix, &normalized).unwrap();
        assert!((scaled.get(Symbol(0), Symbol(0)) - 1.0).abs() < 1e-12);
    }
}
