//! `noisemine` — mine long sequential patterns in noisy data.
//!
//! ```text
//! noisemine gen     --out db.txt [--matrix-out m.txt] [--sequences N] [--alphabet amino|dN]
//!                   [--motifs "AMTKY:0.4,QVC"] [--noise uniform:0.2|partner:0.3|blosum:0.2]
//! noisemine stats   --db db.txt [--matrix m.txt]
//! noisemine match   --db db.txt --pattern "A*TKY" [--matrix m.txt] [--normalize]
//! noisemine mine    --db db.txt|db.nmdb [--matrix m.txt] [--normalize] [--min-match 0.1]
//!                   [--algorithm three-phase|levelwise|depth-first|max-miner] [--top k]
//!                   [--max-gap 0] [--max-len 16] [--sample N] [--strategy border|levelwise]
//!                   [--threads 0] [--kernel trie|naive|simd] [--index off|build|use]
//!                   [--metrics-out m.json]
//!                   [--on-fault strict|retry[:N]|quarantine]   (.nmdb inputs)
//! noisemine stream  --db db.txt [--matrix m.txt] [--checkpoint state.ckpt]
//!                   [--chunk 1000] [--min-match 0.1] [--sample 1000] [--threads 0]
//!                   [--kernel trie|naive|simd] [--metrics-out m.json]
//! noisemine convert --db db.txt --out db.nmdb [--matrix m.txt] [--index build]
//! noisemine serve   [--model [tenant=]model.nmmodel[,t2=m2.nmmodel]] [--catalog dir]
//!                   [--catalog-interval 2] [--drift] [--drift-interval 1]
//!                   [--drift-min-seqs 256] [--remine-timeout 30] [--remine-backoff 1]
//!                   [--remine-backoff-max 60] [--breaker-threshold 5]
//!                   [--breaker-cooldown 30] [--addr 127.0.0.1:7700]
//!                   [--threads 4] [--kernel trie|naive|simd] [--tenant-quota 0]
//!                   [--max-requests-per-conn 0]
//!                   [--idle-timeout 10] [--metrics-out m.json]
//! ```

mod commands;
mod opts;

use opts::{CliResult, Opts};

const USAGE: &str = "\
noisemine — mine long sequential patterns in noisy data (Yang/Wang/Yu/Han, SIGMOD 2002)

USAGE:
  noisemine gen     --out db.txt [--matrix-out m.txt] [--sequences 1000]
                    [--min-len 40] [--max-len 60] [--alphabet amino|dN]
                    [--motifs \"AMTKY:0.4,QVCER\"] [--occurrence 0.4]
                    [--noise uniform:0.2|partner:0.3|blosum:0.2] [--seed 2002]
  noisemine stats   --db db.txt [--matrix m.txt]
  noisemine match   --db db.txt --pattern \"A*TKY\" [--matrix m.txt] [--normalize]
  noisemine mine    --db db.txt|db.nmdb [--matrix m.txt] [--normalize] [--min-match 0.1]
                    [--algorithm three-phase|levelwise|depth-first|max-miner]
                    [--max-gap 0] [--max-len 16] [--sample N] [--delta 0.001]
                    [--counters 100000] [--strategy border|levelwise]
                    [--seed 2002] [--threads 0] [--kernel trie|naive|simd]
                    [--index off|build|use] [--limit 50] [--top k]
                    [--metrics-out m.json]
                    [--on-fault strict|retry[:N]|quarantine]
                    [--model-out model.nmmodel] [--model-version 1]
  noisemine stream  --db db.txt|- [--matrix m.txt] [--normalize]
                    [--checkpoint state.ckpt] [--chunk 1000] [--min-match 0.1]
                    [--sample 1000] [--delta 0.001] [--counters 100000]
                    [--max-gap 0] [--max-len 16] [--strategy border|levelwise]
                    [--seed 2002] [--threads 0] [--kernel trie|naive|simd]
                    [--limit 50] [--metrics-out m.json]
  noisemine learn   --truth clean.txt --observed noisy.txt --out m.txt [--lambda 0.1]
  noisemine convert --db db.txt --out db.nmdb [--matrix m.txt] [--index build]
  noisemine serve   [--model [tenant=]model.nmmodel[,t2=m2.nmmodel]]
                    [--catalog dir] [--catalog-interval 2]
                    [--drift] [--drift-interval 1] [--drift-min-seqs 256]
                    [--remine-timeout 30] [--remine-backoff 1]
                    [--remine-backoff-max 60] [--breaker-threshold 5]
                    [--breaker-cooldown 30] [--drift-sample 512]
                    [--drift-max-len 8] [--drift-max-gap 0]
                    [--drift-max-buffer 100000]
                    [--addr 127.0.0.1:7700] [--threads 4] [--tenant-quota 0]
                    [--kernel trie|naive|simd]
                    [--max-requests-per-conn 0] [--idle-timeout 10]
                    [--metrics-out m.json]

Databases are plain text (one sequence per line, single letters or
whitespace-separated tokens; `#`, `>` and blank lines skipped). Matrices use
the #noisemine-matrix dense/sparse text format. --normalize mines with the
diagonal-normalized score matrix (match on the noise-free support scale).
`stream` ingests incrementally, re-mines only when symbol-match estimates
drift past the Chernoff bound, and persists engine state via --checkpoint so
a later run over a grown file resumes from the tail. --threads sets the scan
worker count for the three-phase miner (0 = auto); results are bit-identical
at any thread count. --kernel picks the candidate evaluation kernel (trie =
batched candidate-trie, the default; naive = per-pattern reference; simd =
columnar AVX2 kernel, 8 windows per step, with a portable scalar path on
hosts without AVX2+FMA or under NOISEMINE_FORCE_SCALAR=1) — all kernels
produce identical values (simd is held to the trie by a zero-ULP contract),
so this only affects speed. `serve --kernel` applies the same choice to
/classify scoring. --index enables the
positional symbol index: phase-3 probe scans then skip sequences that
provably match every probe at 0.0 (output stays bit-identical). For .nmdb
databases, build writes an NMIDX sidecar next to the file and use loads it
(rebuilding when stale); `convert --index build` writes the sidecar at
conversion time — see docs/INDEXING.md.
--metrics-out enables the observability layer and writes
a metrics snapshot to the given path (JSON, or Prometheus text when the path
ends in .prom/.txt); `stream` rewrites it after every chunk. Metrics never
change mining output — see docs/OBSERVABILITY.md. `mine` also accepts a
binary .nmdb database (three-phase only): scans then stream from disk under
the --on-fault policy — strict fails on the first damaged byte, retry[:N]
rides out transient I/O faults, quarantine skips corrupt records and mines
the surviving subset — see docs/ROBUSTNESS.md. `mine --model-out` also
writes the three-phase outcome as a versioned, checksummed NMMODEL serving
artifact; `serve` loads such artifacts into per-tenant slots and answers
classification requests over HTTP until POST /admin/shutdown — hot-swap
models with POST /admin/swap, scrape Prometheus metrics from /metrics, and
cap tenants at --tenant-quota requests/second (0 = unlimited). `serve
--catalog` watches a directory of <tenant>/<version>.nmmodel artifacts and
crash-safely adopts the newest valid version per tenant (torn/corrupt files
are ignored; the last-good model keeps serving); `serve --drift` feeds
classified traffic to per-tenant drift detectors and re-mines + self-swaps
models in-process under a supervised, circuit-broken re-mine loop. /healthz
is liveness only; /readyz reports per-tenant readiness with degradation
reasons — see docs/SERVING.md.";

fn run() -> CliResult<()> {
    let opts = Opts::parse(std::env::args().skip(1))?;
    match opts.command.as_str() {
        "gen" => commands::cmd_gen(&opts),
        "stats" => commands::cmd_stats(&opts),
        "match" => commands::cmd_match(&opts),
        "mine" => commands::cmd_mine(&opts),
        "stream" => commands::cmd_stream(&opts),
        "convert" => commands::cmd_convert(&opts),
        "serve" => commands::cmd_serve(&opts),
        "learn" => commands::cmd_learn(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}").into()),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}
