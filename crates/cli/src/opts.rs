//! Minimal subcommand + `--key value` option parsing for the `noisemine`
//! binary. Dependency-free on purpose (the workspace's allowed dependency
//! set has no CLI crate); errors are returned, not panicked, so `main` can
//! print usage.

use std::collections::HashMap;

/// Parsed invocation: a subcommand plus flat options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// The subcommand (`gen`, `mine`, `stats`, `match`, `convert`).
    pub command: String,
    values: HashMap<String, String>,
    flags: Vec<String>,
}

/// A user-facing CLI error (printed with usage, exit code 2).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

impl Opts {
    /// Parses a token stream: first token is the subcommand, the rest are
    /// `--key value`, `--key=value`, or bare `--flag`.
    pub fn parse<I, S>(tokens: I) -> CliResult<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = tokens.into_iter().map(Into::into).collect();
        let command = tokens
            .first()
            .filter(|t| !t.starts_with("--"))
            .cloned()
            .ok_or("missing subcommand")?;
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 1;
        while i < tokens.len() {
            let tok = &tokens[i];
            let stripped = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument {tok:?}"))?;
            if let Some((k, v)) = stripped.split_once('=') {
                values.insert(k.to_string(), v.to_string());
            } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                values.insert(stripped.to_string(), tokens[i + 1].clone());
                i += 1;
            } else {
                flags.push(stripped.to_string());
            }
            i += 1;
        }
        Ok(Self {
            command,
            values,
            flags,
        })
    }

    /// Rejects any option not in `known`.
    pub fn deny_unknown(&self, known: &[&str]) -> CliResult<()> {
        for key in self.values.keys().chain(self.flags.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "unrecognized option --{key} for `{}`; known options: {}",
                    self.command,
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
                .into());
            }
        }
        Ok(())
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> CliResult<&str> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("`{}` requires --{name}", self.command).into())
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional string option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// Typed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> CliResult<T> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} got unparsable value {v:?}").into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let o = Opts::parse(["mine", "--db", "x.txt", "--min-match=0.1", "--normalize"]).unwrap();
        assert_eq!(o.command, "mine");
        assert_eq!(o.required("db").unwrap(), "x.txt");
        assert_eq!(o.num::<f64>("min-match", 0.0).unwrap(), 0.1);
        assert!(o.flag("normalize"));
        assert!(o.deny_unknown(&["db", "min-match", "normalize"]).is_ok());
    }

    #[test]
    fn missing_subcommand() {
        assert!(Opts::parse(Vec::<String>::new()).is_err());
        assert!(Opts::parse(["--db", "x"]).is_err());
    }

    #[test]
    fn rejects_positional_after_command() {
        assert!(Opts::parse(["mine", "stray"]).is_err());
    }

    #[test]
    fn deny_unknown_rejects() {
        let o = Opts::parse(["gen", "--bogus", "1"]).unwrap();
        let err = o.deny_unknown(&["out"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn required_missing_names_option() {
        let o = Opts::parse(["match"]).unwrap();
        let err = o.required("pattern").unwrap_err();
        assert!(err.to_string().contains("--pattern"));
    }

    #[test]
    fn bad_number() {
        let o = Opts::parse(["gen", "--sequences", "lots"]).unwrap();
        assert!(o.num::<usize>("sequences", 5).is_err());
    }
}
