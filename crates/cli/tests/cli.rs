//! Integration tests driving the `noisemine` binary end to end through its
//! real command-line surface (via `CARGO_BIN_EXE_noisemine`).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn noisemine(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_noisemine"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("noisemine-cli-test-{}-{name}", std::process::id()))
}

/// Generates a small noisy database + matrix for the other tests.
fn generate(db: &Path, matrix: &Path) {
    let out = noisemine(&[
        "gen",
        "--out",
        db.to_str().unwrap(),
        "--matrix-out",
        matrix.to_str().unwrap(),
        "--sequences",
        "120",
        "--min-len",
        "20",
        "--max-len",
        "30",
        "--motifs",
        "AMTKY:0.5",
        "--noise",
        "partner:0.3",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn gen_stats_match_mine_round_trip() {
    let db = tmp("db.txt");
    let matrix = tmp("m.txt");
    generate(&db, &matrix);

    // stats reports the generated shape.
    let out = noisemine(&[
        "stats",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sequences:        120"), "{text}");
    assert!(text.contains("alphabet size:    20"), "{text}");
    assert!(text.contains("match"), "{text}");

    // match: the planted motif survives under --normalize.
    let out = noisemine(&[
        "match",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--pattern",
        "AMTKY",
        "--normalize",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("support:"), "{text}");
    assert!(text.contains("match:"), "{text}");

    // mine finds the motif with every algorithm.
    for algorithm in ["three-phase", "levelwise", "depth-first", "max-miner"] {
        let out = noisemine(&[
            "mine",
            "--db",
            db.to_str().unwrap(),
            "--matrix",
            matrix.to_str().unwrap(),
            "--normalize",
            "--min-match",
            "0.15",
            "--max-len",
            "6",
            "--algorithm",
            algorithm,
            "--limit",
            "2000",
        ]);
        assert!(out.status.success(), "{algorithm}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(
            text.contains("AMTKY"),
            "{algorithm} did not recover the motif:\n{text}"
        );
    }

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
}

#[test]
fn kernel_simd_mines_identically_to_trie() {
    let db = tmp("kernel_simd_db.txt");
    let matrix = tmp("kernel_simd_m.txt");
    generate(&db, &matrix);
    let mine_with = |kernel: &str| {
        let out = noisemine(&[
            "mine",
            "--db",
            db.to_str().unwrap(),
            "--matrix",
            matrix.to_str().unwrap(),
            "--normalize",
            "--min-match",
            "0.15",
            "--max-len",
            "6",
            "--limit",
            "2000",
            "--kernel",
            kernel,
        ]);
        assert!(out.status.success(), "--kernel {kernel}: {}", stderr(&out));
        stdout(&out)
    };
    let trie = mine_with("trie");
    let simd = mine_with("simd");
    assert!(trie.contains("AMTKY"), "{trie}");
    assert_eq!(simd, trie, "--kernel simd output diverged from trie");

    let out = noisemine(&["mine", "--db", db.to_str().unwrap(), "--kernel", "avx9000"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("use trie, naive, or simd"), "{err}");

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
}

#[test]
fn top_k_mode() {
    let db = tmp("topk-db.txt");
    let matrix = tmp("topk-m.txt");
    generate(&db, &matrix);
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--top",
        "5",
        "--max-len",
        "6",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let status = stderr(&out);
    assert!(status.contains("top-5 patterns"), "{status}");
    assert!(status.contains("implied threshold"), "{status}");
    assert!(stdout(&out).contains("pattern"), "{}", stdout(&out));
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
}

#[test]
fn convert_to_binary() {
    let db = tmp("conv-db.txt");
    let matrix = tmp("conv-m.txt");
    let bin = tmp("conv.nmdb");
    generate(&db, &matrix);
    let out = noisemine(&[
        "convert",
        "--db",
        db.to_str().unwrap(),
        "--out",
        bin.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(bin.exists());
    // The binary file carries the seqdb magic.
    let bytes = std::fs::read(&bin).unwrap();
    assert_eq!(&bytes[..8], b"NMSEQDB\0");
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&bin).ok();
}

#[test]
fn error_paths_exit_nonzero_with_usage() {
    // Unknown subcommand.
    let out = noisemine(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown subcommand"));
    assert!(stderr(&out).contains("USAGE"));

    // Missing required option.
    let out = noisemine(&["mine"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--db"));

    // Typo'd option names the command's known options.
    let out = noisemine(&["stats", "--bd", "x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unrecognized option --bd"));

    // Nonexistent database file.
    let out = noisemine(&["stats", "--db", "/definitely/not/here.txt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("does not exist"));

    // Bad noise spec.
    let db = tmp("noise-db.txt");
    let out = noisemine(&["gen", "--out", db.to_str().unwrap(), "--noise", "gamma:0.5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown noise kind"));

    // blosum noise requires the amino alphabet.
    let out = noisemine(&[
        "gen",
        "--out",
        db.to_str().unwrap(),
        "--alphabet",
        "d10",
        "--noise",
        "blosum:0.2",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("amino"));
    std::fs::remove_file(&db).ok();
}

#[test]
fn output_formats() {
    let db = tmp("fmt-db.txt");
    let matrix = tmp("fmt-m.txt");
    generate(&db, &matrix);
    // JSON is machine-parseable and status lines stay on stderr.
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--top",
        "3",
        "--max-len",
        "4",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('['), "{text}");
    assert!(text.contains("\"pattern\""), "{text}");
    assert!(!text.contains("top-3"), "status leaked into stdout: {text}");
    assert!(stderr(&out).contains("top-3"), "{}", stderr(&out));

    // CSV has a clean header as the first stdout line.
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--min-match",
        "0.5",
        "--max-len",
        "3",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).starts_with("pattern,match"),
        "{}",
        stdout(&out)
    );

    // Unknown format fails before mining.
    let out = noisemine(&["mine", "--db", db.to_str().unwrap(), "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown --format"));

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
}

#[test]
fn learn_round_trip() {
    let clean = tmp("learn-clean.txt");
    let noisy = tmp("learn-noisy.txt");
    let matrix = tmp("learn-m.txt");
    for (path, noise) in [(&clean, None), (&noisy, Some("partner:0.3"))] {
        let mut args = vec![
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--sequences",
            "150",
            "--min-len",
            "30",
            "--max-len",
            "30",
            "--seed",
            "3",
        ];
        if let Some(n) = noise {
            args.push("--noise");
            args.push(n);
        }
        let out = noisemine(&args);
        assert!(out.status.success(), "{}", stderr(&out));
    }
    let out = noisemine(&[
        "learn",
        "--truth",
        clean.to_str().unwrap(),
        "--observed",
        noisy.to_str().unwrap(),
        "--out",
        matrix.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("learned a 20x20"), "{}", stdout(&out));
    let contents = std::fs::read_to_string(&matrix).unwrap();
    assert!(contents.starts_with("#noisemine-matrix dense"));
    // The learned matrix is usable downstream.
    let out = noisemine(&[
        "stats",
        "--db",
        noisy.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    std::fs::remove_file(&clean).ok();
    std::fs::remove_file(&noisy).ok();
    std::fs::remove_file(&matrix).ok();
}

#[test]
fn metrics_out_is_observe_only_and_emits_documented_counters() {
    let db = tmp("obs-db.txt");
    let matrix = tmp("obs-m.txt");
    let metrics = tmp("obs-metrics.json");
    generate(&db, &matrix);

    let mine_args = |extra: &[&str]| {
        let mut args = vec![
            "mine",
            "--db",
            db.to_str().unwrap(),
            "--matrix",
            matrix.to_str().unwrap(),
            "--normalize",
            "--min-match",
            "0.15",
            "--max-len",
            "6",
            "--format",
            "json",
        ];
        args.extend_from_slice(extra);
        noisemine(&args)
    };

    let plain = mine_args(&[]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let with_metrics = mine_args(&["--metrics-out", metrics.to_str().unwrap()]);
    assert!(with_metrics.status.success(), "{}", stderr(&with_metrics));

    // The mined output is byte-identical with and without instrumentation.
    assert_eq!(
        stdout(&plain),
        stdout(&with_metrics),
        "--metrics-out changed the mined pattern set"
    );

    // The snapshot is written, self-describing, and the collapse-scan
    // counter (Algorithm 4.3's cost) is live on a planted workload.
    let snap = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(
        snap.contains("\"format\": \"noisemine-metrics/1\""),
        "{snap}"
    );
    for metric in [
        "core_collapse_db_scans",
        "core_candidates_frequent_total",
        "core_chernoff_epsilon_max",
        "core_phase1_seconds",
        "core_scan_sequences_total",
    ] {
        assert!(snap.contains(metric), "snapshot missing {metric}:\n{snap}");
    }
    let scans_field = snap
        .split("\"core_collapse_db_scans\"")
        .nth(1)
        .and_then(|rest| rest.split("\"value\": ").nth(1))
        .and_then(|rest| rest.split(['}', ','].as_ref()).next())
        .expect("collapse scan value present");
    let scans: u64 = scans_field.trim().parse().expect("integer scan count");
    assert!(scans >= 1, "expected >= 1 collapse scan, got {scans}");

    // A .prom path switches to Prometheus text exposition.
    let prom = tmp("obs-metrics.prom");
    let out = mine_args(&["--metrics-out", prom.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&prom).expect("prom file written");
    assert!(
        text.contains("# TYPE core_collapse_db_scans counter"),
        "{text}"
    );
    assert!(text.contains("core_phase1_seconds_bucket{le="), "{text}");

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_file(&prom).ok();
}

#[test]
fn stream_metrics_out_tracks_ingest() {
    let db = tmp("obs-stream-db.txt");
    let matrix = tmp("obs-stream-m.txt");
    let metrics = tmp("obs-stream-metrics.json");
    generate(&db, &matrix);

    let out = noisemine(&[
        "stream",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--min-match",
        "0.4",
        "--delta",
        "0.05",
        "--max-len",
        "6",
        "--chunk",
        "60",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let snap = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(
        snap.contains("\"stream_sequences_ingested_total\""),
        "{snap}"
    );
    // generate() plants 120 sequences; all of them must be counted.
    assert!(snap.contains("\"value\": 120"), "{snap}");
    assert!(snap.contains("\"stream_remines_total\""), "{snap}");

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&metrics).ok();
}

/// Generates a text database, converts it to `.nmdb`, and returns the
/// paths (text, matrix, binary).
fn generate_binary(stem: &str) -> (PathBuf, PathBuf, PathBuf) {
    let db = tmp(&format!("{stem}-db.txt"));
    let matrix = tmp(&format!("{stem}-m.txt"));
    let bin = tmp(&format!("{stem}.nmdb"));
    generate(&db, &matrix);
    let out = noisemine(&[
        "convert",
        "--db",
        db.to_str().unwrap(),
        "--out",
        bin.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    (db, matrix, bin)
}

#[test]
fn mine_binary_database_matches_text_mining() {
    let (db, matrix, bin) = generate_binary("binmine");
    let run = |input: &Path| {
        let out = noisemine(&[
            "mine",
            "--db",
            input.to_str().unwrap(),
            "--matrix",
            matrix.to_str().unwrap(),
            "--normalize",
            "--min-match",
            "0.15",
            "--max-len",
            "6",
            "--format",
            "json",
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    // Mining the binary file from disk gives byte-identical output to
    // mining the text original in memory.
    assert_eq!(run(&bin), run(&db));
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&bin).ok();
}

#[test]
fn corrupt_binary_database_fails_strict_and_survives_quarantine() {
    let (db, matrix, bin) = generate_binary("corrupt");

    // Flip one byte inside the first record's data.
    let mut bytes = std::fs::read(&bin).unwrap();
    bytes[20 + 16 + 3] ^= 0x40;
    std::fs::write(&bin, &bytes).unwrap();

    // Strict (the default): non-zero exit, human-readable diagnosis.
    let out = noisemine(&[
        "mine",
        "--db",
        bin.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--on-fault",
        "strict",
    ]);
    assert_eq!(out.status.code(), Some(2), "strict must fail on corruption");
    let err = stderr(&out);
    assert!(err.contains("corrupt"), "not a readable diagnosis: {err}");
    assert!(err.contains("record"), "no record pointer: {err}");

    // Quarantine: mines the surviving subset and says what it skipped.
    let out = noisemine(&[
        "mine",
        "--db",
        bin.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--min-match",
        "0.15",
        "--max-len",
        "6",
        "--on-fault",
        "quarantine",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let status = stderr(&out);
    assert!(status.contains("quarantined 1 corrupt record"), "{status}");
    assert!(status.contains("119 surviving"), "{status}");

    // An invalid policy is rejected up front.
    let out = noisemine(&["mine", "--db", bin.to_str().unwrap(), "--on-fault", "panic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown --on-fault"));

    // --on-fault is meaningless for text databases.
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--on-fault",
        "quarantine",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains(".nmdb"));

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&bin).ok();
}

#[test]
fn help_prints_usage() {
    let out = noisemine(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn synthetic_alphabet_and_uniform_noise() {
    let db = tmp("synth-db.txt");
    let matrix = tmp("synth-m.txt");
    let out = noisemine(&[
        "gen",
        "--out",
        db.to_str().unwrap(),
        "--matrix-out",
        matrix.to_str().unwrap(),
        "--sequences",
        "50",
        "--min-len",
        "10",
        "--max-len",
        "15",
        "--alphabet",
        "d8",
        "--motifs",
        "d0 d1 d2:0.6",
        "--noise",
        "uniform:0.2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--min-match",
        "0.2",
        "--max-len",
        "4",
        "--algorithm",
        "levelwise",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("d0 d1 d2"), "{}", stdout(&out));
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
}

/// One raw HTTP/1.1 exchange over a real socket (`Connection: close`).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to server");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn mine_model_out_then_serve_smoke() {
    let db = tmp("serve-db.txt");
    let matrix = tmp("serve-m.txt");
    let model = tmp("serve.nmmodel");
    generate(&db, &matrix);

    // Mine and write the serving artifact.
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--matrix",
        matrix.to_str().unwrap(),
        "--normalize",
        "--min-match",
        "0.15",
        "--max-len",
        "6",
        "--model-out",
        model.to_str().unwrap(),
        "--model-version",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("wrote model v7"), "{}", stderr(&out));

    // --model-out is three-phase-only.
    let out = noisemine(&[
        "mine",
        "--db",
        db.to_str().unwrap(),
        "--algorithm",
        "levelwise",
        "--model-out",
        model.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("three-phase"), "{}", stderr(&out));

    // Serve the artifact on an ephemeral port and talk to it for real.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_noisemine"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut announce = String::new();
    {
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
        reader.read_line(&mut announce).unwrap();
    }
    let addr = announce
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .to_string();

    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    let (status, body) = http(
        &addr,
        "POST",
        "/v1/classify",
        r#"{"tenant": "default", "sequences": [["A", "M", "T", "K", "Y"]]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"model_version\": 7"), "{body}");
    assert!(body.contains("\"num_sequences\": 1"), "{body}");
    assert!(body.contains("\"db_match\""), "{body}");

    let (status, body) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("serve_requests_total"), "{body}");
    assert!(
        body.contains("serve_tenant_default_requests_total"),
        "{body}"
    );

    let (status, _) = http(&addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    let out = child.wait_with_output().expect("clean exit");
    assert!(out.status.success(), "serve exited {:?}", out.status);

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&matrix).ok();
    std::fs::remove_file(&model).ok();
}
