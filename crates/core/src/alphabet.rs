//! Symbols and alphabets.
//!
//! The paper works over a finite set of distinct symbols
//! `Θ = {d₁, d₂, …, d_m}` (Section 3). We intern symbol names into compact
//! [`Symbol`] ids (a `u16`), which keeps disk-resident sequences at two bytes
//! per position and supports the paper's scalability sweep up to `m = 10⁴`
//! distinct symbols (Figure 15).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// An interned symbol: an index into an [`Alphabet`].
///
/// `Symbol` is deliberately a thin `u16` newtype — sequences in this library
/// can contain thousands of symbols and databases hundreds of thousands of
/// sequences, so per-symbol size matters both in memory and in the on-disk
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u16);

impl Symbol {
    /// The symbol's index into its alphabet, as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A bidirectional mapping between symbol names and [`Symbol`] ids.
///
/// An alphabet is immutable once built; all sequences, patterns, and
/// compatibility matrices that refer to it share the same id space.
/// Serialization stores only the name list; the lookup index is rebuilt on
/// deserialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "AlphabetRepr", into = "AlphabetRepr")]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

/// Serialized form of [`Alphabet`]: just the names, in id order.
#[derive(Serialize, Deserialize)]
struct AlphabetRepr {
    names: Vec<String>,
}

impl From<Alphabet> for AlphabetRepr {
    fn from(a: Alphabet) -> Self {
        Self { names: a.names }
    }
}

impl TryFrom<AlphabetRepr> for Alphabet {
    type Error = Error;
    fn try_from(repr: AlphabetRepr) -> Result<Self> {
        Alphabet::new(repr.names)
    }
}

impl Alphabet {
    /// Builds an alphabet from a list of distinct symbol names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a name is duplicated or if more
    /// than `u16::MAX + 1` names are supplied.
    pub fn new<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() > (u16::MAX as usize) + 1 {
            return Err(Error::InvalidConfig(format!(
                "alphabet of {} symbols exceeds the maximum of {}",
                names.len(),
                (u16::MAX as usize) + 1
            )));
        }
        let mut index = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            if index.insert(name.clone(), Symbol(i as u16)).is_some() {
                return Err(Error::InvalidConfig(format!(
                    "duplicate symbol name {name:?} in alphabet"
                )));
            }
        }
        Ok(Self { names, index })
    }

    /// Builds a synthetic alphabet `d0, d1, …, d(m-1)`, matching the paper's
    /// notation for abstract symbol sets.
    pub fn synthetic(m: usize) -> Self {
        Self::new((0..m).map(|i| format!("d{i}"))).expect("synthetic names are distinct")
    }

    /// The 20 canonical amino acids in single-letter code, used by the
    /// paper's protein-database experiments (Section 5.1).
    pub fn amino_acids() -> Self {
        Self::new(AMINO_ACIDS.iter().map(|c| c.to_string()))
            .expect("amino acid letters are distinct")
    }

    /// Number of distinct symbols `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the alphabet has no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a symbol id by name.
    pub fn symbol(&self, name: &str) -> Result<Symbol> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownSymbol(name.to_string()))
    }

    /// Returns the name of a symbol.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SymbolOutOfRange`] if the id does not belong to this
    /// alphabet.
    pub fn name(&self, symbol: Symbol) -> Result<&str> {
        self.names
            .get(symbol.index())
            .map(String::as_str)
            .ok_or(Error::SymbolOutOfRange {
                symbol: symbol.0,
                alphabet_size: self.names.len(),
            })
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }

    /// Iterates over `(symbol, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u16), n.as_str()))
    }

    /// Encodes a whitespace- or contiguously-written sequence of single-name
    /// symbols into ids. Names are matched greedily against single characters
    /// when `text` contains no whitespace (convenient for amino-acid strings
    /// such as `"AMTKYQV"`), or split on whitespace otherwise.
    pub fn encode(&self, text: &str) -> Result<Vec<Symbol>> {
        if text.contains(char::is_whitespace) {
            text.split_whitespace().map(|t| self.symbol(t)).collect()
        } else if let Ok(sym) = self.symbol(text) {
            // A single multi-character name like "d12".
            Ok(vec![sym])
        } else {
            text.chars().map(|c| self.symbol(&c.to_string())).collect()
        }
    }

    /// Decodes a sequence of ids back to a string, joining multi-character
    /// names with spaces and single-character names without separators.
    pub fn decode(&self, symbols: &[Symbol]) -> Result<String> {
        let names: Vec<&str> = symbols
            .iter()
            .map(|&s| self.name(s))
            .collect::<Result<_>>()?;
        let single_char = names.iter().all(|n| n.chars().count() == 1);
        Ok(if single_char {
            names.concat()
        } else {
            names.join(" ")
        })
    }
}

/// Single-letter codes of the 20 canonical amino acids.
pub const AMINO_ACIDS: [char; 20] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'V',
    'Y',
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_resolves_symbols() {
        let a = Alphabet::new(["x", "y", "z"]).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.symbol("y").unwrap(), Symbol(1));
        assert_eq!(a.name(Symbol(2)).unwrap(), "z");
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Alphabet::new(["x", "x"]).is_err());
    }

    #[test]
    fn unknown_symbol_errors() {
        let a = Alphabet::new(["x"]).unwrap();
        assert!(matches!(a.symbol("q"), Err(Error::UnknownSymbol(_))));
        assert!(matches!(
            a.name(Symbol(9)),
            Err(Error::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn synthetic_alphabet_matches_paper_notation() {
        let a = Alphabet::synthetic(5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.name(Symbol(0)).unwrap(), "d0");
        assert_eq!(a.symbol("d4").unwrap(), Symbol(4));
    }

    #[test]
    fn amino_acid_alphabet_has_twenty_letters() {
        let a = Alphabet::amino_acids();
        assert_eq!(a.len(), 20);
        assert!(a.symbol("W").is_ok());
    }

    #[test]
    fn encode_decode_contiguous() {
        let a = Alphabet::amino_acids();
        let ids = a.encode("AMTKY").unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(a.decode(&ids).unwrap(), "AMTKY");
    }

    #[test]
    fn encode_decode_whitespace() {
        let a = Alphabet::synthetic(3);
        let ids = a.encode("d0 d2 d1").unwrap();
        assert_eq!(ids, vec![Symbol(0), Symbol(2), Symbol(1)]);
        assert_eq!(a.decode(&ids).unwrap(), "d0 d2 d1");
    }

    #[test]
    fn symbols_iterator_covers_alphabet() {
        let a = Alphabet::synthetic(4);
        let all: Vec<Symbol> = a.symbols().collect();
        assert_eq!(all, vec![Symbol(0), Symbol(1), Symbol(2), Symbol(3)]);
    }
}
