//! Phase 3: border collapsing (§4.3, Algorithms 4.3 / 4.4).
//!
//! The ambiguous patterns left by phase 2 occupy a contiguous region of the
//! lattice between the FQT and INFQT borders. Verifying them level by level
//! costs one scan per level; border collapsing instead probes the patterns
//! with the highest *collapsing power* — the halfway layer between the two
//! borders, then the quarter-way layers, and so on — so that each exact
//! verification resolves, via the Apriori property, as many other ambiguous
//! patterns as possible without ever counting them. With a memory budget of
//! `x` layers per scan the ambiguous space shrinks to `1/x` per scan, giving
//! `O(log_x y)` scans where a level-wise search needs `y`.
//!
//! # Observability
//!
//! Each full-database probe scan increments `core_collapse_db_scans` (the
//! quantity the `O(log_x y)` bound of Algorithm 4.3 controls), with
//! `core_collapse_probes_total` patterns counted exactly across
//! `core_collapse_layers_probed_total` distinct lattice layers;
//! `core_collapse_propagated_total` patterns resolve by Apriori propagation
//! alone and `core_collapse_known_applied_total` reuse pre-verified matches
//! without any scan. See `docs/OBSERVABILITY.md`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::ScanError;
use crate::index::{SkipPlan, SymbolIndex};
use crate::lattice::AmbiguousSpace;
use crate::match_kernel::MatchKernel;
use crate::matching::{try_db_match_many_kernel_indexed, SequenceScan};
use crate::matrix::CompatibilityMatrix;
use crate::pattern::Pattern;

/// How a pattern's frequency was established during phase 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// Its exact match was counted against the full database.
    Probed,
    /// It was resolved by Apriori propagation from a probed pattern.
    Propagated,
}

/// One resolved ambiguous pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolvedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Exact database match — known only for probed patterns.
    pub match_value: Option<f64>,
    /// How it was resolved.
    pub resolution: Resolution,
}

/// The outcome of phase 3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollapseResult {
    /// Ambiguous patterns that turned out to be frequent.
    pub frequent: Vec<ResolvedPattern>,
    /// Ambiguous patterns that turned out to be infrequent.
    pub infrequent: Vec<ResolvedPattern>,
    /// Number of full database scans performed.
    pub scans: usize,
    /// Number of patterns whose exact match was counted.
    pub probes: usize,
    /// Number of patterns resolved purely by Apriori propagation.
    pub propagated: usize,
    /// Patterns counted in each scan, in scan order — the per-scan probe
    /// sizes behind the paper's Figure 14(c) discussion (how far the final
    /// border sits from the estimate shows up as how much counting each
    /// verification scan needs).
    pub probes_per_scan: Vec<usize>,
    /// Pre-verified patterns applied without scanning (see
    /// [`collapse_with_known`]).
    pub known_applied: usize,
}

/// The order in which ambiguous patterns are probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProbeStrategy {
    /// Border collapsing: halfway layer first, then quarter-way layers, …
    /// (Algorithm 4.3) — the paper's contribution.
    #[default]
    BorderCollapsing,
    /// Level-wise from the bottom (the Toivonen-style finalization the
    /// paper compares against, §5.6).
    LevelWise,
}

/// Resolves every ambiguous pattern against the full database.
///
/// `counters_per_scan` models the memory available for match counters: each
/// database scan evaluates at most that many patterns ("until the memory is
/// filled up", Algorithm 4.3).
pub fn collapse<S: SequenceScan + ?Sized>(
    space: AmbiguousSpace,
    db: &S,
    matrix: &CompatibilityMatrix,
    min_match: f64,
    counters_per_scan: usize,
    strategy: ProbeStrategy,
) -> CollapseResult {
    collapse_with_known(
        space,
        &[],
        db,
        matrix,
        min_match,
        counters_per_scan,
        strategy,
        0,
    )
}

/// [`collapse`] with a set of *pre-verified* exact matches.
///
/// `known` holds `(pattern, exact database match)` pairs the caller already
/// maintains — an incremental engine keeps online counters for the patterns
/// it has probed before. Those verdicts are applied first, collapsing their
/// region of the ambiguous space via Apriori propagation without a single
/// database scan; only what remains is probed. Known patterns outside the
/// ambiguous space are ignored. `threads` is the worker-thread count for
/// each verification scan (`0` = all available cores); it never changes the
/// verdicts (see [`db_match_many_threads`](crate::matching::db_match_many_threads)).
#[allow(clippy::too_many_arguments)]
pub fn collapse_with_known<S: SequenceScan + ?Sized>(
    space: AmbiguousSpace,
    known: &[(Pattern, f64)],
    db: &S,
    matrix: &CompatibilityMatrix,
    min_match: f64,
    counters_per_scan: usize,
    strategy: ProbeStrategy,
    threads: usize,
) -> CollapseResult {
    match try_collapse_with_known(
        space,
        known,
        db,
        matrix,
        min_match,
        counters_per_scan,
        strategy,
        threads,
    ) {
        Ok(result) => result,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`collapse_with_known`]: a failed verification scan
/// surfaces as `Err` instead of panicking. No partial phase-3 result
/// escapes — verdicts applied before the failing scan are discarded with
/// the rest, so a caller that retries starts from a clean collapse.
#[allow(clippy::too_many_arguments)]
pub fn try_collapse_with_known<S: SequenceScan + ?Sized>(
    space: AmbiguousSpace,
    known: &[(Pattern, f64)],
    db: &S,
    matrix: &CompatibilityMatrix,
    min_match: f64,
    counters_per_scan: usize,
    strategy: ProbeStrategy,
    threads: usize,
) -> Result<CollapseResult, ScanError> {
    try_collapse_with_known_kernel(
        space,
        known,
        db,
        matrix,
        min_match,
        counters_per_scan,
        strategy,
        threads,
        MatchKernel::default(),
    )
}

/// [`try_collapse_with_known`] with an explicit [`MatchKernel`] for the
/// layer-probe scans. Like `threads`, the kernel is purely operational: all
/// kernels produce identical probe values (see [`crate::match_kernel`] and
/// the zero [`SIMD_MAX_ULP`](crate::match_kernel::simd::SIMD_MAX_ULP)
/// contract of the columnar kernel), so the verdicts never depend on it.
#[allow(clippy::too_many_arguments)]
pub fn try_collapse_with_known_kernel<S: SequenceScan + ?Sized>(
    space: AmbiguousSpace,
    known: &[(Pattern, f64)],
    db: &S,
    matrix: &CompatibilityMatrix,
    min_match: f64,
    counters_per_scan: usize,
    strategy: ProbeStrategy,
    threads: usize,
    kernel: MatchKernel,
) -> Result<CollapseResult, ScanError> {
    try_collapse_with_known_kernel_indexed(
        space,
        known,
        db,
        matrix,
        min_match,
        counters_per_scan,
        strategy,
        threads,
        kernel,
        None,
    )
}

/// [`try_collapse_with_known_kernel`] with an optional positional
/// [`SymbolIndex`] over `db` (see [`crate::index`]).
///
/// Each probe scan builds a [`SkipPlan`] for its batch, so the
/// verification scan evaluates only sequences that can match at least one
/// probe; everything else is skipped while still counting toward the
/// Definition 3.7 denominator. Like `threads` and `kernel`, the index is
/// purely operational — the verdicts are bit-identical with and without it.
#[allow(clippy::too_many_arguments)]
pub fn try_collapse_with_known_kernel_indexed<S: SequenceScan + ?Sized>(
    mut space: AmbiguousSpace,
    known: &[(Pattern, f64)],
    db: &S,
    matrix: &CompatibilityMatrix,
    min_match: f64,
    counters_per_scan: usize,
    strategy: ProbeStrategy,
    threads: usize,
    kernel: MatchKernel,
    symbol_index: Option<&SymbolIndex>,
) -> Result<CollapseResult, ScanError> {
    assert!(counters_per_scan >= 1, "need room for at least one counter");
    let mut result = CollapseResult::default();
    let mut index = ResultIndex::default();

    let (known_patterns, known_values): (Vec<Pattern>, Vec<f64>) = known
        .iter()
        .filter(|(p, _)| space.contains(p))
        .cloned()
        .unzip();
    result.known_applied = known_patterns.len();
    apply_exact_values(
        &mut space,
        &mut result,
        &mut index,
        &known_patterns,
        &known_values,
        min_match,
    );

    while !space.is_empty() {
        let probes = select_probes(&space, counters_per_scan, strategy);
        debug_assert!(!probes.is_empty());
        if noisemine_obs::enabled() {
            let layers: std::collections::HashSet<usize> =
                probes.iter().map(|p| p.non_eternal_count()).collect();
            crate::obs::collapse_layers_probed().add(layers.len() as u64);
        }
        let plan = symbol_index.map(|ix| {
            crate::obs::index_plans_built().inc();
            SkipPlan::build(ix, &probes, matrix)
        });
        let values =
            try_db_match_many_kernel_indexed(&probes, db, matrix, threads, kernel, plan.as_ref())?;
        result.scans += 1;
        result.probes += probes.len();
        result.probes_per_scan.push(probes.len());
        crate::obs::collapse_db_scans().inc();
        crate::obs::collapse_probes().add(probes.len() as u64);
        apply_exact_values(
            &mut space,
            &mut result,
            &mut index,
            &probes,
            &values,
            min_match,
        );
    }

    result.propagated = result
        .frequent
        .iter()
        .chain(&result.infrequent)
        .filter(|r| r.resolution == Resolution::Propagated)
        .count();
    crate::obs::collapse_propagated().add(result.propagated as u64);
    crate::obs::collapse_known_applied().add(result.known_applied as u64);
    Ok(result)
}

/// Applies a batch of exact match values to the ambiguous space, bottom-up
/// (ascending concrete-symbol count); the exact values make the final
/// verdicts order-independent, and evaluated patterns always get their exact
/// value recorded even when a sibling in the same batch already propagated
/// over them.
fn apply_exact_values(
    space: &mut AmbiguousSpace,
    result: &mut CollapseResult,
    index: &mut ResultIndex,
    patterns: &[Pattern],
    values: &[f64],
    min_match: f64,
) {
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by_key(|&i| patterns[i].non_eternal_count());
    for &i in &order {
        let pattern = &patterns[i];
        let value = values[i];
        if !space.contains(pattern) {
            attach_exact_value(result, index, pattern, value, min_match);
            continue;
        }
        if value >= min_match {
            for p in space.resolve_frequent(pattern) {
                push(result, index, p, true);
            }
            replace_probe_record(result, index, pattern, value, true);
        } else {
            for p in space.resolve_infrequent(pattern) {
                push(result, index, p, false);
            }
            replace_probe_record(result, index, pattern, value, false);
        }
    }
}

/// Positions of every recorded pattern within [`CollapseResult`]'s frequent
/// and infrequent lists. A collapse run can resolve tens of thousands of
/// patterns; upgrading a probe record by linear search made phase 3
/// O(probes²) overall, so the maps keep it O(1) per record.
#[derive(Default)]
struct ResultIndex {
    frequent: HashMap<Pattern, usize>,
    infrequent: HashMap<Pattern, usize>,
}

impl ResultIndex {
    fn list_of<'a>(
        &'a mut self,
        result: &'a mut CollapseResult,
        frequent: bool,
    ) -> (
        &'a mut Vec<ResolvedPattern>,
        &'a mut HashMap<Pattern, usize>,
    ) {
        if frequent {
            (&mut result.frequent, &mut self.frequent)
        } else {
            (&mut result.infrequent, &mut self.infrequent)
        }
    }
}

/// Records a resolved pattern; the probe pattern itself is upgraded to
/// `Probed` by [`replace_probe_record`].
fn push(result: &mut CollapseResult, index: &mut ResultIndex, pattern: Pattern, frequent: bool) {
    let (list, map) = index.list_of(result, frequent);
    map.insert(pattern.clone(), list.len());
    list.push(ResolvedPattern {
        pattern,
        match_value: None,
        resolution: Resolution::Propagated,
    });
}

/// Upgrades the record of the probed pattern itself with its exact value.
fn replace_probe_record(
    result: &mut CollapseResult,
    index: &mut ResultIndex,
    pattern: &Pattern,
    value: f64,
    frequent: bool,
) {
    let (list, map) = index.list_of(result, frequent);
    if let Some(&at) = map.get(pattern) {
        let rec = &mut list[at];
        rec.match_value = Some(value);
        rec.resolution = Resolution::Probed;
    } else {
        map.insert(pattern.clone(), list.len());
        list.push(ResolvedPattern {
            pattern: pattern.clone(),
            match_value: Some(value),
            resolution: Resolution::Probed,
        });
    }
}

/// A probed pattern that was propagated earlier in the same batch still has
/// an exact value available — attach it.
fn attach_exact_value(
    result: &mut CollapseResult,
    index: &mut ResultIndex,
    pattern: &Pattern,
    value: f64,
    min_match: f64,
) {
    let frequent = value >= min_match;
    replace_probe_record(result, index, pattern, value, frequent);
}

/// Selects up to `budget` patterns to probe in the next scan.
fn select_probes(space: &AmbiguousSpace, budget: usize, strategy: ProbeStrategy) -> Vec<Pattern> {
    let (lo, hi) = space
        .level_range()
        .expect("select_probes requires a non-empty space");
    let levels = match strategy {
        ProbeStrategy::BorderCollapsing => levels_in_collapse_order(lo, hi),
        ProbeStrategy::LevelWise => (lo..=hi).collect(),
    };
    let mut probes = Vec::with_capacity(budget);
    for level in levels {
        if probes.len() >= budget {
            break;
        }
        for p in space.at_level(level) {
            if probes.len() >= budget {
                break;
            }
            probes.push(p);
        }
        // A level-wise search verifies one level per scan: never mix levels
        // within a scan (this is what makes it need many scans).
        if strategy == ProbeStrategy::LevelWise && !probes.is_empty() {
            break;
        }
    }
    probes
}

/// The probe order of Algorithm 4.3 expressed on levels: the halfway level
/// of `[lo, hi]` first, then the halfway levels of the two halves
/// (quarter-way layers), then the ⅛ layers, … — a breadth-first traversal
/// of the binary interval subdivision.
pub fn levels_in_collapse_order(lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(hi - lo + 1);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((lo, hi));
    while let Some((a, b)) = queue.pop_front() {
        if a > b {
            continue;
        }
        let mid = (a + b).div_ceil(2);
        out.push(mid);
        if a <= b {
            if mid > a {
                queue.push_back((a, mid - 1));
            }
            if mid < b {
                queue.push_back((mid + 1, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matching::{db_match, MemorySequences};
    use crate::matrix::CompatibilityMatrix;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(5)).unwrap()
    }

    fn db() -> MemorySequences {
        let a = Alphabet::synthetic(5);
        MemorySequences(vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
        ])
    }

    #[test]
    fn collapse_order_is_halfway_first() {
        // Levels 1..=5: halfway 3, then halves [1,2] -> 2 and [4,5] -> 5,
        // then 1 and 4.
        assert_eq!(levels_in_collapse_order(1, 5), vec![3, 2, 5, 1, 4]);
        assert_eq!(levels_in_collapse_order(2, 2), vec![2]);
        assert_eq!(levels_in_collapse_order(1, 2), vec![2, 1]);
    }

    #[test]
    fn chain_collapses_in_one_scan_with_enough_memory() {
        // Figure 6(a)'s chain: with a big enough budget every layer fits in
        // one scan.
        let chain = vec![pat("d1"), pat("d1 d2"), pat("d1 d2 d0")];
        let space = AmbiguousSpace::new(chain);
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let r = collapse(
            space,
            &database,
            &matrix,
            0.15,
            100,
            ProbeStrategy::BorderCollapsing,
        );
        assert_eq!(r.scans, 1);
        assert_eq!(r.frequent.len() + r.infrequent.len(), 3);
    }

    #[test]
    fn collapse_matches_exact_verification() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let min_match = 0.15;
        let patterns = vec![
            pat("d0"),
            pat("d1"),
            pat("d3"),
            pat("d1 d0"),
            pat("d3 d1"),
            pat("d3 d1 d0"),
            pat("d0 d1"),
            pat("d0 d1 d2"),
        ];
        let r = collapse(
            AmbiguousSpace::new(patterns.clone()),
            &database,
            &matrix,
            min_match,
            2, // tiny budget forces multiple scans
            ProbeStrategy::BorderCollapsing,
        );
        assert!(r.scans >= 2);
        // Every pattern must be resolved exactly as the oracle says.
        for p in &patterns {
            let exact = db_match(p, &database, &matrix);
            let in_frequent = r.frequent.iter().any(|x| x.pattern == *p);
            let in_infrequent = r.infrequent.iter().any(|x| x.pattern == *p);
            assert!(in_frequent ^ in_infrequent, "{p} resolved twice or never");
            assert_eq!(
                in_frequent,
                exact >= min_match,
                "{p}: exact match {exact}, threshold {min_match}"
            );
        }
    }

    #[test]
    fn levelwise_uses_at_least_one_scan_per_level() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d1"), pat("d1 d0"), pat("d2 d1 d0")];
        let r = collapse(
            AmbiguousSpace::new(patterns),
            &database,
            &matrix,
            0.15,
            100,
            ProbeStrategy::LevelWise,
        );
        // Three levels present; level-wise probes one level per scan, but
        // Apriori propagation may resolve later levels early.
        assert!(r.scans >= 1 && r.scans <= 3);
    }

    #[test]
    fn collapsing_never_uses_more_scans_than_levelwise() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns: Vec<Pattern> = vec![
            pat("d1"),
            pat("d1 d0"),
            pat("d1 d1"),
            pat("d2 d1 d0"),
            pat("d3 d1 d0"),
            pat("d0 d1 d2 d0"),
        ];
        let budget = 3;
        let bc = collapse(
            AmbiguousSpace::new(patterns.clone()),
            &database,
            &matrix,
            0.1,
            budget,
            ProbeStrategy::BorderCollapsing,
        );
        let lw = collapse(
            AmbiguousSpace::new(patterns),
            &database,
            &matrix,
            0.1,
            budget,
            ProbeStrategy::LevelWise,
        );
        assert!(
            bc.scans <= lw.scans,
            "border collapsing {} scans > level-wise {}",
            bc.scans,
            lw.scans
        );
        // Both strategies agree on the verdicts.
        let freq_bc: std::collections::HashSet<_> =
            bc.frequent.iter().map(|r| r.pattern.clone()).collect();
        let freq_lw: std::collections::HashSet<_> =
            lw.frequent.iter().map(|r| r.pattern.clone()).collect();
        assert_eq!(freq_bc, freq_lw);
    }

    #[test]
    fn fully_known_space_collapses_without_scans() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let min_match = 0.15;
        let patterns = vec![pat("d0"), pat("d1"), pat("d1 d0"), pat("d3 d1 d0")];
        let known: Vec<(Pattern, f64)> = patterns
            .iter()
            .map(|p| (p.clone(), db_match(p, &database, &matrix)))
            .collect();
        let r = collapse_with_known(
            AmbiguousSpace::new(patterns.clone()),
            &known,
            &database,
            &matrix,
            min_match,
            10,
            ProbeStrategy::BorderCollapsing,
            0,
        );
        assert_eq!(r.scans, 0, "known values must resolve without scanning");
        assert_eq!(r.frequent.len() + r.infrequent.len(), patterns.len());
        for p in &patterns {
            let exact = db_match(p, &database, &matrix);
            let in_frequent = r.frequent.iter().any(|x| x.pattern == *p);
            assert_eq!(in_frequent, exact >= min_match, "{p}");
        }
    }

    #[test]
    fn partially_known_space_agrees_with_plain_collapse() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let min_match = 0.15;
        let patterns = vec![
            pat("d0"),
            pat("d1"),
            pat("d3"),
            pat("d1 d0"),
            pat("d3 d1"),
            pat("d3 d1 d0"),
            pat("d0 d1"),
            pat("d0 d1 d2"),
        ];
        // Exact values for a couple of mid-lattice patterns only.
        let known: Vec<(Pattern, f64)> = [pat("d3 d1"), pat("d0 d1")]
            .iter()
            .map(|p| (p.clone(), db_match(p, &database, &matrix)))
            .collect();
        let with_known = collapse_with_known(
            AmbiguousSpace::new(patterns.clone()),
            &known,
            &database,
            &matrix,
            min_match,
            2,
            ProbeStrategy::BorderCollapsing,
            0,
        );
        let plain = collapse(
            AmbiguousSpace::new(patterns.clone()),
            &database,
            &matrix,
            min_match,
            2,
            ProbeStrategy::BorderCollapsing,
        );
        assert_eq!(with_known.known_applied, 2);
        assert!(with_known.scans <= plain.scans);
        let freq_known: std::collections::HashSet<_> = with_known
            .frequent
            .iter()
            .map(|r| r.pattern.clone())
            .collect();
        let freq_plain: std::collections::HashSet<_> =
            plain.frequent.iter().map(|r| r.pattern.clone()).collect();
        assert_eq!(freq_known, freq_plain);
        // Everything resolved exactly once.
        for p in &patterns {
            let in_frequent = with_known.frequent.iter().any(|x| x.pattern == *p);
            let in_infrequent = with_known.infrequent.iter().any(|x| x.pattern == *p);
            assert!(in_frequent ^ in_infrequent, "{p} resolved twice or never");
        }
    }

    #[test]
    fn known_patterns_outside_space_are_ignored() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let known = vec![(pat("d4 d4"), 0.9)];
        let r = collapse_with_known(
            AmbiguousSpace::new(vec![pat("d1")]),
            &known,
            &database,
            &matrix,
            0.15,
            10,
            ProbeStrategy::BorderCollapsing,
            0,
        );
        assert_eq!(r.known_applied, 0);
        assert!(!r
            .frequent
            .iter()
            .chain(&r.infrequent)
            .any(|x| x.pattern == pat("d4 d4")));
    }

    #[test]
    fn empty_space_needs_no_scans() {
        let r = collapse(
            AmbiguousSpace::default(),
            &db(),
            &CompatibilityMatrix::paper_figure2(),
            0.1,
            10,
            ProbeStrategy::BorderCollapsing,
        );
        assert_eq!(r.scans, 0);
        assert!(r.frequent.is_empty() && r.infrequent.is_empty());
    }
}
