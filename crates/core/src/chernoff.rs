//! Additive Chernoff/Hoeffding bound machinery (Section 4, Claim 4.1/4.2).
//!
//! For a random variable with spread `R` observed `n` times with sample mean
//! `μ`, the true mean lies in `[μ − ε, μ + ε]` with probability `1 − δ`,
//! where `ε = sqrt(R² · ln(1/δ) / (2n))`. The miner uses this to classify
//! every pattern, from its match in the *sample*, as frequent / infrequent /
//! ambiguous with respect to the `min_match` threshold (Claim 4.1).
//!
//! The *restricted spread* refinement (Claim 4.2) replaces the default
//! `R = 1` by `R = minᵢ match[dᵢ]` over the pattern's concrete symbols —
//! valid because the Apriori property caps the match of a pattern by the
//! match of each of its symbols — and shrinks `ε` proportionally.
//!
//! # Observability
//!
//! When metrics are enabled, the sample miner records the widest band this
//! module computed in the `core_chernoff_epsilon_max` gauge and the
//! smallest restricted spread in `core_restricted_spread_min`; the
//! per-label classification tallies land in
//! `core_candidates_{frequent,ambiguous,infrequent}_total`. See
//! `docs/OBSERVABILITY.md`.

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;

/// Classification of a pattern after the sample phase (Claim 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Sample match exceeds `min_match + ε`: frequent with probability ≥ 1−δ.
    Frequent,
    /// Sample match within `±ε` of the threshold: needs exact verification.
    Ambiguous,
    /// Sample match below `min_match − ε`: infrequent with probability ≥ 1−δ.
    Infrequent,
}

/// The additive Chernoff bound error `ε = sqrt(R² ln(1/δ) / 2n)`.
///
/// `spread` is the spread `R` of the random variable, `n` the number of
/// independent observations, and `delta` the allowed failure probability.
///
/// # Panics
///
/// Panics (debug assertion) on non-positive `n`, `delta ∉ (0, 1)`, or a
/// negative spread. Callers validate configuration up front.
#[inline]
pub fn epsilon(spread: f64, n: usize, delta: f64) -> f64 {
    debug_assert!(n > 0, "epsilon needs at least one observation");
    debug_assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    debug_assert!(spread >= 0.0, "spread must be non-negative");
    (spread * spread * (1.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// The sample size needed to achieve a given `ε` at spread `R` and failure
/// probability `δ`: `n = R² ln(1/δ) / (2ε²)`, rounded up.
pub fn sample_size_for(epsilon: f64, spread: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0, "target epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    (spread * spread * (1.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// Three-way classification of a pattern from its sample match (Claim 4.1).
#[inline]
pub fn classify(sample_match: f64, min_match: f64, eps: f64) -> Label {
    if sample_match > min_match + eps {
        Label::Frequent
    } else if sample_match < min_match - eps {
        Label::Infrequent
    } else {
        Label::Ambiguous
    }
}

/// The restricted spread of a pattern (Claim 4.2):
/// `R = minᵢ match[dᵢ]` over the pattern's concrete symbols, where
/// `symbol_match[d]` is the match of symbol `d` in the *entire* database
/// (computed in phase 1). Returns 1 for a pattern with no concrete symbols
/// (which cannot occur for valid patterns).
///
/// # Panics
///
/// Panics with a descriptive message if the pattern uses a symbol outside
/// the `symbol_match` vector — the same alphabet/matrix-mismatch guard as
/// `SymbolMatchScratch::sequence`, instead of a raw index error.
pub fn restricted_spread(pattern: &Pattern, symbol_match: &[f64]) -> f64 {
    let m = symbol_match.len();
    pattern
        .symbols()
        .map(|s| {
            assert!(
                s.index() < m,
                "pattern symbol d{} lies outside the {m}-symbol phase-1 match vector \
                 (alphabet/matrix mismatch)",
                s.0
            );
            symbol_match[s.index()]
        })
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// How the spread `R` is chosen when classifying patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SpreadMode {
    /// The conservative default `R = 1`.
    Full,
    /// The restricted spread of Claim 4.2 (`R = minᵢ match[dᵢ]`).
    #[default]
    Restricted,
}

impl SpreadMode {
    /// The spread to use for `pattern` given the phase-1 per-symbol matches.
    pub fn spread(self, pattern: &Pattern, symbol_match: &[f64]) -> f64 {
        match self {
            SpreadMode::Full => 1.0,
            SpreadMode::Restricted => restricted_spread(pattern, symbol_match),
        }
    }
}

/// The probability that a frequent pattern's sample match under-shoots the
/// classification threshold by more than `rho` beyond ε — i.e. the tail
/// `P(dis(P) > ρ)` of Section 4's mislabeling analysis, which decays as
/// `exp(−2nρ²/R²)` (so `P(dis > 2ρ) = P(dis > ρ)⁴`).
pub fn mislabel_tail(rho: f64, spread: f64, n: usize) -> f64 {
    if spread <= 0.0 {
        return 0.0;
    }
    (-2.0 * n as f64 * rho * rho / (spread * spread)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn paper_numeric_example() {
        // §4: spread 1, n = 10000, confidence 99.99% → ε ≈ 0.0215.
        let e = epsilon(1.0, 10_000, 0.0001);
        assert!((e - 0.0215).abs() < 5e-4, "epsilon {e}");
    }

    #[test]
    fn epsilon_scales_linearly_with_spread() {
        // "Note that ε is linearly proportional to R" — reducing R from 1 to
        // 0.05 cuts ε by 95 % (§4 example).
        let full = epsilon(1.0, 5_000, 0.001);
        let restricted = epsilon(0.05, 5_000, 0.001);
        assert!((restricted / full - 0.05).abs() < 1e-12);
    }

    #[test]
    fn epsilon_shrinks_with_samples() {
        assert!(epsilon(1.0, 100, 0.01) > epsilon(1.0, 10_000, 0.01));
        // Quadrupling n halves epsilon.
        let e1 = epsilon(1.0, 1_000, 0.01);
        let e2 = epsilon(1.0, 4_000, 0.01);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sample_size_inverts_epsilon() {
        let n = sample_size_for(0.01, 1.0, 0.001);
        let e = epsilon(1.0, n, 0.001);
        assert!(e <= 0.01 + 1e-12);
        let e_fewer = epsilon(1.0, n - 1, 0.001);
        assert!(e_fewer > 0.01);
    }

    #[test]
    fn classification_bands() {
        let eps = 0.05;
        assert_eq!(classify(0.20, 0.10, eps), Label::Frequent);
        assert_eq!(classify(0.12, 0.10, eps), Label::Ambiguous);
        assert_eq!(classify(0.08, 0.10, eps), Label::Ambiguous);
        assert_eq!(classify(0.04, 0.10, eps), Label::Infrequent);
    }

    #[test]
    fn restricted_spread_is_min_symbol_match() {
        let a = Alphabet::synthetic(5);
        let p = Pattern::parse("d0 * d3", &a).unwrap();
        let symbol_match = [0.10, 0.9, 0.9, 0.05, 0.9];
        // §4: match of (d1, *, d2) with symbol matches 0.1 and 0.05 → R = 0.05.
        assert!((restricted_spread(&p, &symbol_match) - 0.05).abs() < 1e-12);
        assert_eq!(SpreadMode::Full.spread(&p, &symbol_match), 1.0);
        assert!((SpreadMode::Restricted.spread(&p, &symbol_match) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alphabet/matrix mismatch")]
    fn restricted_spread_rejects_out_of_range_symbols() {
        let a = Alphabet::synthetic(8);
        let p = Pattern::parse("d0 d7", &a).unwrap();
        // Phase-1 vector for a 5-symbol alphabet: d7 is out of range.
        let symbol_match = [0.1, 0.2, 0.3, 0.4, 0.5];
        let _ = restricted_spread(&p, &symbol_match);
    }

    #[test]
    fn mislabel_tail_has_quartic_relation() {
        // P(dis > 2ρ) = P(dis > ρ)^4 (Section 4).
        let p1 = mislabel_tail(0.01, 1.0, 5_000);
        let p2 = mislabel_tail(0.02, 1.0, 5_000);
        assert!((p2 - p1.powi(4)).abs() < 1e-12);
    }
}
