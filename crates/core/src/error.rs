//! Error types for the noisemine core library.

use std::fmt;

/// Errors produced by the core library.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A symbol name was looked up in an [`crate::alphabet::Alphabet`] that does
    /// not contain it.
    UnknownSymbol(String),
    /// A symbol id was out of range for the alphabet or matrix it was used with.
    SymbolOutOfRange {
        /// The offending symbol id.
        symbol: u16,
        /// The number of symbols in the alphabet/matrix.
        alphabet_size: usize,
    },
    /// A compatibility matrix failed validation.
    InvalidMatrix(String),
    /// A pattern failed a structural invariant (empty, or starts/ends with `*`).
    InvalidPattern(String),
    /// A configuration value was out of its legal range.
    InvalidConfig(String),
    /// A parse error while reading a pattern from text.
    PatternParse(String),
    /// A database scan failed partway through (I/O error, corrupt record,
    /// truncated store). Carries the structured [`ScanError`] so callers can
    /// distinguish transient faults from permanent corruption.
    Scan(ScanError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownSymbol(name) => write!(f, "unknown symbol {name:?}"),
            Error::SymbolOutOfRange {
                symbol,
                alphabet_size,
            } => write!(
                f,
                "symbol id {symbol} out of range for alphabet of {alphabet_size} symbols"
            ),
            Error::InvalidMatrix(msg) => write!(f, "invalid compatibility matrix: {msg}"),
            Error::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::PatternParse(msg) => write!(f, "pattern parse error: {msg}"),
            Error::Scan(e) => write!(f, "database scan failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ScanError> for Error {
    fn from(e: ScanError) -> Self {
        Error::Scan(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Broad classification of a scan failure, used by fault policies to decide
/// whether an operation is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanErrorKind {
    /// A transient I/O fault (timeout, interrupted read) that may succeed on
    /// retry against the same store.
    Transient,
    /// The store's content failed an integrity check (bad checksum, invalid
    /// framing). Retrying the same bytes cannot help.
    Corrupt,
    /// The store ended before the data it promised (torn write, truncated
    /// file).
    Truncated,
    /// Any other I/O error (permission denied, device failure, ...).
    Io,
}

impl ScanErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ScanErrorKind::Transient => "transient I/O fault",
            ScanErrorKind::Corrupt => "corrupt data",
            ScanErrorKind::Truncated => "truncated store",
            ScanErrorKind::Io => "I/O error",
        }
    }
}

/// A failure raised by [`crate::matching::SequenceScan::try_scan`] (or any
/// of the fallible mining paths built on it).
///
/// Besides the human-readable message, a `ScanError` carries the byte
/// `offset` into the store and the `record` index at which the scan failed,
/// when the implementation knows them — a fail-fast policy reports exactly
/// where the first fault sits so operators can inspect or repair the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    kind: ScanErrorKind,
    offset: Option<u64>,
    record: Option<u64>,
    message: String,
}

impl ScanError {
    /// Creates a scan error of `kind` with a free-form message.
    pub fn new(kind: ScanErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            offset: None,
            record: None,
            message: message.into(),
        }
    }

    /// Attaches the byte offset into the store at which the fault occurred.
    pub fn at_offset(mut self, offset: u64) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Attaches the index of the record being decoded when the fault
    /// occurred.
    pub fn at_record(mut self, record: u64) -> Self {
        self.record = Some(record);
        self
    }

    /// The failure classification.
    pub fn kind(&self) -> ScanErrorKind {
        self.kind
    }

    /// Byte offset into the store at which the fault occurred, if known.
    pub fn offset(&self) -> Option<u64> {
        self.offset
    }

    /// Index of the record being decoded when the fault occurred, if known.
    pub fn record(&self) -> Option<u64> {
        self.record
    }

    /// The implementation-provided detail message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// `true` when the fault is transient and a retry against the same
    /// store may succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == ScanErrorKind::Transient
    }
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.as_str())?;
        if let Some(record) = self.record {
            write!(f, " in record {record}")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " at byte offset {offset}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for ScanError {}
