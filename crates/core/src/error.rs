//! Error types for the noisemine core library.

use std::fmt;

/// Errors produced by the core library.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A symbol name was looked up in an [`crate::alphabet::Alphabet`] that does
    /// not contain it.
    UnknownSymbol(String),
    /// A symbol id was out of range for the alphabet or matrix it was used with.
    SymbolOutOfRange {
        /// The offending symbol id.
        symbol: u16,
        /// The number of symbols in the alphabet/matrix.
        alphabet_size: usize,
    },
    /// A compatibility matrix failed validation.
    InvalidMatrix(String),
    /// A pattern failed a structural invariant (empty, or starts/ends with `*`).
    InvalidPattern(String),
    /// A configuration value was out of its legal range.
    InvalidConfig(String),
    /// A parse error while reading a pattern from text.
    PatternParse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownSymbol(name) => write!(f, "unknown symbol {name:?}"),
            Error::SymbolOutOfRange {
                symbol,
                alphabet_size,
            } => write!(
                f,
                "symbol id {symbol} out of range for alphabet of {alphabet_size} symbols"
            ),
            Error::InvalidMatrix(msg) => write!(f, "invalid compatibility matrix: {msg}"),
            Error::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::PatternParse(msg) => write!(f, "pattern parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
