//! Positional symbol index for skip-scans.
//!
//! Phase 1 and every phase-3 border probe stream the whole database, yet
//! most sequences cannot contribute a non-zero match to a given pattern:
//! [`crate::matching::sequence_match`] is *exactly* `0.0` whenever the
//! sequence is shorter than the pattern or some concrete pattern symbol
//! `p` has no observed symbol `x` in the sequence with `C(p, x) > 0`
//! (every window product contains a zero factor). A [`SymbolIndex`]
//! records, per observed symbol, which sequences contain it; a
//! [`SkipPlan`] intersects those postings through the compatibility
//! matrix's non-zero structure to find the only sequences a probe batch
//! needs to visit.
//!
//! ## Exactness
//!
//! Skipping is sound because it is *bitwise invisible*: a skipped
//! sequence's contribution to every pattern in the batch is the literal
//! `+0.0`, and `x + 0.0 == x` bit-for-bit for every non-negative `x`
//! (block partials start at `+0.0` and accumulate non-negative match
//! values, so `-0.0` never arises). The Definition 3.7 denominator is
//! untouched: visited-sequence accounting happens in the scan pipeline's
//! in-order `inspect` hook, which sees every block whether or not the map
//! stage skips its sequences. The unindexed path is kept as the oracle in
//! `tests/property_index.rs`.
//!
//! ## Append safety
//!
//! [`SequenceScan::num_sequences`] is a report, not a promise — a scan may
//! deliver more sequences than the index covers (a concurrent append).
//! Ordinals beyond the index's coverage are always treated as candidates,
//! so an index can only ever *reduce* work, never change results.
//!
//! [`SequenceScan::num_sequences`]: crate::matching::SequenceScan::num_sequences

use serde::{Deserialize, Serialize};

use crate::alphabet::Symbol;
use crate::matrix::CompatibilityMatrix;
use crate::pattern::Pattern;

/// How the miner uses a positional symbol index (a purely operational
/// knob, like [`crate::miner::MinerConfig::threads`] — output is
/// bit-identical in every mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IndexMode {
    /// No index: every scan visits every sequence.
    #[default]
    Off,
    /// Build a [`SymbolIndex`] during the phase-1 scan (which must visit
    /// every sequence anyway for the sampler) and use it to skip
    /// non-candidate sequences in the phase-3 border probes.
    Build,
    /// Use a pre-built index supplied by the caller (e.g. an `NMIDX`
    /// sidecar loaded by the CLI). Inside the core miner this behaves
    /// like [`IndexMode::Build`] when no index was supplied.
    Use,
}

impl IndexMode {
    /// Parses `"off"`, `"build"`, or `"use"` (as accepted by the CLI's
    /// `--index` flag).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" => Some(IndexMode::Off),
            "build" => Some(IndexMode::Build),
            "use" => Some(IndexMode::Use),
            _ => None,
        }
    }

    /// The canonical flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            IndexMode::Off => "off",
            IndexMode::Build => "build",
            IndexMode::Use => "use",
        }
    }

    /// `true` unless the mode is [`IndexMode::Off`].
    pub fn enabled(self) -> bool {
        !matches!(self, IndexMode::Off)
    }
}

/// Incremental construction of a [`SymbolIndex`] from an in-order scan:
/// feed each sequence as it streams by (ordinal = arrival order), then
/// [`SymbolIndexBuilder::finish`].
#[derive(Debug)]
pub struct SymbolIndexBuilder {
    alphabet_size: usize,
    lens: Vec<u32>,
    /// Per observed symbol, the ascending ordinals of sequences containing
    /// it (deduplicated — at most one entry per sequence).
    postings: Vec<Vec<u32>>,
}

impl SymbolIndexBuilder {
    /// A builder for an alphabet of `alphabet_size` observed symbols.
    pub fn new(alphabet_size: usize) -> Self {
        Self {
            alphabet_size,
            lens: Vec::new(),
            postings: vec![Vec::new(); alphabet_size],
        }
    }

    /// Records the next sequence in scan order. Symbols outside the
    /// alphabet are ignored (they can never appear in a compatibility
    /// row, so no pattern probe consults them).
    pub fn add_sequence(&mut self, seq: &[Symbol]) {
        let ordinal = self.lens.len() as u32;
        self.lens.push(seq.len().min(u32::MAX as usize) as u32);
        for s in seq {
            if let Some(row) = self.postings.get_mut(s.index()) {
                if row.last() != Some(&ordinal) {
                    row.push(ordinal);
                }
            }
        }
    }

    /// Number of sequences recorded so far.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` before the first sequence is recorded.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Freezes the builder into a queryable index.
    pub fn finish(self) -> SymbolIndex {
        SymbolIndex::from_parts(self.alphabet_size, self.lens, self.postings)
            .expect("builder output is valid by construction")
    }
}

/// A positional symbol index: per observed symbol, a bitset over sequence
/// ordinals recording which sequences contain that symbol, plus each
/// sequence's length. Built in one pass (see [`SymbolIndexBuilder`]) or
/// loaded from an `NMIDX` sidecar file by the seqdb crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolIndex {
    alphabet_size: usize,
    num_sequences: usize,
    /// `u64` words per presence row: `ceil(num_sequences / 64)`.
    words: usize,
    /// Sequence lengths by ordinal.
    lens: Vec<u32>,
    /// Concatenated presence rows, `alphabet_size * words` words: bit
    /// `present[s * words + o / 64] >> (o % 64)` is set iff sequence `o`
    /// contains symbol `s`.
    present: Vec<u64>,
}

impl SymbolIndex {
    /// Reassembles an index from its serialized parts: per-ordinal
    /// sequence lengths and per-symbol ascending posting lists. Returns a
    /// description of the first defect when the parts are inconsistent
    /// (used by the `NMIDX` reader to reject corrupt files).
    pub fn from_parts(
        alphabet_size: usize,
        lens: Vec<u32>,
        postings: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        if postings.len() != alphabet_size {
            return Err(format!(
                "index has {} posting lists for an alphabet of {alphabet_size}",
                postings.len()
            ));
        }
        let num_sequences = lens.len();
        let words = num_sequences.div_ceil(64);
        let mut present = vec![0u64; alphabet_size * words];
        for (sym, row) in postings.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &ordinal in row {
                if (ordinal as usize) >= num_sequences {
                    return Err(format!(
                        "symbol {sym}: posting ordinal {ordinal} out of range \
                         (index covers {num_sequences} sequences)"
                    ));
                }
                if prev.is_some_and(|p| p >= ordinal) {
                    return Err(format!("symbol {sym}: postings not strictly ascending"));
                }
                prev = Some(ordinal);
                present[sym * words + ordinal as usize / 64] |= 1u64 << (ordinal % 64);
            }
        }
        Ok(Self {
            alphabet_size,
            num_sequences,
            words,
            lens,
            present,
        })
    }

    /// The observed-alphabet size this index was built for.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// Number of sequences the index covers.
    pub fn num_sequences(&self) -> usize {
        self.num_sequences
    }

    /// The recorded length of sequence `ordinal`, or `None` beyond
    /// coverage.
    pub fn len_of(&self, ordinal: usize) -> Option<u32> {
        self.lens.get(ordinal).copied()
    }

    /// The ascending ordinals of sequences containing `sym` (empty for
    /// symbols outside the alphabet). Reconstructed from the bitset; used
    /// by the `NMIDX` writer.
    pub fn postings_for(&self, sym: Symbol) -> Vec<u32> {
        let Some(row) = self.presence_row(sym) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// The presence bitset row of `sym`, or `None` outside the alphabet.
    fn presence_row(&self, sym: Symbol) -> Option<&[u64]> {
        let s = sym.index();
        if s >= self.alphabet_size {
            return None;
        }
        Some(&self.present[s * self.words..(s + 1) * self.words])
    }
}

/// The candidate set for one probe batch: a bitset over sequence ordinals
/// marking every sequence that *might* contribute a non-zero match to at
/// least one pattern in the batch. Built per batch by
/// [`SkipPlan::build`]; consulted per sequence via
/// [`SkipPlan::is_candidate`].
#[derive(Debug, Clone)]
pub struct SkipPlan {
    /// Union over the batch of per-pattern candidate bitsets.
    words: Vec<u64>,
    num_sequences: usize,
    candidates: usize,
}

impl SkipPlan {
    /// Computes the candidate set of `patterns` against `index` under
    /// `matrix`. A sequence is a candidate for a pattern iff it is at
    /// least as long as the pattern and, for every concrete pattern
    /// symbol `p`, contains some observed symbol `x` with `C(p, x) > 0`
    /// (the non-zeros of `matrix.row(p)`). Everything else provably
    /// matches the pattern with exactly `0.0` and can be skipped.
    pub fn build(index: &SymbolIndex, patterns: &[Pattern], matrix: &CompatibilityMatrix) -> Self {
        let words = index.words;
        let n = index.num_sequences;
        let mut union = vec![0u64; words];
        let mut acc = vec![0u64; words];
        let mut compat = vec![0u64; words];
        let mut seen_syms: Vec<Symbol> = Vec::new();
        for pattern in patterns {
            // Start from all-ones (trimmed to `n` bits), then AND in one
            // presence union per distinct concrete symbol.
            acc.fill(!0u64);
            if words > 0 && n % 64 != 0 {
                acc[words - 1] = (1u64 << (n % 64)) - 1;
            }
            seen_syms.clear();
            for sym in pattern.symbols() {
                if seen_syms.contains(&sym) {
                    continue;
                }
                seen_syms.push(sym);
                compat.fill(0);
                for &(observed, _) in matrix.row(sym) {
                    if let Some(row) = index.presence_row(observed) {
                        for (w, &word) in row.iter().enumerate() {
                            compat[w] |= word;
                        }
                    }
                }
                for (a, &c) in acc.iter_mut().zip(&compat) {
                    *a &= c;
                }
            }
            // Length filter: a sequence shorter than the pattern has no
            // window at all (Definition 3.6), so its match is exactly 0.
            let min_len = pattern.len() as u32;
            for (w, word) in acc.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    let ordinal = w * 64 + b as usize;
                    if index.lens[ordinal] < min_len {
                        *word &= !(1u64 << b);
                    }
                    bits &= bits - 1;
                }
            }
            for (u, &a) in union.iter_mut().zip(&acc) {
                *u |= a;
            }
        }
        let candidates = union.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            words: union,
            num_sequences: n,
            candidates,
        }
    }

    /// `true` when the sequence at `ordinal` must be visited. Ordinals
    /// beyond the index's coverage (appended after the build) are always
    /// candidates.
    #[inline]
    pub fn is_candidate(&self, ordinal: usize) -> bool {
        if ordinal >= self.num_sequences {
            return true;
        }
        self.words[ordinal / 64] >> (ordinal % 64) & 1 != 0
    }

    /// Number of candidate sequences within the index's coverage.
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Number of sequences the underlying index covers.
    pub fn num_sequences(&self) -> usize {
        self.num_sequences
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::sequence_match;
    use crate::pattern::PatternElem;

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().map(|&x| Symbol(x)).collect()
    }

    fn pattern(elems: &[Option<u16>]) -> Pattern {
        Pattern::new(
            elems
                .iter()
                .map(|e| match e {
                    Some(s) => PatternElem::Sym(Symbol(*s)),
                    None => PatternElem::Any,
                })
                .collect(),
        )
        .expect("valid pattern")
    }

    fn build_index(seqs: &[Vec<Symbol>], m: usize) -> SymbolIndex {
        let mut b = SymbolIndexBuilder::new(m);
        for s in seqs {
            b.add_sequence(s);
        }
        b.finish()
    }

    #[test]
    fn builder_postings_are_deduplicated_and_ascending() {
        let idx = build_index(&[syms(&[1, 1, 2]), syms(&[2]), syms(&[1, 2, 1])], 4);
        assert_eq!(idx.num_sequences(), 3);
        assert_eq!(idx.postings_for(Symbol(1)), vec![0, 2]);
        assert_eq!(idx.postings_for(Symbol(2)), vec![0, 1, 2]);
        assert_eq!(idx.postings_for(Symbol(0)), Vec::<u32>::new());
        assert_eq!(idx.postings_for(Symbol(9)), Vec::<u32>::new());
        assert_eq!(idx.len_of(0), Some(3));
        assert_eq!(idx.len_of(3), None);
    }

    #[test]
    fn from_parts_rejects_defects() {
        assert!(SymbolIndex::from_parts(2, vec![2], vec![vec![]]).is_err());
        assert!(SymbolIndex::from_parts(2, vec![2], vec![vec![1], vec![]]).is_err());
        assert!(SymbolIndex::from_parts(2, vec![2, 2], vec![vec![1, 1], vec![]]).is_err());
        assert!(SymbolIndex::from_parts(2, vec![2, 2], vec![vec![1, 0], vec![]]).is_err());
    }

    #[test]
    fn roundtrip_through_parts_is_identity() {
        let idx = build_index(
            &(0..130)
                .map(|i| syms(&[i % 5, (i + 1) % 5]))
                .collect::<Vec<_>>(),
            5,
        );
        let lens: Vec<u32> = (0..idx.num_sequences())
            .map(|o| idx.len_of(o).unwrap())
            .collect();
        let postings: Vec<Vec<u32>> = (0..5).map(|s| idx.postings_for(Symbol(s))).collect();
        let back = SymbolIndex::from_parts(5, lens, postings).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn plan_skips_only_provably_zero_sequences() {
        // Identity matrix: a sequence is a candidate iff it contains every
        // concrete pattern symbol and is long enough.
        let m = 4;
        let seqs = vec![
            syms(&[0, 1, 2]),    // has 0 and 1
            syms(&[2, 3]),       // lacks 0
            syms(&[1, 0]),       // has both, length 2
            syms(&[0, 3, 1, 2]), // has both
            syms(&[0]),          // lacks 1
        ];
        let idx = build_index(&seqs, m);
        let matrix = CompatibilityMatrix::identity(m);
        let p = pattern(&[Some(0), None, Some(1)]); // length 3
        let plan = SkipPlan::build(&idx, std::slice::from_ref(&p), &matrix);
        // The plan may only over-approximate the true non-zero set: every
        // sequence with a positive match is a candidate...
        for (o, s) in seqs.iter().enumerate() {
            if sequence_match(&p, s, &matrix) > 0.0 {
                assert!(plan.is_candidate(o), "ordinal {o} wrongly skipped");
            }
        }
        // ...and the symbol + length test skips exactly ordinals 1 (no
        // symbol 0), 2 (too short), and 4 (no symbol 1). Ordinal 0 is a
        // false positive — it has both symbols but not at compatible
        // positions — which the scan resolves, not the plan.
        for (o, want) in [true, false, false, true, false].into_iter().enumerate() {
            assert_eq!(plan.is_candidate(o), want, "ordinal {o}");
        }
        assert_eq!(plan.candidates(), 2);
        // Soundness on every skipped sequence: the match is exactly zero.
        for (o, s) in seqs.iter().enumerate() {
            if !plan.is_candidate(o) {
                assert_eq!(sequence_match(&p, s, &matrix).to_bits(), 0.0f64.to_bits());
            }
        }
    }

    #[test]
    fn plan_unions_over_the_batch() {
        let m = 3;
        let seqs = vec![syms(&[0, 0]), syms(&[1, 1]), syms(&[2, 2])];
        let idx = build_index(&seqs, m);
        let matrix = CompatibilityMatrix::identity(m);
        let batch = [pattern(&[Some(0), Some(0)]), pattern(&[Some(2), Some(2)])];
        let plan = SkipPlan::build(&idx, &batch, &matrix);
        assert!(plan.is_candidate(0));
        assert!(!plan.is_candidate(1));
        assert!(plan.is_candidate(2));
    }

    #[test]
    fn noisy_matrix_widens_the_candidate_set() {
        // Under a noisy matrix, symbol 0 is compatible with every
        // observation, so no sequence can be skipped on symbol grounds.
        let m = 3;
        let seqs = vec![syms(&[1, 1]), syms(&[2])];
        let idx = build_index(&seqs, m);
        let matrix = CompatibilityMatrix::uniform_noise(m, 0.3).unwrap();
        let plan = SkipPlan::build(&idx, &[pattern(&[Some(0), Some(0)])], &matrix);
        assert!(plan.is_candidate(0));
        assert!(!plan.is_candidate(1), "length filter still applies");
    }

    #[test]
    fn ordinals_beyond_coverage_are_candidates() {
        let idx = build_index(&[syms(&[0])], 2);
        let matrix = CompatibilityMatrix::identity(2);
        let plan = SkipPlan::build(&idx, &[pattern(&[Some(1)])], &matrix);
        assert!(!plan.is_candidate(0));
        assert!(plan.is_candidate(1), "appended sequences must be visited");
        assert!(plan.is_candidate(500));
    }

    #[test]
    fn empty_batch_and_empty_index() {
        let idx = build_index(&[], 2);
        let matrix = CompatibilityMatrix::identity(2);
        let plan = SkipPlan::build(&idx, &[], &matrix);
        assert_eq!(plan.candidates(), 0);
        assert!(plan.is_candidate(0), "beyond coverage");
    }

    #[test]
    fn index_mode_parses_and_round_trips() {
        for mode in [IndexMode::Off, IndexMode::Build, IndexMode::Use] {
            assert_eq!(IndexMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(IndexMode::parse("sidecar"), None);
        assert!(!IndexMode::Off.enabled());
        assert!(IndexMode::Build.enabled());
        assert_eq!(IndexMode::default(), IndexMode::Off);
    }
}
