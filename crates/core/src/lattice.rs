//! Pattern-lattice utilities: borders and halfway layers (§3, §4.2–4.3).
//!
//! The sub-/super-pattern relation (Definition 3.3) organizes all patterns
//! into a lattice. By the Apriori property (Claim 3.2) the frequent patterns
//! occupy a downward-closed region whose upper boundary is the **border**:
//! the set of frequent patterns whose immediate superpatterns are all
//! infrequent. Phase 2 produces two borders — `FQT` between frequent and
//! ambiguous patterns and `INFQT` between ambiguous and infrequent — and
//! phase 3 collapses the gap between them.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;

/// A border in the pattern lattice: an antichain of patterns kept maximal
/// under the sub-pattern relation. Inserting a pattern removes any existing
/// element that is a subpattern of it, and is a no-op if an existing element
/// already covers it (mirrors lines 22–23 / 28–29 of Algorithm 4.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Border {
    elements: Vec<Pattern>,
}

impl Border {
    /// Creates an empty border.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a border from arbitrary patterns, keeping only maximal ones.
    pub fn from_patterns<I: IntoIterator<Item = Pattern>>(patterns: I) -> Self {
        let mut b = Self::new();
        for p in patterns {
            b.insert(p);
        }
        b
    }

    /// Inserts a pattern, maintaining maximality. Returns `true` if the
    /// pattern is now represented on the border (i.e. it was not already
    /// covered by a superpattern).
    pub fn insert(&mut self, pattern: Pattern) -> bool {
        if self.elements.iter().any(|e| pattern.is_subpattern_of(e)) {
            return false;
        }
        self.elements.retain(|e| !e.is_subpattern_of(&pattern));
        self.elements.push(pattern);
        true
    }

    /// `true` if `pattern` is covered by the border, i.e. is a subpattern of
    /// (or equal to) some border element.
    pub fn covers(&self, pattern: &Pattern) -> bool {
        self.elements.iter().any(|e| pattern.is_subpattern_of(e))
    }

    /// The border elements.
    pub fn elements(&self) -> &[Pattern] {
        &self.elements
    }

    /// Number of border elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` when the border has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Maximum number of concrete symbols among the border elements, or 0.
    pub fn max_level(&self) -> usize {
        self.elements
            .iter()
            .map(Pattern::non_eternal_count)
            .max()
            .unwrap_or(0)
    }

    /// Consumes the border, returning its elements.
    pub fn into_elements(self) -> Vec<Pattern> {
        self.elements
    }
}

/// The halfway layer between two layers of patterns (Algorithm 4.4): for
/// every pair `(P₁, P₂)` with `P₁` from `lower`, `P₂` from `upper`, and
/// `P₁ ⊑ P₂`, all patterns with `⌈(k₁+k₂)/2⌉` concrete symbols lying between
/// them in the lattice.
pub fn halfway(lower: &[Pattern], upper: &[Pattern]) -> Vec<Pattern> {
    let mut seen: HashSet<Pattern> = HashSet::new();
    let mut out = Vec::new();
    for p1 in lower {
        for p2 in upper {
            if !p1.is_subpattern_of(p2) {
                continue;
            }
            let k1 = p1.non_eternal_count();
            let k2 = p2.non_eternal_count();
            let k = (k1 + k2).div_ceil(2);
            for candidate in p1.between(p2, k) {
                if seen.insert(candidate.clone()) {
                    out.push(candidate);
                }
            }
        }
    }
    out
}

/// The set of still-ambiguous patterns tracked during phase 3, with Apriori
/// propagation: an exact verification of one probed pattern resolves every
/// related pattern on the appropriate side (Figure 6's collapsing step).
#[derive(Debug, Clone, Default)]
pub struct AmbiguousSpace {
    patterns: HashSet<Pattern>,
}

impl AmbiguousSpace {
    /// Builds the space from the phase-2 ambiguous patterns.
    pub fn new<I: IntoIterator<Item = Pattern>>(patterns: I) -> Self {
        Self {
            patterns: patterns.into_iter().collect(),
        }
    }

    /// Number of unresolved ambiguous patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` when every ambiguous pattern has been resolved.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Whether a pattern is still unresolved.
    pub fn contains(&self, pattern: &Pattern) -> bool {
        self.patterns.contains(pattern)
    }

    /// Iterates over the unresolved patterns (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns.iter()
    }

    /// Minimum and maximum number of concrete symbols among unresolved
    /// patterns, or `None` when empty.
    pub fn level_range(&self) -> Option<(usize, usize)> {
        let mut it = self.patterns.iter().map(Pattern::non_eternal_count);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for k in it {
            lo = lo.min(k);
            hi = hi.max(k);
        }
        Some((lo, hi))
    }

    /// Unresolved patterns with exactly `k` concrete symbols.
    pub fn at_level(&self, k: usize) -> Vec<Pattern> {
        let mut v: Vec<Pattern> = self
            .patterns
            .iter()
            .filter(|p| p.non_eternal_count() == k)
            .cloned()
            .collect();
        v.sort(); // deterministic probe order
        v
    }

    /// Marks `pattern` frequent: by the Apriori property all of its
    /// subpatterns are frequent too, so every unresolved subpattern is
    /// resolved (frequent) and removed. Returns the resolved patterns.
    pub fn resolve_frequent(&mut self, pattern: &Pattern) -> Vec<Pattern> {
        let mut resolved: Vec<Pattern> = self
            .patterns
            .iter()
            .filter(|p| p.is_subpattern_of(pattern))
            .cloned()
            .collect();
        for p in &resolved {
            self.patterns.remove(p);
        }
        // Hash order varies between processes; downstream consumers record
        // resolutions in arrival order (and checkpoint them), so sort to
        // keep results byte-identical across separate runs.
        resolved.sort();
        resolved
    }

    /// Marks `pattern` infrequent: all of its superpatterns are infrequent,
    /// so every unresolved superpattern is resolved (infrequent) and
    /// removed. Returns the resolved patterns.
    pub fn resolve_infrequent(&mut self, pattern: &Pattern) -> Vec<Pattern> {
        let mut resolved: Vec<Pattern> = self
            .patterns
            .iter()
            .filter(|p| pattern.is_subpattern_of(p))
            .cloned()
            .collect();
        for p in &resolved {
            self.patterns.remove(p);
        }
        // Same ordering contract as `resolve_frequent`.
        resolved.sort();
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(10)).unwrap()
    }

    #[test]
    fn border_keeps_maximal_elements() {
        let mut b = Border::new();
        assert!(b.insert(pat("d1 d2")));
        assert!(b.insert(pat("d4 d5")));
        // Superpattern subsumes d1 d2 (but not d4 d5).
        assert!(b.insert(pat("d1 d2 d3")));
        assert_eq!(b.len(), 2);
        assert!(b.covers(&pat("d1 d2")));
        assert!(b.covers(&pat("d2 d3")));
        assert!(b.covers(&pat("d3"))); // suffix of a border element
        assert!(!b.covers(&pat("d6")));
        // Inserting a covered pattern is a no-op.
        assert!(!b.insert(pat("d2 d3")));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn border_figure3_example() {
        // Figure 3: frequent patterns with border {d1d2d3, d1d2**d5, d1**d4}.
        let b = Border::from_patterns([
            pat("d1"),
            pat("d1 d2"),
            pat("d1 * * d4"),
            pat("d1 d2 d3"),
            pat("d1 d2 * * d5"),
        ]);
        let mut els: Vec<String> = b.elements().iter().map(|p| p.to_string()).collect();
        els.sort();
        assert_eq!(els, vec!["d1 * * d4", "d1 d2 * * d5", "d1 d2 d3"]);
    }

    #[test]
    fn halfway_between_borders() {
        // Figure 6(b): halfway between {d1} and {d1d2d3d4d5}.
        let mids = halfway(&[pat("d1")], &[pat("d1 d2 d3 d4 d5")]);
        assert_eq!(mids.len(), 6);
        for p in &mids {
            assert_eq!(p.non_eternal_count(), 3);
        }
    }

    #[test]
    fn halfway_skips_unrelated_pairs() {
        let mids = halfway(&[pat("d7")], &[pat("d1 d2 d3")]);
        assert!(mids.is_empty());
    }

    #[test]
    fn halfway_dedups_across_pairs() {
        let mids = halfway(&[pat("d1"), pat("d2")], &[pat("d1 d2 d3"), pat("d1 d2 d4")]);
        let set: HashSet<&Pattern> = mids.iter().collect();
        assert_eq!(set.len(), mids.len(), "halfway output contains duplicates");
    }

    #[test]
    fn ambiguous_space_collapse() {
        // Figure 6(a): chain d1, d1d2, d1d2d3, d1d2d3d4, d1d2d3d4d5.
        let chain = [
            pat("d1"),
            pat("d1 d2"),
            pat("d1 d2 d3"),
            pat("d1 d2 d3 d4"),
            pat("d1 d2 d3 d4 d5"),
        ];
        // Probing the halfway element d1d2d3 as frequent resolves d1 and
        // d1d2 as well (three resolved in total).
        let mut space = AmbiguousSpace::new(chain.clone());
        let resolved = space.resolve_frequent(&pat("d1 d2 d3"));
        assert_eq!(resolved.len(), 3);
        assert_eq!(space.len(), 2);
        assert!(space.contains(&pat("d1 d2 d3 d4")));

        // Probing it as infrequent instead resolves the two superpatterns.
        let mut space = AmbiguousSpace::new(chain);
        let resolved = space.resolve_infrequent(&pat("d1 d2 d3"));
        assert_eq!(resolved.len(), 3); // itself + two superpatterns
        assert_eq!(space.len(), 2);
        assert!(space.contains(&pat("d1")));
        assert!(space.contains(&pat("d1 d2")));
    }

    #[test]
    fn ambiguous_space_levels() {
        let space = AmbiguousSpace::new([pat("d1"), pat("d1 d2"), pat("d1 d2 d3")]);
        assert_eq!(space.level_range(), Some((1, 3)));
        assert_eq!(space.at_level(2), vec![pat("d1 d2")]);
        assert!(space.at_level(7).is_empty());
    }

    #[test]
    fn empty_space_reports_empty() {
        let space = AmbiguousSpace::default();
        assert!(space.is_empty());
        assert_eq!(space.level_range(), None);
    }
}
