//! # noisemine-core
//!
//! A faithful, production-quality implementation of
//! *Mining Long Sequential Patterns in a Noisy Environment*
//! (Yang, Wang, Yu, Han — SIGMOD 2002).
//!
//! In a noisy environment an observed sequence may not accurately reflect
//! the underlying behaviour: an amino acid mutates, a quantized measurement
//! lands in the adjacent bin, a customer substitutes a product. The plain
//! *support* of a pattern (its count of exact occurrences) is brittle under
//! such noise — a long frequent pattern can easily be "concealed". This
//! crate implements the paper's remedy:
//!
//! - a [`matrix::CompatibilityMatrix`] giving, for each observed symbol, the
//!   conditional probability of each underlying true symbol;
//! - the [`matching`] module's **match** metric — the "real support" a
//!   pattern would have in a noise-free world — which satisfies the Apriori
//!   property and degrades to support exactly when the matrix is identity;
//! - the three-phase probabilistic [`miner`]: one scan for per-symbol
//!   matches and a uniform sample (Algorithm 4.1), Chernoff-bound
//!   classification of candidates on the sample with the restricted-spread
//!   refinement ([`chernoff`], Algorithm 4.2), and **border collapsing**
//!   ([`border_collapse`], Algorithms 4.3/4.4) to resolve the ambiguous
//!   patterns in a near-minimal number of full database scans.
//!
//! ## Quick start
//!
//! ```
//! use noisemine_core::alphabet::Alphabet;
//! use noisemine_core::candidates::PatternSpace;
//! use noisemine_core::matching::MemorySequences;
//! use noisemine_core::matrix::CompatibilityMatrix;
//! use noisemine_core::miner::{mine, MinerConfig};
//!
//! let alphabet = Alphabet::synthetic(5);
//! let db = MemorySequences(vec![
//!     alphabet.encode("d0 d1 d2 d0").unwrap(),
//!     alphabet.encode("d3 d1 d0").unwrap(),
//!     alphabet.encode("d2 d3 d1 d0").unwrap(),
//!     alphabet.encode("d1 d1").unwrap(),
//! ]);
//! let matrix = CompatibilityMatrix::paper_figure2();
//! let config = MinerConfig {
//!     min_match: 0.15,
//!     sample_size: 4,
//!     space: PatternSpace::contiguous(4),
//!     ..MinerConfig::default()
//! };
//! let outcome = mine(&db, &matrix, &config).unwrap();
//! assert!(!outcome.frequent.is_empty());
//! ```

pub mod alphabet;
pub mod border_collapse;
pub mod candidates;
pub mod chernoff;
pub mod error;
pub mod index;
pub mod lattice;
pub mod match_kernel;
pub mod matching;
pub mod matrix;
pub mod matrix_io;
pub mod miner;
pub mod model;
pub(crate) mod obs;
pub mod parallel;
pub mod pattern;
pub mod sample_miner;

pub use alphabet::{Alphabet, Symbol};
pub use border_collapse::{CollapseResult, ProbeStrategy};
pub use candidates::PatternSpace;
pub use chernoff::{Label, SpreadMode};
pub use error::{Error, Result, ScanError, ScanErrorKind};
pub use index::{IndexMode, SkipPlan, SymbolIndex, SymbolIndexBuilder};
pub use lattice::Border;
pub use match_kernel::simd::{simd_active, SimdScratch, FORCE_SCALAR_ENV, SIMD_MAX_ULP};
pub use match_kernel::{CandidateTrie, MatchKernel, TrieScratch};
pub use matching::{MatchMetric, PatternMetric, SequenceScan, SupportMetric};
pub use matrix::CompatibilityMatrix;
pub use miner::{mine, mine_indexed, FrequentPattern, MineOutcome, MineStats, MinerConfig};
pub use model::{ModelPattern, PatternModel};
pub use pattern::{Pattern, PatternElem};
