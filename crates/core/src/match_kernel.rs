//! Batched candidate-trie match kernel (Definitions 3.5/3.6 at scale).
//!
//! Every phase of the miner bottlenecks on the same primitive: evaluate
//! `M(P, S) = max over windows of ∏ C(pᵢ, sᵢ)` for *many* candidate
//! patterns against *every* sequence. Phase 2 evaluates whole candidate
//! levels against the sample, and phase 3's border collapsing probes entire
//! lattice layers per scan. Evaluating each pattern independently with
//! [`sequence_match`](crate::matching::sequence_match) redoes identical
//! prefix products for candidates that share prefixes — and by Apriori
//! generation ([`crate::candidates::next_level`] extends each survivor on
//! the right) almost all candidates in a level share long prefixes.
//!
//! [`CandidateTrie`] stores an arbitrary batch of patterns keyed by shared
//! prefixes, and [`CandidateTrie::batch_sequence_match`] walks each window
//! of a sequence **once**, maintaining the incremental prefix product down
//! the trie so a prefix shared by `k` candidates is multiplied once instead
//! of `k` times.
//!
//! # Pruning, and why the kernel is bit-identical to the naive path
//!
//! Compatibility values never exceed 1 (each column of the matrix is a
//! conditional distribution), so the running product down a trie path is
//! non-increasing — the monotonicity behind Claim 3.1's Apriori property,
//! reused here at window granularity. Each trie node carries a *floor*: the
//! minimum best-window-so-far over every candidate in its subtree. When the
//! running product falls to (or below) the floor, no candidate below can
//! improve on a window it has already seen, and the entire subtree is cut
//! for this window. This is exactly the per-pattern abandonment of
//! [`sequence_match`](crate::matching::sequence_match) lifted to subtrees,
//! and — like it — the cut is *exact*, never heuristic: a pruned window
//! could only have produced a value `<=` an already-recorded one.
//!
//! Because a pattern's product is multiplied in the same left-to-right
//! order as the naive scan and the window loop visits windows in the same
//! order, every per-pattern result is **bit-identical** to
//! `sequence_match` (floating-point multiplication order and max order are
//! preserved, not merely mathematically equivalent). The naive path is kept
//! as a reference oracle, selectable with [`MatchKernel::Naive`].
//!
//! # Observability
//!
//! With the [`noisemine_obs`] registry enabled, the kernel counts trie
//! nodes expanded (`core_kernel_nodes_visited_total`) and subtree cuts
//! (`core_kernel_prunes_total`); the batch width of each kernel-evaluated
//! scan is tracked by `core_kernel_patterns_per_scan`. See
//! `docs/OBSERVABILITY.md`.

pub mod simd;

use serde::{Deserialize, Serialize};

use crate::alphabet::Symbol;
use crate::matrix::CompatibilityMatrix;
use crate::pattern::{Pattern, PatternElem};

/// Which implementation evaluates multi-pattern match batches.
///
/// All kernels produce the same values on every input (asserted by the
/// property suites and the `match_kernel` bench): `Naive` and `Trie` are
/// bit-identical by construction, and `Simd` preserves the same
/// multiplication order per window, so its results agree within
/// [`simd::SIMD_MAX_ULP`] (currently zero — see `simd` module docs). The
/// naive path is retained as a reference oracle and for ablation
/// benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MatchKernel {
    /// Evaluate each pattern independently with
    /// [`sequence_match`](crate::matching::sequence_match).
    Naive,
    /// Batched candidate-trie kernel: one window walk per sequence,
    /// shared-prefix products, subtree pruning.
    #[default]
    Trie,
    /// Columnar kernel: 8 sequence windows per vector lane group, matrix
    /// columns gathered into per-symbol stripes, AVX2 on capable x86-64
    /// hosts with a portable scalar fallback (see [`simd`]).
    Simd,
}

impl MatchKernel {
    /// Parses a kernel name (`"trie"` / `"naive"` / `"simd"`), as accepted
    /// by the CLI `--kernel` flag.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "trie" => Some(Self::Trie),
            "naive" => Some(Self::Naive),
            "simd" => Some(Self::Simd),
            _ => None,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Trie => "trie",
            Self::Simd => "simd",
        }
    }
}

/// Sentinel: node has no terminal pattern.
const NO_PATTERN: u32 = u32::MAX;
/// Sentinel: node has no parent (it is a root).
const NO_PARENT: u32 = u32::MAX;
/// Element id for the eternal symbol inside a node.
const ANY_ELEM: u32 = u32::MAX;
/// Sentinel stripe index: node consumes the eternal symbol (no stripe).
const NO_STRIPE: u32 = u32::MAX;

/// One trie node, laid out for the window walk: the element it consumes,
/// its depth (window offset), its parent (for floor propagation), an
/// optional terminal pattern index, and a contiguous child range in
/// [`CandidateTrie::children`].
#[derive(Debug, Clone)]
struct TrieNode {
    /// Concrete symbol id, or [`ANY_ELEM`] for `*`.
    elem: u32,
    /// Window offset consumed by this node (root = 0).
    depth: u32,
    /// Parent node index, [`NO_PARENT`] for roots.
    parent: u32,
    /// Terminal pattern index, [`NO_PATTERN`] if none ends here.
    pattern: u32,
    /// Start of the child range in `children`.
    child_start: u32,
    /// End (exclusive) of the child range in `children`.
    child_end: u32,
}

/// A batch of candidate patterns stored as a prefix trie.
///
/// The trie is immutable after construction and holds no per-evaluation
/// state, so one trie can be shared by any number of worker threads; each
/// worker brings its own [`TrieScratch`].
#[derive(Debug, Clone)]
pub struct CandidateTrie {
    nodes: Vec<TrieNode>,
    /// Flat child adjacency; each node owns `children[child_start..child_end]`.
    children: Vec<u32>,
    /// Root nodes (depth 0), one per distinct leading element.
    roots: Vec<u32>,
    /// `(duplicate, canonical)` pattern-index pairs: a duplicate pattern
    /// shares the canonical's terminal node and copies its result.
    dups: Vec<(u32, u32)>,
    patterns: usize,
    /// Distinct concrete symbols across the batch — one compatibility
    /// stripe per entry in the columnar kernel (see [`simd`]); per-node
    /// stripe indices live in [`PreNode::stripe`].
    stripe_syms: Vec<u16>,
    /// Shortest terminal pattern length (0 when the trie has no patterns);
    /// windows past `n + 1 - min_len` cannot complete any pattern.
    min_len: u32,
    /// Deepest node depth — the columnar kernel's stripe padding bound.
    max_depth: u32,
    /// Preorder flattening of the trie for the columnar kernel's stackless
    /// walk: visiting slots in order is a DFS, and pruning a subtree is a
    /// jump to its `skip` slot. One contiguous read stream instead of a
    /// stack plus scattered `nodes`/`children` loads.
    pre: Vec<PreNode>,
}

/// One slot of [`CandidateTrie::pre`]: the hot per-node metadata of the
/// columnar walk, packed in visit order.
#[derive(Debug, Clone, Copy)]
struct PreNode {
    /// Node id — indexes `nodes` (for the raise-floors parent walk) and the
    /// scratch floor array.
    node: u32,
    /// Preorder slot just past this node's subtree — where a pruned walk
    /// resumes.
    skip: u32,
    /// Stripe row, [`NO_STRIPE`] for `*` nodes.
    stripe: u32,
    /// Pattern index, [`NO_PATTERN`] for interior nodes.
    pattern: u32,
    /// Node depth: the walk multiplies lane-buffer row `depth` into row
    /// `depth + 1`.
    depth: u32,
}

/// Intermediate adjacency used only during construction.
struct BuildNode {
    elem: u32,
    depth: u32,
    parent: u32,
    pattern: u32,
    children: Vec<u32>,
}

impl CandidateTrie {
    /// Builds a trie over `patterns`. Pattern indices in every evaluation
    /// output are aligned with this slice. Duplicate patterns are allowed —
    /// each occupies its own output slot (the first duplicate owns the
    /// terminal marker, the rest alias its result), so a batch with
    /// repeats still returns one value per input pattern.
    pub fn new(patterns: &[Pattern]) -> Self {
        let mut nodes: Vec<BuildNode> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        let mut dups: Vec<(u32, u32)> = Vec::new();
        for (pi, pattern) in patterns.iter().enumerate() {
            let mut at: Option<u32> = None;
            for (depth, e) in pattern.elems().iter().enumerate() {
                let elem = match e {
                    PatternElem::Any => ANY_ELEM,
                    PatternElem::Sym(s) => s.0 as u32,
                };
                let siblings: &[u32] = match at {
                    None => &roots,
                    Some(n) => &nodes[n as usize].children,
                };
                let found = siblings
                    .iter()
                    .copied()
                    .find(|&c| nodes[c as usize].elem == elem);
                let next = match found {
                    Some(c) => c,
                    None => {
                        let idx = nodes.len() as u32;
                        nodes.push(BuildNode {
                            elem,
                            depth: depth as u32,
                            parent: at.unwrap_or(NO_PARENT),
                            pattern: NO_PATTERN,
                            children: Vec::new(),
                        });
                        match at {
                            None => roots.push(idx),
                            Some(n) => nodes[n as usize].children.push(idx),
                        }
                        idx
                    }
                };
                at = Some(next);
            }
            let terminal = at.expect("patterns are non-empty") as usize;
            if nodes[terminal].pattern == NO_PATTERN {
                nodes[terminal].pattern = pi as u32;
            } else {
                dups.push((pi as u32, nodes[terminal].pattern));
            }
        }

        // Flatten the per-node child vectors into one contiguous array.
        let mut children = Vec::with_capacity(nodes.len().saturating_sub(roots.len()));
        let mut flat = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let child_start = children.len() as u32;
            children.extend_from_slice(&n.children);
            flat.push(TrieNode {
                elem: n.elem,
                depth: n.depth,
                parent: n.parent,
                pattern: n.pattern,
                child_start,
                child_end: children.len() as u32,
            });
        }
        // Columnar metadata: distinct concrete symbols (one compatibility
        // stripe each), shortest terminal, deepest node.
        let mut stripe_syms: Vec<u16> = Vec::new();
        let mut stripe_of = Vec::with_capacity(flat.len());
        for n in &flat {
            stripe_of.push(if n.elem == ANY_ELEM {
                NO_STRIPE
            } else {
                let sym = n.elem as u16;
                match stripe_syms.iter().position(|&s| s == sym) {
                    Some(i) => i as u32,
                    None => {
                        stripe_syms.push(sym);
                        (stripe_syms.len() - 1) as u32
                    }
                }
            });
        }
        let min_len = flat
            .iter()
            .filter(|n| n.pattern != NO_PATTERN)
            .map(|n| n.depth + 1)
            .min()
            .unwrap_or(0);
        let max_depth = flat.iter().map(|n| n.depth).max().unwrap_or(0);
        let mut pre = Vec::with_capacity(flat.len());
        for &r in &roots {
            Self::emit_preorder(r, &flat, &children, &stripe_of, &mut pre);
        }
        Self {
            nodes: flat,
            children,
            roots,
            dups,
            patterns: patterns.len(),
            stripe_syms,
            min_len,
            max_depth,
            pre,
        }
    }

    /// Appends `ni`'s subtree to `pre` in preorder and backpatches each
    /// slot's prune jump. Recursion depth is the pattern length.
    fn emit_preorder(
        ni: u32,
        flat: &[TrieNode],
        children: &[u32],
        stripe_of: &[u32],
        pre: &mut Vec<PreNode>,
    ) {
        let slot = pre.len();
        let n = &flat[ni as usize];
        pre.push(PreNode {
            node: ni,
            skip: 0,
            stripe: stripe_of[ni as usize],
            pattern: n.pattern,
            depth: n.depth,
        });
        for &c in &children[n.child_start as usize..n.child_end as usize] {
            Self::emit_preorder(c, flat, children, stripe_of, pre);
        }
        pre[slot].skip = pre.len() as u32;
    }

    /// Number of patterns in the batch.
    pub fn num_patterns(&self) -> usize {
        self.patterns
    }

    /// Number of trie nodes — `sum of pattern lengths` minus the positions
    /// saved by prefix sharing.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Allocates evaluation scratch sized for this trie. Reuse it across
    /// sequences; sharing one trie across threads requires one scratch per
    /// thread.
    pub fn scratch(&self) -> TrieScratch {
        TrieScratch {
            best: vec![0.0; self.patterns],
            floor: vec![0.0; self.nodes.len()],
            stack: Vec::with_capacity(self.nodes.len().min(1024)),
            nodes_visited: 0,
            prunes: 0,
        }
    }

    /// Computes `out[i] = sequence_match(patterns[i], sequence, matrix)`
    /// for every pattern in the batch, walking each window of the sequence
    /// once. Results are bit-identical to per-pattern
    /// [`sequence_match`](crate::matching::sequence_match) (see the module
    /// docs for the argument).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.num_patterns()` in debug builds; a
    /// shorter `out` panics on indexing in all builds.
    pub fn batch_sequence_match(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut TrieScratch,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.patterns);
        if self.patterns == 0 {
            return;
        }
        scratch.best.fill(0.0);
        scratch.floor.fill(0.0);
        let n = sequence.len();
        // Only distinct patterns own terminal nodes; duplicates alias a
        // canonical slot after the walk and never saturate on their own.
        let distinct = self.patterns - self.dups.len();
        let mut saturated = 0usize;
        let mut nodes_visited = 0u64;
        let mut prunes = 0u64;

        'windows: for w in 0..n {
            scratch.stack.clear();
            for &r in self.roots.iter().rev() {
                scratch.stack.push((r, 1.0f64));
            }
            while let Some((ni, upstream)) = scratch.stack.pop() {
                let node = &self.nodes[ni as usize];
                let pos = w + node.depth as usize;
                if pos >= n {
                    continue; // window runs off the end of the sequence
                }
                nodes_visited += 1;
                let product = if node.elem == ANY_ELEM {
                    // The eternal symbol: C(*, x) = 1, product unchanged
                    // (and, like the naive scan, no floor check here).
                    upstream
                } else {
                    let p = upstream * matrix.get(Symbol(node.elem as u16), sequence[pos]);
                    if p <= scratch.floor[ni as usize] {
                        // Below every candidate's best in this subtree:
                        // exact cut (the product can only shrink further).
                        prunes += 1;
                        continue;
                    }
                    p
                };
                if node.pattern != NO_PATTERN {
                    let pi = node.pattern as usize;
                    if product > scratch.best[pi] {
                        if scratch.best[pi] < 1.0 && product >= 1.0 {
                            saturated += 1;
                        }
                        scratch.best[pi] = product;
                        self.raise_floors(ni, scratch);
                    }
                }
                for &c in self.children[node.child_start as usize..node.child_end as usize]
                    .iter()
                    .rev()
                {
                    scratch.stack.push((c, product));
                }
            }
            if saturated == distinct {
                break 'windows; // every candidate already has a perfect match
            }
        }

        out.copy_from_slice(&scratch.best);
        for &(dup, canon) in &self.dups {
            out[dup as usize] = out[canon as usize];
        }
        scratch.nodes_visited += nodes_visited;
        scratch.prunes += prunes;
        if noisemine_obs::enabled() {
            crate::obs::kernel_nodes_visited().add(nodes_visited);
            crate::obs::kernel_prunes().add(prunes);
        }
    }

    /// Re-establishes the floor invariant (`floor[n]` = min best over
    /// terminal descendants of `n`, including `n` itself) after `best` of
    /// the terminal at `node` increased, walking toward the root until a
    /// floor stops changing.
    fn raise_floors(&self, node: u32, scratch: &mut TrieScratch) {
        self.raise_floors_in(node, &scratch.best, &mut scratch.floor);
    }

    /// [`Self::raise_floors`] over caller-owned `best`/`floor` buffers —
    /// shared by [`TrieScratch`] and the columnar kernel's
    /// [`simd::SimdScratch`], whose floors obey the same invariant.
    fn raise_floors_in(&self, node: u32, best: &[f64], floor: &mut [f64]) {
        let mut ni = node;
        loop {
            let n = &self.nodes[ni as usize];
            let mut f = if n.pattern == NO_PATTERN {
                f64::INFINITY
            } else {
                best[n.pattern as usize]
            };
            for &c in &self.children[n.child_start as usize..n.child_end as usize] {
                let cf = floor[c as usize];
                if cf < f {
                    f = cf;
                }
            }
            if f == floor[ni as usize] {
                break; // ancestors already see this minimum
            }
            floor[ni as usize] = f;
            if n.parent == NO_PARENT {
                break;
            }
            ni = n.parent;
        }
    }

    /// [`Self::raise_floors_in`] that also records every node whose floor
    /// left zero in `dirty`, so the columnar kernel can reset floors by
    /// walking the dirty list instead of memsetting the whole node array
    /// each sequence (the memset dominates once the walk itself is cheap).
    fn raise_floors_in_tracked(
        &self,
        node: u32,
        best: &[f64],
        floor: &mut [f64],
        dirty: &mut Vec<u32>,
    ) {
        let mut ni = node;
        loop {
            let n = &self.nodes[ni as usize];
            let mut f = if n.pattern == NO_PATTERN {
                f64::INFINITY
            } else {
                best[n.pattern as usize]
            };
            for &c in &self.children[n.child_start as usize..n.child_end as usize] {
                let cf = floor[c as usize];
                if cf < f {
                    f = cf;
                }
            }
            if f == floor[ni as usize] {
                break; // ancestors already see this minimum
            }
            if floor[ni as usize] == 0.0 {
                dirty.push(ni);
            }
            floor[ni as usize] = f;
            if n.parent == NO_PARENT {
                break;
            }
            ni = n.parent;
        }
    }
}

/// Per-thread evaluation state for one [`CandidateTrie`]: best-window
/// values per pattern, per-node pruning floors, and the DFS stack. Also
/// accumulates the kernel's work counters so callers can inspect pruning
/// effectiveness without the metrics registry.
#[derive(Debug, Clone)]
pub struct TrieScratch {
    best: Vec<f64>,
    floor: Vec<f64>,
    stack: Vec<(u32, f64)>,
    /// Trie nodes expanded across all evaluations with this scratch.
    pub nodes_visited: u64,
    /// Subtrees cut by the floor across all evaluations with this scratch.
    pub prunes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matching::sequence_match;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(5)).unwrap()
    }

    fn seq(text: &str) -> Vec<Symbol> {
        Alphabet::synthetic(5).encode(text).unwrap()
    }

    fn assert_batch_matches_naive(
        patterns: &[Pattern],
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
    ) {
        let trie = CandidateTrie::new(patterns);
        let mut scratch = trie.scratch();
        let mut out = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match(sequence, matrix, &mut scratch, &mut out);
        for (p, &got) in patterns.iter().zip(&out) {
            let want = sequence_match(p, sequence, matrix);
            assert!(
                got == want,
                "{p}: trie {got} != naive {want} (bit-identity broken)"
            );
        }
    }

    #[test]
    fn agrees_with_naive_on_paper_database() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![
            pat("d0"),
            pat("d0 d1"),
            pat("d0 d1 d1"),
            pat("d0 * d1"),
            pat("d1 d0"),
            pat("d2 d0 d1"),
            pat("d4 d4"),
        ];
        for text in ["d0 d1 d1 d2 d3 d0", "d2 d0 d1", "d0 d0", "d1"] {
            assert_batch_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn empty_trie_is_a_no_op() {
        let trie = CandidateTrie::new(&[]);
        let mut scratch = trie.scratch();
        let mut out: Vec<f64> = Vec::new();
        trie.batch_sequence_match(
            &seq("d0 d1"),
            &CompatibilityMatrix::paper_figure2(),
            &mut scratch,
            &mut out,
        );
        assert_eq!(trie.num_patterns(), 0);
        assert_eq!(trie.num_nodes(), 0);
    }

    #[test]
    fn pattern_longer_than_sequence_yields_zero() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1 d2 d3"), pat("d0")];
        let s = seq("d0 d1");
        assert_batch_matches_naive(&patterns, &s, &matrix);
        let trie = CandidateTrie::new(&patterns);
        let mut out = vec![1.0; 2];
        trie.batch_sequence_match(&s, &matrix, &mut trie.scratch(), &mut out);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn empty_sequence_yields_all_zero() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0"), pat("d1 d2")];
        let trie = CandidateTrie::new(&patterns);
        let mut out = vec![1.0; 2];
        trie.batch_sequence_match(&[], &matrix, &mut trie.scratch(), &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn wildcard_columns_share_prefix_nodes() {
        let matrix = CompatibilityMatrix::paper_figure2();
        // d0 * d1 and d0 * d2 share the "d0 *" prefix (2 nodes), then fork.
        let patterns = vec![pat("d0 * d1"), pat("d0 * d2"), pat("d0 * * d1")];
        let trie = CandidateTrie::new(&patterns);
        // Shared: d0, *; distinct: d1, d2, second *, final d1 -> 6 nodes.
        assert_eq!(trie.num_nodes(), 6);
        for text in ["d0 d3 d1 d4 d2", "d0 d0 d0 d0", "d3 d3"] {
            assert_batch_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn prefix_sharing_reduces_node_count() {
        // 4 patterns of length 3 with a common 2-prefix: 2 + 4 nodes.
        let patterns: Vec<Pattern> = (0..4u16)
            .map(|i| Pattern::contiguous(&[Symbol(0), Symbol(1), Symbol(i)]).unwrap())
            .collect();
        let trie = CandidateTrie::new(&patterns);
        assert_eq!(trie.num_nodes(), 6);
        assert_eq!(trie.num_patterns(), 4);
    }

    #[test]
    fn terminal_prefix_of_longer_pattern() {
        // d0 d1 is itself terminal AND the prefix of d0 d1 d2 — both must
        // report their own (different) match values.
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1"), pat("d0 d1 d2")];
        for text in ["d0 d1 d2 d0", "d0 d1", "d1 d0 d1 d2"] {
            assert_batch_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn identity_matrix_exact_hits() {
        let matrix = CompatibilityMatrix::identity(5);
        let patterns = vec![pat("d0 d1"), pat("d1 d1"), pat("d0 * d0")];
        for text in ["d0 d1 d1 d0", "d0 d2 d0", "d1 d1 d1"] {
            assert_batch_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn scratch_reuse_across_sequences_is_clean() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1"), pat("d1 d0"), pat("d2 d3 d1")];
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.scratch();
        let mut out = vec![0.0; 3];
        // A high-match sequence first: its bests/floors must not leak into
        // the evaluation of the later, low-match sequence.
        trie.batch_sequence_match(&seq("d0 d1 d0"), &matrix, &mut scratch, &mut out);
        let s2 = seq("d4 d4");
        trie.batch_sequence_match(&s2, &matrix, &mut scratch, &mut out);
        for (p, &got) in patterns.iter().zip(&out) {
            assert_eq!(got, sequence_match(p, &s2, &matrix), "{p}");
        }
        assert!(scratch.nodes_visited > 0);
    }

    #[test]
    fn pruning_fires_on_repetitive_sequences() {
        // A long repetitive sequence: after the first window establishes a
        // best, later windows with equal products are cut at the floor.
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d1 d1"), pat("d1 d1 d1")];
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.scratch();
        let mut out = vec![0.0; 2];
        let s: Vec<Symbol> = std::iter::repeat_n(Symbol(1), 64).collect();
        trie.batch_sequence_match(&s, &matrix, &mut scratch, &mut out);
        assert!(scratch.prunes > 0, "floor pruning never fired");
        for (p, &got) in patterns.iter().zip(&out) {
            assert_eq!(got, sequence_match(p, &s, &matrix), "{p}");
        }
    }

    #[test]
    fn kernel_parse_round_trips() {
        assert_eq!(MatchKernel::parse("trie"), Some(MatchKernel::Trie));
        assert_eq!(MatchKernel::parse("naive"), Some(MatchKernel::Naive));
        assert_eq!(MatchKernel::parse("simd"), Some(MatchKernel::Simd));
        assert_eq!(MatchKernel::parse("fast"), None);
        assert_eq!(MatchKernel::default().name(), "trie");
        assert_eq!(MatchKernel::Naive.name(), "naive");
        assert_eq!(MatchKernel::Simd.name(), "simd");
    }

    #[test]
    fn columnar_metadata_is_computed() {
        let patterns = vec![pat("d0 d1"), pat("d0 * d2"), pat("d1 d0 d3 d4")];
        let trie = CandidateTrie::new(&patterns);
        // Distinct concrete symbols: d0, d1, d2, d3, d4 (the `*` has none).
        assert_eq!(trie.stripe_syms.len(), 5);
        assert_eq!(trie.min_len, 2);
        assert_eq!(trie.max_depth, 3);
        let any_nodes = trie.pre.iter().filter(|pn| pn.stripe == NO_STRIPE).count();
        assert_eq!(any_nodes, 1);
    }

    #[test]
    fn duplicate_patterns_each_get_a_result() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1"), pat("d2"), pat("d0 d1"), pat("d0 d1")];
        let trie = CandidateTrie::new(&patterns);
        // The three copies of `d0 d1` share one terminal node.
        assert_eq!(trie.num_nodes(), 3);
        for text in ["d0 d1 d2", "d3 d4", "d0"] {
            assert_batch_matches_naive(&patterns, &seq(text), &matrix);
        }
    }
}
