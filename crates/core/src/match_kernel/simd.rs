//! Columnar SIMD evaluation of a [`CandidateTrie`] batch: 8 windows per
//! step, compatibility columns gathered into per-symbol stripes.
//!
//! # Layout
//!
//! The trie kernel walks one window at a time; its inner loop is a chain of
//! scalar f64 multiplies with a data-dependent branch per node. This module
//! transposes the work: for each distinct concrete symbol `t` in the batch,
//! a *stripe* `stripe_t[pos] = C(t, S[pos])` is gathered once per sequence
//! (lazily — a stripe is built only when a surviving trie path first
//! touches it), zero-padded past the sequence end. The window loop then
//! advances **eight windows at once**: the same depth-first trie walk, but
//! each node multiplies a vector of eight running products by eight
//! contiguous stripe entries instead of one. On x86-64 with AVX2 the eight
//! lanes are two `__m256d` registers; everywhere else (and under
//! [`FORCE_SCALAR_ENV`] or Miri) a portable scalar loop performs the
//! identical arithmetic.
//!
//! # Value contract: [`SIMD_MAX_ULP`]
//!
//! Per window, products are multiplied in the same left-to-right order as
//! [`sequence_match`](crate::matching::sequence_match), and the max over
//! windows is order-independent for the non-negative finite values the
//! match metric produces — so the kernel does not merely approximate the
//! trie kernel, it reproduces it: the documented tolerance
//! [`SIMD_MAX_ULP`] is **zero** and the property suite
//! (`tests/property_simd.rs`) asserts exact bit-identity of both the AVX2
//! and the scalar path against the trie oracle. The constant exists as the
//! public contract so that a future layout that *does* reorder multiplies
//! (e.g. log-domain accumulation) has a named bound to widen, with callers
//! already coded against it.
//!
//! # Pruning
//!
//! The trie's exact best-window floor (Claim 3.1 monotonicity lifted to
//! subtrees) carries over at *chunk* granularity: a subtree is cut when
//! **all eight** lane products are at or below the subtree floor — every
//! lane could only shrink further, so no descendant's best can improve.
//! Windows that run past the sequence end multiply by the stripe's zero
//! padding; windows too late for a given pattern length are masked out of
//! the terminal max (`n + 1 − len` valid windows), which also keeps
//! trailing-`*` patterns exact.
//!
//! # Observability
//!
//! With the [`noisemine_obs`] registry enabled the kernel reports, besides
//! the shared `core_kernel_*` counters: sequences evaluated per path
//! (`core_simd_sequences_total`, `core_simd_scalar_fallback_total`) and
//! lane occupancy (`core_simd_lane_slots_total`,
//! `core_simd_lanes_filled_total`, ratio in `core_simd_lane_occupancy`).
//! See `docs/OBSERVABILITY.md`.

use std::sync::OnceLock;

use super::{CandidateTrie, NO_PATTERN, NO_STRIPE};
use crate::alphabet::Symbol;
use crate::matrix::CompatibilityMatrix;

/// Windows advanced per vector step (two `__m256d` of f64 on AVX2).
pub const LANES: usize = 8;

/// Maximum ULP distance between a columnar-kernel result and the
/// bit-exact trie/naive result. Zero: the kernel preserves the per-window
/// multiplication order and max over windows is order-independent for
/// non-negative finite f64, so results are bit-identical (enforced by
/// `tests/property_simd.rs`). Kept as a named constant so any future
/// reordering layout widens a documented contract instead of silently
/// changing values.
pub const SIMD_MAX_ULP: u32 = 0;

/// Environment variable forcing the portable scalar path even on AVX2
/// hosts (any non-empty value other than `"0"`). Read once per process —
/// the CI forced-fallback lane sets it for a full test-suite run.
pub const FORCE_SCALAR_ENV: &str = "NOISEMINE_FORCE_SCALAR";

/// `true` when [`MatchKernel::Simd`](super::MatchKernel::Simd) will run the
/// AVX2 path in this process: the host supports AVX2+FMA, the build is not
/// under Miri, and [`FORCE_SCALAR_ENV`] is not set. Cached after the first
/// call.
pub fn simd_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced = std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0");
        !forced && avx2_available()
    })
}

#[cfg(all(not(miri), target_arch = "x86_64"))]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Miri has no SIMD intrinsics (and non-x86 hosts no AVX2): the scalar
/// path — plain safe Rust — is what those configurations execute, which is
/// exactly what makes the columnar layout Miri-checkable.
#[cfg(any(miri, not(target_arch = "x86_64")))]
fn avx2_available() -> bool {
    false
}

/// Per-thread state for the columnar kernel: best/floor (same invariants
/// as [`TrieScratch`](super::TrieScratch)), the lazily built compatibility
/// stripes, and the per-depth lane buffers of the current DFS path. Also
/// accumulates work counters so callers can inspect the kernel without the
/// metrics registry.
#[derive(Debug, Clone)]
pub struct SimdScratch {
    best: Vec<f64>,
    floor: Vec<f64>,
    /// Patterns whose best left zero this sequence; the reset zeroes only
    /// these instead of memsetting `best` (the memsets, not the walk,
    /// dominate per-sequence cost on sparse matrices).
    best_dirty: Vec<u32>,
    /// Nodes whose floor left zero this sequence (same reset strategy).
    floor_dirty: Vec<u32>,
    /// Terminal nodes whose pattern best improved during the current
    /// chunk. A floor raised mid-chunk cannot prune anything until the
    /// raised node is visited again — which is only ever the *next* chunk —
    /// so raises are deferred to the chunk boundary and applied in one
    /// batch (a bulk rebuild when the batch is large, e.g. the first chunk
    /// improving every pattern from zero).
    improved: Vec<u32>,
    /// `stripe_syms.len()` rows of `stride` entries each;
    /// `stripes[r * stride + pos] = C(stripe_syms[r], seq[pos])`, zero past
    /// the sequence end.
    stripes: Vec<f64>,
    stripe_built: Vec<bool>,
    stride: usize,
    /// `(max_depth + 2)` rows of [`LANES`] running products: row 0 is the
    /// constant 1.0 seed, row `d + 1` holds the products of the node at
    /// depth `d` on the current DFS path.
    bufs: Vec<f64>,
    /// Trie nodes expanded (one count per 8-window vector visit).
    pub nodes_visited: u64,
    /// Subtrees cut because every lane fell to the subtree floor.
    pub prunes: u64,
    /// Total window-lane slots across all chunks processed.
    pub lane_slots: u64,
    /// Slots that held a real window (the rest were tail padding).
    pub lanes_filled: u64,
    /// Sequences evaluated on the AVX2 path.
    pub simd_sequences: u64,
    /// Sequences evaluated on the portable scalar path.
    pub scalar_sequences: u64,
}

impl CandidateTrie {
    /// Allocates columnar-kernel scratch sized for this trie. Reuse it
    /// across sequences of a scan; sharing one trie across threads requires
    /// one scratch per thread.
    pub fn simd_scratch(&self) -> SimdScratch {
        SimdScratch {
            best: vec![0.0; self.patterns],
            floor: vec![0.0; self.nodes.len()],
            best_dirty: Vec::new(),
            floor_dirty: Vec::new(),
            improved: Vec::new(),
            stripes: Vec::new(),
            stripe_built: vec![false; self.stripe_syms.len()],
            stride: 0,
            bufs: vec![0.0; (self.max_depth as usize + 2) * LANES],
            nodes_visited: 0,
            prunes: 0,
            lane_slots: 0,
            lanes_filled: 0,
            simd_sequences: 0,
            scalar_sequences: 0,
        }
    }

    /// Columnar counterpart of
    /// [`batch_sequence_match`](Self::batch_sequence_match): computes
    /// `out[i] = sequence_match(patterns[i], sequence, matrix)` for the
    /// whole batch, eight windows per step. Dispatches to AVX2 when
    /// [`simd_active`], otherwise to the portable scalar walk; both produce
    /// results within [`SIMD_MAX_ULP`] (= 0, i.e. bit-identical) of the
    /// trie kernel.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.num_patterns()` in debug builds; a
    /// shorter `out` panics on indexing in all builds.
    pub fn batch_sequence_match_columnar(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.patterns);
        self.columnar_walk(sequence, matrix, scratch);
        out.copy_from_slice(&scratch.best);
        for &(dup, canon) in &self.dups {
            out[dup as usize] = out[canon as usize];
        }
    }

    /// Accumulating variant for database scans: `acc[i] += match(i)` for
    /// every pattern, returning whether any value was non-zero. Only
    /// patterns whose best left zero this sequence are touched — adding
    /// `+0.0` is a bitwise no-op on the non-negative partials these scans
    /// accumulate, so the skipped additions cannot change a single bit,
    /// while on sparse matrices they are the vast majority of the batch.
    pub fn batch_sequence_match_columnar_sum(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
        acc: &mut [f64],
    ) -> bool {
        debug_assert_eq!(acc.len(), self.patterns);
        self.columnar_walk(sequence, matrix, scratch);
        for &pi in &scratch.best_dirty {
            acc[pi as usize] += scratch.best[pi as usize];
        }
        for &(dup, canon) in &self.dups {
            acc[dup as usize] += scratch.best[canon as usize];
        }
        !scratch.best_dirty.is_empty()
    }

    /// The portable scalar columnar walk — the exact arithmetic of the
    /// AVX2 path in plain safe Rust. Public so the property suite and the
    /// Miri job can pin this path regardless of host features; production
    /// callers use [`Self::batch_sequence_match_columnar`], which prefers
    /// AVX2.
    pub fn batch_sequence_match_columnar_scalar(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.patterns);
        scratch.scalar_sequences += 1;
        self.columnar_scalar(sequence, matrix, scratch);
        self.columnar_flush_obs(scratch, false);
        out.copy_from_slice(&scratch.best);
        for &(dup, canon) in &self.dups {
            out[dup as usize] = out[canon as usize];
        }
    }

    /// Runs the columnar walk on the preferred path (AVX2 when
    /// [`simd_active`], scalar otherwise), leaving per-pattern bests in
    /// `scratch.best` and the touched patterns in `scratch.best_dirty`.
    fn columnar_walk(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
    ) {
        #[cfg(all(not(miri), target_arch = "x86_64"))]
        if simd_active() {
            scratch.simd_sequences += 1;
            // SAFETY: `simd_active()` verified AVX2+FMA at runtime.
            unsafe { self.columnar_avx2(sequence, matrix, scratch) };
            self.columnar_flush_obs(scratch, true);
            return;
        }
        scratch.scalar_sequences += 1;
        self.columnar_scalar(sequence, matrix, scratch);
        self.columnar_flush_obs(scratch, false);
    }

    /// Resets per-sequence state and returns the number of chunk-base
    /// windows, or `None` when nothing can match (empty batch handled by
    /// the caller).
    fn columnar_reset(&self, scratch: &mut SimdScratch, n: usize) -> Option<usize> {
        // Zero only what the previous sequence dirtied — full fills of
        // `best` and `floor` would cost more than the pruned walk itself.
        for pi in scratch.best_dirty.drain(..) {
            scratch.best[pi as usize] = 0.0;
        }
        for ni in scratch.floor_dirty.drain(..) {
            scratch.floor[ni as usize] = 0.0;
        }
        let min_len = self.min_len as usize;
        if min_len == 0 || n < min_len {
            return None;
        }
        // Stripe rows must cover every load `w0 + depth + lane`; the bound
        // below is `(nw - 1) + max_depth + LANES` rounded up. Rows are not
        // pre-zeroed: `build_stripe` writes every slot of a row it builds,
        // and unbuilt rows are never read.
        scratch.stride = n + self.max_depth as usize + LANES;
        scratch
            .stripes
            .resize(self.stripe_syms.len() * scratch.stride, 0.0);
        scratch.stripe_built.fill(false);
        scratch.bufs[..LANES].fill(1.0);
        Some(n + 1 - min_len)
    }

    /// Gathers the compatibility stripe for row `sr` of `scratch.stripes`.
    fn build_stripe(
        &self,
        sr: usize,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
    ) {
        let sym = Symbol(self.stripe_syms[sr]);
        let row = &mut scratch.stripes[sr * scratch.stride..(sr + 1) * scratch.stride];
        let (body, tail) = row.split_at_mut(sequence.len());
        for (slot, &obs) in body.iter_mut().zip(sequence) {
            *slot = matrix.get(sym, obs);
        }
        // Zero padding past the sequence end: off-end window positions
        // multiply to 0, matching the trie walk's skip. Written here (not
        // pre-zeroed in reset) so reuse never re-zeroes untouched rows.
        tail.fill(0.0);
        scratch.stripe_built[sr] = true;
    }

    /// Applies the floor raises queued in `scratch.improved` at a chunk
    /// boundary. A handful of improvements walk ancestors individually;
    /// past [`Self::BULK_FLOOR_THRESHOLD`] one reverse-preorder sweep over
    /// the whole trie (children before parents) is cheaper — the first
    /// chunk of a sequence typically improves *every* pattern from zero,
    /// and per-terminal upward walks there cost more than the walk itself.
    fn apply_floor_raises(&self, scratch: &mut SimdScratch) {
        let SimdScratch {
            best,
            floor,
            floor_dirty,
            improved,
            ..
        } = scratch;
        if improved.len() < Self::BULK_FLOOR_THRESHOLD {
            for &ni in improved.iter() {
                self.raise_floors_in_tracked(ni, best, floor, floor_dirty);
            }
        } else {
            for pn in self.pre.iter().rev() {
                let ni = pn.node as usize;
                let n = &self.nodes[ni];
                let mut f = if pn.pattern == NO_PATTERN {
                    f64::INFINITY
                } else {
                    best[pn.pattern as usize]
                };
                for &c in &self.children[n.child_start as usize..n.child_end as usize] {
                    f = f.min(floor[c as usize]);
                }
                if f != floor[ni] {
                    if floor[ni] == 0.0 {
                        floor_dirty.push(ni as u32);
                    }
                    floor[ni] = f;
                }
            }
        }
        improved.clear();
    }

    /// Queued improvements at which a bulk floor rebuild beats individual
    /// ancestor walks (ancestor walks touch ~`len × branching` slots each;
    /// the rebuild touches every trie node once).
    const BULK_FLOOR_THRESHOLD: usize = 32;

    /// Per-sequence metrics flush (path counter + lane occupancy).
    fn columnar_flush_obs(&self, scratch: &mut SimdScratch, simd: bool) {
        if noisemine_obs::enabled() {
            if simd {
                crate::obs::simd_sequences().inc();
            } else {
                crate::obs::simd_scalar_fallback().inc();
            }
            if scratch.lane_slots > 0 {
                crate::obs::simd_lane_occupancy()
                    .set(scratch.lanes_filled as f64 / scratch.lane_slots as f64);
            }
        }
    }

    /// The scalar columnar walk over one sequence. Fills `scratch.best`;
    /// the caller copies it out and aliases duplicates.
    fn columnar_scalar(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
    ) {
        if self.patterns == 0 {
            return;
        }
        let n = sequence.len();
        let Some(nw) = self.columnar_reset(scratch, n) else {
            return;
        };
        let distinct = self.patterns - self.dups.len();
        let mut saturated = 0usize;
        let mut nodes_visited = 0u64;
        let mut prunes = 0u64;
        let mut lane_slots = 0u64;
        let mut lanes_filled = 0u64;

        'chunks: for w0 in (0..nw).step_by(LANES) {
            lane_slots += LANES as u64;
            lanes_filled += LANES.min(nw - w0) as u64;
            // Stackless DFS: `pre` is the trie in visit order, pruning a
            // subtree jumps straight past it.
            let mut i = 0usize;
            while i < self.pre.len() {
                let pn = self.pre[i];
                let d = pn.depth as usize;
                nodes_visited += 1;
                let sr = pn.stripe;
                if sr != NO_STRIPE && !scratch.stripe_built[sr as usize] {
                    self.build_stripe(sr as usize, sequence, matrix, scratch);
                }
                // Rows are disjoint: the parent's products live in row
                // `d` (+1 for the constant seed row), this node writes
                // row `d + 1`.
                let (up_rows, own_rows) = scratch.bufs.split_at_mut((d + 1) * LANES);
                let up = &up_rows[d * LANES..(d + 1) * LANES];
                let own = &mut own_rows[..LANES];
                if sr == NO_STRIPE {
                    // The eternal symbol: C(*, x) = 1, products unchanged
                    // (and, like the trie walk, no floor check here).
                    own.copy_from_slice(up);
                } else {
                    let base = sr as usize * scratch.stride + w0 + d;
                    let stripe = &scratch.stripes[base..base + LANES];
                    let fl = scratch.floor[pn.node as usize];
                    let mut alive = false;
                    for ((o, &u), &s) in own.iter_mut().zip(up).zip(stripe) {
                        let p = u * s;
                        *o = p;
                        alive |= p > fl;
                    }
                    if !alive {
                        // Every lane at or below the subtree floor: exact
                        // cut — each lane's product can only shrink.
                        prunes += 1;
                        i = pn.skip as usize;
                        continue;
                    }
                }
                if pn.pattern != NO_PATTERN {
                    let pi = pn.pattern as usize;
                    // Valid windows for a length-(d + 1) pattern: w < n - d.
                    let t = n.saturating_sub(d).saturating_sub(w0).min(LANES);
                    let mut m = scratch.best[pi];
                    for &p in &own[..t] {
                        if p > m {
                            m = p;
                        }
                    }
                    if m > scratch.best[pi] {
                        if scratch.best[pi] == 0.0 {
                            scratch.best_dirty.push(pi as u32);
                        }
                        if scratch.best[pi] < 1.0 && m >= 1.0 {
                            saturated += 1;
                        }
                        scratch.best[pi] = m;
                        scratch.improved.push(pn.node);
                    }
                }
                i += 1;
            }
            if !scratch.improved.is_empty() {
                self.apply_floor_raises(scratch);
            }
            if saturated == distinct {
                break 'chunks; // every candidate already has a perfect match
            }
        }

        scratch.nodes_visited += nodes_visited;
        scratch.prunes += prunes;
        scratch.lane_slots += lane_slots;
        scratch.lanes_filled += lanes_filled;
        if noisemine_obs::enabled() {
            crate::obs::kernel_nodes_visited().add(nodes_visited);
            crate::obs::kernel_prunes().add(prunes);
            crate::obs::simd_lane_slots().add(lane_slots);
            crate::obs::simd_lanes_filled().add(lanes_filled);
        }
    }

    /// The AVX2 walk — identical control flow and arithmetic to
    /// [`Self::columnar_scalar`], with the eight lanes held in two
    /// `__m256d`. The hot loop uses unchecked indexing: at ~tens of
    /// surviving nodes per sequence, slice bounds checks were the dominant
    /// per-node cost (the scalar twin keeps checked slices and the property
    /// suite pins the two paths bit-identical, so an index bug here cannot
    /// ship silently — ASan and the oracle suite both trip on it).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 (and FMA) support, e.g. via
    /// [`simd_active`]. In-bounds invariants of the unchecked accesses,
    /// all established by [`CandidateTrie::new`] and
    /// [`Self::columnar_reset`]:
    /// - `i < pre.len()` is the loop condition, and every `skip` target is
    ///   `<= pre.len()`; `pre[i].node` is a valid id into `floor`
    ///   (sized to `nodes.len()`);
    /// - `stripe != NO_STRIPE` indexes `stripe_syms`/`stripe_built`, sized
    ///   together;
    /// - rows `d` and `d + 1` of `bufs` exist because `depth <= max_depth`
    ///   and `bufs` holds `max_depth + 2` rows;
    /// - stripe loads at `sr * stride + w0 + d .. + LANES` fit because
    ///   `w0 <= n - min_len`, `d <= max_depth`, `min_len >= 1`, and
    ///   `stride = n + max_depth + LANES`.
    #[cfg(all(not(miri), target_arch = "x86_64"))]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn columnar_avx2(
        &self,
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
        scratch: &mut SimdScratch,
    ) {
        use std::arch::x86_64::*;

        if self.patterns == 0 {
            return;
        }
        let n = sequence.len();
        let Some(nw) = self.columnar_reset(scratch, n) else {
            return;
        };
        let distinct = self.patterns - self.dups.len();
        let mut saturated = 0usize;
        let mut nodes_visited = 0u64;
        let mut prunes = 0u64;
        let mut lane_slots = 0u64;
        let mut lanes_filled = 0u64;
        // Lane-index vectors for the terminal window mask: lane `l` is a
        // valid window iff `l < t`.
        let idx_lo = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
        let idx_hi = _mm256_set_pd(7.0, 6.0, 5.0, 4.0);

        'chunks: for w0 in (0..nw).step_by(LANES) {
            lane_slots += LANES as u64;
            lanes_filled += LANES.min(nw - w0) as u64;
            // Stackless DFS over the preorder array; prune = jump past the
            // subtree. The array is read near-sequentially, which is most
            // of the speedup over the pointer-chasing stack walk.
            let mut i = 0usize;
            while i < self.pre.len() {
                let pn = *self.pre.get_unchecked(i);
                let d = pn.depth as usize;
                nodes_visited += 1;
                let sr = pn.stripe;
                if sr != NO_STRIPE && !*scratch.stripe_built.get_unchecked(sr as usize) {
                    self.build_stripe(sr as usize, sequence, matrix, scratch);
                }
                // Pointers taken after `build_stripe` (which may touch
                // `scratch`), never across iterations; `stripes`/`bufs` are
                // not resized inside the walk.
                let bufs = scratch.bufs.as_mut_ptr();
                let up = bufs.add(d * LANES);
                let own = bufs.add((d + 1) * LANES);
                let (p_lo, p_hi);
                if sr == NO_STRIPE {
                    p_lo = _mm256_loadu_pd(up);
                    p_hi = _mm256_loadu_pd(up.add(4));
                    _mm256_storeu_pd(own, p_lo);
                    _mm256_storeu_pd(own.add(4), p_hi);
                } else {
                    let stripe = scratch
                        .stripes
                        .as_ptr()
                        .add(sr as usize * scratch.stride + w0 + d);
                    let u_lo = _mm256_loadu_pd(up);
                    let u_hi = _mm256_loadu_pd(up.add(4));
                    let s_lo = _mm256_loadu_pd(stripe);
                    let s_hi = _mm256_loadu_pd(stripe.add(4));
                    p_lo = _mm256_mul_pd(u_lo, s_lo);
                    p_hi = _mm256_mul_pd(u_hi, s_hi);
                    let fl = _mm256_set1_pd(*scratch.floor.get_unchecked(pn.node as usize));
                    let alive = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(p_lo, fl))
                        | _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(p_hi, fl));
                    if alive == 0 {
                        prunes += 1;
                        i = pn.skip as usize;
                        continue;
                    }
                    _mm256_storeu_pd(own, p_lo);
                    _mm256_storeu_pd(own.add(4), p_hi);
                }
                if pn.pattern != NO_PATTERN {
                    let pi = pn.pattern as usize;
                    let t = n.saturating_sub(d).saturating_sub(w0).min(LANES);
                    if t > 0 {
                        let mx = if t >= LANES {
                            // Full chunk (every lane a valid window) — the
                            // common case needs no tail masking.
                            _mm256_max_pd(p_lo, p_hi)
                        } else {
                            // Zero the invalid tail lanes (products are
                            // >= 0, so zeros never win the max).
                            let tv = _mm256_set1_pd(t as f64);
                            let m_lo = _mm256_and_pd(p_lo, _mm256_cmp_pd::<_CMP_LT_OQ>(idx_lo, tv));
                            let m_hi = _mm256_and_pd(p_hi, _mm256_cmp_pd::<_CMP_LT_OQ>(idx_hi, tv));
                            _mm256_max_pd(m_lo, m_hi)
                        };
                        let half =
                            _mm_max_pd(_mm256_castpd256_pd128(mx), _mm256_extractf128_pd::<1>(mx));
                        let m = _mm_cvtsd_f64(_mm_max_sd(half, _mm_unpackhi_pd(half, half)));
                        if m > scratch.best[pi] {
                            if scratch.best[pi] == 0.0 {
                                scratch.best_dirty.push(pi as u32);
                            }
                            if scratch.best[pi] < 1.0 && m >= 1.0 {
                                saturated += 1;
                            }
                            scratch.best[pi] = m;
                            scratch.improved.push(pn.node);
                        }
                    }
                }
                i += 1;
            }
            if !scratch.improved.is_empty() {
                self.apply_floor_raises(scratch);
            }
            if saturated == distinct {
                break 'chunks;
            }
        }

        scratch.nodes_visited += nodes_visited;
        scratch.prunes += prunes;
        scratch.lane_slots += lane_slots;
        scratch.lanes_filled += lanes_filled;
        if noisemine_obs::enabled() {
            crate::obs::kernel_nodes_visited().add(nodes_visited);
            crate::obs::kernel_prunes().add(prunes);
            crate::obs::simd_lane_slots().add(lane_slots);
            crate::obs::simd_lanes_filled().add(lanes_filled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matching::sequence_match;
    use crate::pattern::Pattern;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(5)).unwrap()
    }

    fn seq(text: &str) -> Vec<Symbol> {
        Alphabet::synthetic(5).encode(text).unwrap()
    }

    /// Both columnar paths (auto-dispatch and pinned-scalar) must be
    /// bit-identical to the naive oracle.
    fn assert_columnar_matches_naive(
        patterns: &[Pattern],
        sequence: &[Symbol],
        matrix: &CompatibilityMatrix,
    ) {
        let trie = CandidateTrie::new(patterns);
        let mut scratch = trie.simd_scratch();
        let mut auto_out = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match_columnar(sequence, matrix, &mut scratch, &mut auto_out);
        let mut scalar_out = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match_columnar_scalar(sequence, matrix, &mut scratch, &mut scalar_out);
        for (i, p) in patterns.iter().enumerate() {
            let want = sequence_match(p, sequence, matrix);
            assert!(
                auto_out[i] == want,
                "{p}: columnar {} != naive {want}",
                auto_out[i]
            );
            assert!(
                scalar_out[i].to_bits() == want.to_bits(),
                "{p}: scalar columnar {} != naive {want}",
                scalar_out[i]
            );
        }
    }

    #[test]
    fn agrees_with_naive_on_paper_database() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![
            pat("d0"),
            pat("d0 d1"),
            pat("d0 d1 d1"),
            pat("d0 * d1"),
            pat("d1 d0"),
            pat("d2 d0 d1"),
            pat("d4 d4"),
        ];
        for text in ["d0 d1 d1 d2 d3 d0", "d2 d0 d1", "d0 d0", "d1"] {
            assert_columnar_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn long_sequences_cross_chunk_boundaries() {
        // > LANES windows: the chunk loop runs several full + one partial
        // vector, exercising the tail masking.
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1"), pat("d1 * d1"), pat("d2 d3 d0 d1")];
        let s: Vec<Symbol> = (0..37u16).map(|i| Symbol((i * 3 + 1) % 5)).collect();
        assert_columnar_matches_naive(&patterns, &s, &matrix);
    }

    #[test]
    fn interior_wildcards_and_short_windows_are_exact() {
        // Patterns may not start/end with `*` (type invariant), so the
        // deepest element of every terminal path is concrete and off-end
        // windows die on the stripe's zero padding; interior `*`s copy the
        // parent lane row untouched. Both interplay with the terminal
        // window mask here.
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 * d1"), pat("d0 * * d2"), pat("d1 d0")];
        for text in ["d0 d1", "d0 d1 d2", "d1 d0", "d0", "d0 d3 d1 d3 d2"] {
            assert_columnar_matches_naive(&patterns, &seq(text), &matrix);
        }
    }

    #[test]
    fn pattern_longer_than_sequence_yields_zero() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1 d2 d3"), pat("d0")];
        assert_columnar_matches_naive(&patterns, &seq("d0 d1"), &matrix);
    }

    #[test]
    fn empty_sequence_and_empty_trie() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0"), pat("d1 d2")];
        let trie = CandidateTrie::new(&patterns);
        let mut out = vec![1.0; 2];
        trie.batch_sequence_match_columnar(&[], &matrix, &mut trie.simd_scratch(), &mut out);
        assert_eq!(out, vec![0.0, 0.0]);

        let empty = CandidateTrie::new(&[]);
        let mut none: Vec<f64> = Vec::new();
        empty.batch_sequence_match_columnar(
            &seq("d0 d1"),
            &matrix,
            &mut empty.simd_scratch(),
            &mut none,
        );
    }

    #[test]
    fn duplicates_alias_and_scratch_reuse_is_clean() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d0 d1"), pat("d2"), pat("d0 d1")];
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.simd_scratch();
        let mut out = vec![0.0; 3];
        // High-match sequence first: bests/floors/stripes must not leak.
        trie.batch_sequence_match_columnar(&seq("d0 d1 d0"), &matrix, &mut scratch, &mut out);
        let s2 = seq("d4 d4");
        trie.batch_sequence_match_columnar(&s2, &matrix, &mut scratch, &mut out);
        for (p, &got) in patterns.iter().zip(&out) {
            assert_eq!(got, sequence_match(p, &s2, &matrix), "{p}");
        }
        assert_eq!(out[0], out[2], "duplicate must alias its canonical");
        assert!(scratch.nodes_visited > 0);
        assert!(scratch.lane_slots >= scratch.lanes_filled);
    }

    #[test]
    fn chunk_pruning_fires_on_repetitive_sequences() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let patterns = vec![pat("d1 d1"), pat("d1 d1 d1")];
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.simd_scratch();
        let mut out = vec![0.0; 2];
        let s: Vec<Symbol> = std::iter::repeat_n(Symbol(1), 64).collect();
        trie.batch_sequence_match_columnar(&s, &matrix, &mut scratch, &mut out);
        for (p, &got) in patterns.iter().zip(&out) {
            assert_eq!(got, sequence_match(p, &s, &matrix), "{p}");
        }
    }

    #[test]
    fn scalar_and_auto_paths_count_their_sequences() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let trie = CandidateTrie::new(&[pat("d0 d1")]);
        let mut scratch = trie.simd_scratch();
        let mut out = vec![0.0; 1];
        let s = seq("d0 d1 d2");
        trie.batch_sequence_match_columnar(&s, &matrix, &mut scratch, &mut out);
        trie.batch_sequence_match_columnar_scalar(&s, &matrix, &mut scratch, &mut out);
        assert_eq!(scratch.simd_sequences + scratch.scalar_sequences, 2);
        assert!(scratch.scalar_sequences >= 1);
        if simd_active() {
            assert_eq!(scratch.simd_sequences, 1);
        }
    }
}
