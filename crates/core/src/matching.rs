//! Match computation (Definitions 3.5–3.7 and Algorithms 4.1 / 4.2).
//!
//! - the match of a pattern in a *segment* is the product of per-position
//!   compatibilities, `M(P, s) = ∏ C(pᵢ, sᵢ)`, with `C(*, x) = 1`;
//! - the match in a *sequence* is the maximum over all sliding windows;
//! - the match in a *database* is the mean over its sequences.
//!
//! The module also implements the per-symbol match scan of Algorithm 4.1 in
//! both the straightforward `O(N·l̄·m)` form and the first-occurrence
//! optimized `O(N·(l̄ + m²))` form (§4.1), and the exact-occurrence
//! *support* metric used by the paper as the baseline model.
//!
//! # Observability
//!
//! Scans issued here route through [`crate::parallel::scan_map_reduce`],
//! which (when the [`noisemine_obs`] registry is enabled) counts every
//! streamed sequence in `core_scan_sequences_total` and every dispatched
//! block in `parallel_scan_blocks_total` — covering both the phase-1 scan
//! and the phase-3 probe scans of [`db_match_many_threads`]. See
//! `docs/OBSERVABILITY.md` for the full metric reference.

use crate::alphabet::Symbol;
use crate::error::ScanError;
use crate::index::SkipPlan;
use crate::match_kernel::simd::SimdScratch;
use crate::match_kernel::{CandidateTrie, MatchKernel, TrieScratch};
use crate::matrix::CompatibilityMatrix;
use crate::pattern::{Pattern, PatternElem};

/// A batch of sequences in flat storage, the unit of work of the block
/// scan API ([`SequenceScan::scan_blocks`]).
///
/// All symbols live in one contiguous buffer with per-sequence end offsets,
/// so a block can be recycled across scan iterations: once its vectors have
/// grown to a block's worth of data, refilling it allocates nothing. Blocks
/// are passed **by value** through the scan pipeline precisely so producers
/// and consumers can hand buffers back and forth instead of copying
/// sequences out.
#[derive(Debug, Clone, Default)]
pub struct SequenceBlock {
    ids: Vec<u64>,
    ends: Vec<usize>,
    symbols: Vec<Symbol>,
}

impl SequenceBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sequence to the block.
    pub fn push(&mut self, id: u64, seq: &[Symbol]) {
        self.ids.push(id);
        self.symbols.extend_from_slice(seq);
        self.ends.push(self.symbols.len());
    }

    /// Number of sequences currently in the block.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the block holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Empties the block, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.ends.clear();
        self.symbols.clear();
    }

    /// The `i`-th sequence as `(id, symbols)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> (u64, &[Symbol]) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (self.ids[i], &self.symbols[start..self.ends[i]])
    }

    /// Iterates the sequences in insertion (scan) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[Symbol])> {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// A source of sequences that can be scanned front to back.
///
/// This is the minimal contract the mining algorithms need; the
/// `noisemine-seqdb` crate provides in-memory and disk-resident
/// implementations with scan accounting. A "scan" in the paper's
/// cost model corresponds to exactly one call of [`SequenceScan::scan`]
/// (or, equivalently, one call of [`SequenceScan::scan_blocks`]).
pub trait SequenceScan {
    /// Number of sequences `N` in the database.
    ///
    /// This is a *report*, not a promise: a store that is being appended to
    /// concurrently may yield more sequences during a scan than it reported
    /// here. Consumers that average over a scan must count the sequences
    /// actually visited rather than trust this number.
    fn num_sequences(&self) -> usize;

    /// Visits every sequence in order, calling `visit(id, symbols)` once per
    /// sequence. Implementations that track I/O cost count one database scan
    /// per call.
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol]));

    /// Visits every sequence in order, batched into [`SequenceBlock`]s of up
    /// to `block_size` sequences (only the final block may be smaller).
    ///
    /// `sink` consumes each filled block and returns a block for the
    /// implementation to reuse (its contents are cleared before refilling).
    /// That ownership round-trip is what lets the caller ship blocks to
    /// worker threads and lets pipelined implementations recycle buffers —
    /// one physical scan can feed N compute workers without copying
    /// sequences one by one.
    ///
    /// The visit order is exactly that of [`SequenceScan::scan`], and one
    /// call counts as one database scan. The default implementation batches
    /// on top of `scan`; `noisemine-seqdb`'s stores override it with a
    /// read-ahead double-buffered producer thread.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        assert!(block_size >= 1, "block_size must be at least 1");
        let mut block = SequenceBlock::new();
        self.scan(&mut |id, seq| {
            block.push(id, seq);
            if block.len() >= block_size {
                block = sink(std::mem::take(&mut block));
                block.clear();
            }
        });
        if !block.is_empty() {
            sink(block);
        }
    }

    /// Fallible variant of [`SequenceScan::scan`]: visits every sequence in
    /// order and returns `Err` if the underlying store fails partway through
    /// (I/O error, corrupt record, truncation) instead of panicking.
    ///
    /// The default implementation delegates to the infallible [`scan`]
    /// (in-memory stores cannot fail) and returns `Ok(())`. Stores with a
    /// real failure mode — disk-resident databases, network-backed stores —
    /// should override this and implement `scan` on top of it.
    ///
    /// Sequences visited before the failure have already been handed to
    /// `visit`; callers that aggregate must discard partial state on `Err`.
    ///
    /// [`scan`]: SequenceScan::scan
    fn try_scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        self.scan(visit);
        Ok(())
    }

    /// Fallible variant of [`SequenceScan::scan_blocks`], with the same
    /// block-recycling contract. The default implementation batches on top
    /// of [`SequenceScan::try_scan`], so a store that overrides only
    /// `try_scan` gets fallible block scans for free.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    fn try_scan_blocks(
        &self,
        block_size: usize,
        sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock,
    ) -> Result<(), ScanError> {
        assert!(block_size >= 1, "block_size must be at least 1");
        let mut block = SequenceBlock::new();
        self.try_scan(&mut |id, seq| {
            block.push(id, seq);
            if block.len() >= block_size {
                block = sink(std::mem::take(&mut block));
                block.clear();
            }
        })?;
        if !block.is_empty() {
            sink(block);
        }
        Ok(())
    }
}

impl<T: SequenceScan + ?Sized> SequenceScan for &T {
    fn num_sequences(&self) -> usize {
        (**self).num_sequences()
    }
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        (**self).scan(visit)
    }
    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        (**self).scan_blocks(block_size, sink)
    }
    fn try_scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        (**self).try_scan(visit)
    }
    fn try_scan_blocks(
        &self,
        block_size: usize,
        sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock,
    ) -> Result<(), ScanError> {
        (**self).try_scan_blocks(block_size, sink)
    }
}

/// A plain in-memory sequence collection. The `noisemine-seqdb` crate offers
/// a richer store (ids, disk residency, scan counters); this type exists so
/// the core crate is usable and testable on its own.
#[derive(Debug, Clone, Default)]
pub struct MemorySequences(pub Vec<Vec<Symbol>>);

impl SequenceScan for MemorySequences {
    fn num_sequences(&self) -> usize {
        self.0.len()
    }
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        for (i, s) in self.0.iter().enumerate() {
            visit(i as u64, s);
        }
    }
}

/// Match of a pattern in a segment of equal length (Definition 3.5):
/// `M(P, s) = ∏ᵢ C(pᵢ, sᵢ)`, with early abort on a zero factor.
///
/// Returns 0 when the segment is shorter than the pattern.
#[inline]
pub fn segment_match(pattern: &Pattern, segment: &[Symbol], matrix: &CompatibilityMatrix) -> f64 {
    if segment.len() < pattern.len() {
        return 0.0;
    }
    let mut product = 1.0;
    for (elem, &obs) in pattern.elems().iter().zip(segment) {
        match elem {
            PatternElem::Any => {}
            PatternElem::Sym(s) => {
                product *= matrix.get(*s, obs);
                if product == 0.0 {
                    return 0.0;
                }
            }
        }
    }
    product
}

/// Match of a pattern in a sequence (Definition 3.6): the maximum of
/// [`segment_match`] over all `|S| − l + 1` sliding windows (Algorithm 4.2).
///
/// Each window's product is abandoned as soon as it falls to (or below) the
/// best window seen so far — factors never exceed 1, so the product can only
/// shrink. On dense matrices (where the zero-abort of [`segment_match`]
/// never fires) this prunes most windows after a couple of positions.
pub fn sequence_match(pattern: &Pattern, sequence: &[Symbol], matrix: &CompatibilityMatrix) -> f64 {
    let l = pattern.len();
    if sequence.len() < l {
        return 0.0;
    }
    let mut best = 0.0f64;
    for window in sequence.windows(l) {
        let m = segment_match_pruned(pattern, window, matrix, best);
        if m > best {
            best = m;
            if best >= 1.0 {
                break; // cannot improve on a perfect match
            }
        }
    }
    best
}

/// [`segment_match`] that abandons the product once it is `<= floor` (the
/// caller's best-so-far). Returns 0 for abandoned windows, which is safe
/// because the caller only takes the maximum.
#[inline]
fn segment_match_pruned(
    pattern: &Pattern,
    segment: &[Symbol],
    matrix: &CompatibilityMatrix,
    floor: f64,
) -> f64 {
    let mut product = 1.0;
    for (elem, &obs) in pattern.elems().iter().zip(segment) {
        if let PatternElem::Sym(s) = elem {
            product *= matrix.get(*s, obs);
            if product <= floor {
                return 0.0;
            }
        }
    }
    product
}

/// Match of a pattern in a database (Definition 3.7): the average of
/// [`sequence_match`] over every sequence. Performs exactly one scan.
///
/// The average is taken over the sequences the scan *actually* visited, not
/// over the reported [`SequenceScan::num_sequences`] — the two can disagree
/// on a store that is appended to mid-scan, and dividing by a stale report
/// would push the result outside `[0, 1]`.
pub fn db_match<S: SequenceScan + ?Sized>(
    pattern: &Pattern,
    db: &S,
    matrix: &CompatibilityMatrix,
) -> f64 {
    match try_db_match(pattern, db, matrix) {
        Ok(v) => v,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`db_match`]: surfaces scan failures from the store
/// instead of panicking.
pub fn try_db_match<S: SequenceScan + ?Sized>(
    pattern: &Pattern,
    db: &S,
    matrix: &CompatibilityMatrix,
) -> Result<f64, ScanError> {
    let mut total = 0.0;
    let mut visited = 0usize;
    db.try_scan(&mut |_, seq| {
        total += sequence_match(pattern, seq, matrix);
        visited += 1;
    })?;
    Ok(if visited == 0 {
        0.0
    } else {
        total / visited as f64
    })
}

/// Computes the match of many patterns in one scan of the database — the
/// building block of phase 3, where a memory-budgeted set of counters is
/// evaluated per scan (§4.3). Returns values aligned with `patterns`.
/// Equivalent to [`db_match_many_threads`] with `threads = 0` (all cores).
pub fn db_match_many<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
) -> Vec<f64> {
    db_match_many_threads(patterns, db, matrix, 0)
}

/// Fallible variant of [`db_match_many`]: surfaces scan failures from the
/// store instead of panicking.
pub fn try_db_match_many<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
) -> Result<Vec<f64>, ScanError> {
    try_db_match_many_threads(patterns, db, matrix, 0)
}

/// [`db_match_many`] with an explicit worker-thread count (`0` = all
/// available cores).
///
/// The scan streams borrowed [`SequenceBlock`]s through the deterministic
/// block pipeline of [`crate::parallel::scan_map_reduce`] — no per-sequence
/// copies; a block moves to a worker and its buffer comes back for reuse.
/// Block boundaries are the constant [`crate::parallel::SCAN_BLOCK_SIZE`]
/// and per-block partial sums are reduced in block order, so results are
/// bit-identical for every thread count (the thread count is purely an
/// operational knob). The average divides by the number of sequences the
/// scan actually visited, which keeps values in `[0, 1]` even when the
/// store under-reports [`SequenceScan::num_sequences`].
pub fn db_match_many_threads<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
    threads: usize,
) -> Vec<f64> {
    match try_db_match_many_threads(patterns, db, matrix, threads) {
        Ok(v) => v,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`db_match_many_threads`]: surfaces scan failures
/// from the store instead of panicking. On `Err`, no partial results are
/// returned — the probe batch must be rerun after the fault is handled.
pub fn try_db_match_many_threads<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
    threads: usize,
) -> Result<Vec<f64>, ScanError> {
    try_db_match_many_kernel(patterns, db, matrix, threads, MatchKernel::default())
}

/// [`db_match_many_threads`] with an explicit [`MatchKernel`] choice. The
/// two kernels are bit-identical; the knob exists for the reference oracle
/// and ablation benchmarks.
pub fn db_match_many_kernel<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
    threads: usize,
    kernel: MatchKernel,
) -> Vec<f64> {
    match try_db_match_many_kernel(patterns, db, matrix, threads, kernel) {
        Ok(v) => v,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`db_match_many_kernel`] and the common
/// implementation of every `db_match_many*` entry point.
///
/// With [`MatchKernel::Trie`] the candidate batch is loaded into one
/// [`CandidateTrie`] (built once, shared read-only by all workers; each
/// worker carries its own [`TrieScratch`]), so each sequence window is
/// walked once for the whole batch instead of once per pattern. The
/// per-block accumulation order is identical to the naive path's, and each
/// per-(pattern, sequence) value is bit-identical to [`sequence_match`], so
/// the determinism contract of [`db_match_many_threads`] — bit-identical
/// results at every thread count — holds across both kernels too.
pub fn try_db_match_many_kernel<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
    threads: usize,
    kernel: MatchKernel,
) -> Result<Vec<f64>, ScanError> {
    try_db_match_many_kernel_indexed(patterns, db, matrix, threads, kernel, None)
}

/// [`try_db_match_many_kernel`] with an optional [`SkipPlan`] from a
/// positional symbol index (see [`crate::index`]).
///
/// With a plan, only sequences the plan marks as candidates are evaluated;
/// every skipped sequence's match against every pattern in the batch is
/// provably exactly `0.0`, so omitting its `+0.0` from the per-block
/// partial leaves the accumulated bits unchanged. Skipped sequences still
/// count toward the Definition 3.7 denominator — the visited count comes
/// from the scan pipeline's in-order `inspect` hook, which sees every
/// block regardless of the plan. Output is therefore bit-identical to the
/// unindexed path at every thread count (property-tested with the
/// unindexed path as oracle in `tests/property_index.rs`).
pub fn try_db_match_many_kernel_indexed<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
    threads: usize,
    kernel: MatchKernel,
    plan: Option<&SkipPlan>,
) -> Result<Vec<f64>, ScanError> {
    use crate::parallel::{
        resolve_threads, try_scan_map_reduce, PARALLEL_THRESHOLD, SCAN_BLOCK_SIZE,
    };

    let p = patterns.len();
    let mut totals = vec![0.0f64; p];
    if p == 0 {
        return Ok(totals);
    }
    // With `threads = 0` (auto), skip spawning when the reported work is too
    // small to pay for it; an explicit thread count is honored as given. The
    // thread count never changes the result, so a stale report here can only
    // cost performance, never correctness.
    let threads = if threads == 0 && p.saturating_mul(db.num_sequences()) < PARALLEL_THRESHOLD {
        1
    } else {
        resolve_threads(threads)
    };
    let mut visited = 0usize;
    let partials = match kernel {
        MatchKernel::Naive => try_scan_map_reduce(
            db,
            SCAN_BLOCK_SIZE,
            threads,
            &mut |block| visited += block.len(),
            &|| (),
            &|_scratch, block_idx, block| {
                let mut partial = vec![0.0f64; p];
                let mut stats = BlockSkipStats::default();
                for (i, (_, seq)) in block.iter().enumerate() {
                    if !stats.visit(plan, block_idx * SCAN_BLOCK_SIZE + i) {
                        continue;
                    }
                    let mut nonzero = false;
                    for (t, pattern) in partial.iter_mut().zip(patterns) {
                        let v = sequence_match(pattern, seq, matrix);
                        nonzero |= v != 0.0;
                        *t += v;
                    }
                    stats.contributed(nonzero);
                }
                stats.record();
                partial
            },
        )?,
        MatchKernel::Trie => {
            let trie = CandidateTrie::new(patterns);
            crate::obs::kernel_patterns_per_scan().set(p as f64);
            try_scan_map_reduce(
                db,
                SCAN_BLOCK_SIZE,
                threads,
                &mut |block| visited += block.len(),
                &|| (trie.scratch(), vec![0.0f64; p]),
                &|worker: &mut (TrieScratch, Vec<f64>), block_idx, block| {
                    let (scratch, out) = worker;
                    let mut partial = vec![0.0f64; p];
                    let mut stats = BlockSkipStats::default();
                    for (i, (_, seq)) in block.iter().enumerate() {
                        if !stats.visit(plan, block_idx * SCAN_BLOCK_SIZE + i) {
                            continue;
                        }
                        trie.batch_sequence_match(seq, matrix, scratch, out);
                        let mut nonzero = false;
                        for (t, &v) in partial.iter_mut().zip(out.iter()) {
                            nonzero |= v != 0.0;
                            *t += v;
                        }
                        stats.contributed(nonzero);
                    }
                    stats.record();
                    partial
                },
            )?
        }
        MatchKernel::Simd => {
            let trie = CandidateTrie::new(patterns);
            crate::obs::kernel_patterns_per_scan().set(p as f64);
            try_scan_map_reduce(
                db,
                SCAN_BLOCK_SIZE,
                threads,
                &mut |block| visited += block.len(),
                &|| trie.simd_scratch(),
                &|scratch: &mut SimdScratch, block_idx, block| {
                    let mut partial = vec![0.0f64; p];
                    let mut stats = BlockSkipStats::default();
                    for (i, (_, seq)) in block.iter().enumerate() {
                        if !stats.visit(plan, block_idx * SCAN_BLOCK_SIZE + i) {
                            continue;
                        }
                        // The sum variant accumulates only the patterns this
                        // sequence actually touched — bit-identical to the
                        // dense loop above because `x += 0.0` never changes
                        // the bits of a non-negative partial.
                        let nonzero = trie.batch_sequence_match_columnar_sum(
                            seq,
                            matrix,
                            scratch,
                            &mut partial,
                        );
                        stats.contributed(nonzero);
                    }
                    stats.record();
                    partial
                },
            )?
        }
    };
    for partial in &partials {
        for (t, &v) in totals.iter_mut().zip(partial) {
            *t += v;
        }
    }
    if visited > 0 {
        for t in &mut totals {
            *t /= visited as f64;
        }
    }
    Ok(totals)
}

/// Per-block skip accounting for the indexed scan path: candidates
/// visited, sequences skipped, and candidates whose every match turned out
/// to be zero anyway (index false positives). Counters are flushed once
/// per block to keep the per-sequence path free of atomics.
#[derive(Default)]
struct BlockSkipStats {
    indexed: bool,
    candidates: u64,
    skipped: u64,
    false_positives: u64,
}

impl BlockSkipStats {
    /// Consults the plan for `ordinal`; returns `true` when the sequence
    /// must be evaluated. Without a plan everything is visited and nothing
    /// is counted.
    #[inline]
    fn visit(&mut self, plan: Option<&SkipPlan>, ordinal: usize) -> bool {
        let Some(plan) = plan else { return true };
        self.indexed = true;
        if plan.is_candidate(ordinal) {
            self.candidates += 1;
            true
        } else {
            self.skipped += 1;
            false
        }
    }

    /// Notes whether the just-visited candidate contributed any non-zero
    /// match value.
    #[inline]
    fn contributed(&mut self, nonzero: bool) {
        if self.indexed && !nonzero {
            self.false_positives += 1;
        }
    }

    /// Flushes the block's counts into the index metrics.
    fn record(&self) {
        if self.indexed {
            crate::obs::index_candidates_visited().add(self.candidates);
            crate::obs::index_sequences_skipped().add(self.skipped);
            crate::obs::index_false_positives().add(self.false_positives);
        }
    }
}

/// Exact-occurrence support of a pattern in a sequence: 1 if some window
/// matches the pattern exactly (with `*` matching any symbol), else 0. This
/// is the traditional *support model* the paper compares against.
pub fn sequence_support(pattern: &Pattern, sequence: &[Symbol]) -> f64 {
    let l = pattern.len();
    if sequence.len() < l {
        return 0.0;
    }
    let hit = sequence.windows(l).any(|w| {
        pattern.elems().iter().zip(w).all(|(e, &obs)| match e {
            PatternElem::Any => true,
            PatternElem::Sym(s) => *s == obs,
        })
    });
    if hit {
        1.0
    } else {
        0.0
    }
}

/// Support of a pattern in a database: the fraction of sequences containing
/// an exact occurrence. Averaged over the sequences actually visited, like
/// [`db_match`].
pub fn db_support<S: SequenceScan + ?Sized>(pattern: &Pattern, db: &S) -> f64 {
    match try_db_support(pattern, db) {
        Ok(v) => v,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`db_support`]: surfaces scan failures from the
/// store instead of panicking.
pub fn try_db_support<S: SequenceScan + ?Sized>(
    pattern: &Pattern,
    db: &S,
) -> Result<f64, ScanError> {
    let mut total = 0.0;
    let mut visited = 0usize;
    db.try_scan(&mut |_, seq| {
        total += sequence_support(pattern, seq);
        visited += 1;
    })?;
    Ok(if visited == 0 {
        0.0
    } else {
        total / visited as f64
    })
}

/// A significance metric on `(pattern, sequence)` pairs, averaged over the
/// database by level-wise engines. The two models of the paper — *match*
/// and *support* — both implement this trait, which lets every miner run
/// under either model (the paper notes any support-model algorithm
/// generalizes to match).
pub trait PatternMetric {
    /// The metric value of `pattern` in one sequence, in `[0, 1]`.
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64;

    /// The per-symbol values in one sequence — used by Algorithm 4.1 to
    /// obtain the restricted spread. Default: evaluate each symbol as a
    /// 1-pattern.
    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.sequence_value(&Pattern::single(Symbol(i as u16)), sequence);
        }
    }

    /// Short human-readable name ("match" / "support").
    fn name(&self) -> &'static str;
}

/// The paper's match model, parameterized by a compatibility matrix.
#[derive(Debug, Clone)]
pub struct MatchMetric<'a> {
    /// The compatibility matrix defining symbol compatibilities.
    pub matrix: &'a CompatibilityMatrix,
}

impl PatternMetric for MatchMetric<'_> {
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64 {
        sequence_match(pattern, sequence, self.matrix)
    }

    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        out.fill(0.0);
        symbol_sequence_match_into(sequence, self.matrix, out);
    }

    fn name(&self) -> &'static str {
        "match"
    }
}

/// The traditional exact-occurrence support model.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupportMetric;

impl PatternMetric for SupportMetric {
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64 {
        sequence_support(pattern, sequence)
    }

    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        out.fill(0.0);
        for &s in sequence {
            if s.index() < m {
                out[s.index()] = 1.0;
            }
        }
    }

    fn name(&self) -> &'static str {
        "support"
    }
}

/// Fills `max_match[d] = max over positions x of C(d, x)` for one sequence —
/// the inner loop of Algorithm 4.1, using the first-occurrence optimization
/// of §4.1: only the first occurrence of each distinct observed symbol can
/// change any maximum, so work is `O(l̄ + (#distinct)·nnz_col)` rather than
/// `O(l̄ · m)`.
///
/// `out` must be zero-filled (or hold a lower bound) on entry and have
/// length `m`.
pub fn symbol_sequence_match_into(
    sequence: &[Symbol],
    matrix: &CompatibilityMatrix,
    out: &mut [f64],
) {
    let m = matrix.len();
    debug_assert_eq!(out.len(), m);
    // Seen flags, small enough to allocate per call for clarity; callers on
    // the hot path use `SymbolMatchScratch` to reuse the buffer.
    let mut seen = vec![false; m];
    for &obs in sequence {
        let j = obs.index();
        assert!(
            j < m,
            "sequence symbol d{} lies outside the {m}-symbol compatibility matrix \
             (alphabet/matrix mismatch)",
            obs.0
        );
        if seen[j] {
            continue;
        }
        seen[j] = true;
        for &(true_sym, v) in matrix.column(obs) {
            let slot = &mut out[true_sym.index()];
            if v > *slot {
                *slot = v;
            }
        }
    }
}

/// The unoptimized variant of [`symbol_sequence_match_into`], processing
/// every position (`O(l̄·m)` worst case). Retained for the ablation
/// benchmark of §4.1's complexity claim; results are identical.
pub fn symbol_sequence_match_naive_into(
    sequence: &[Symbol],
    matrix: &CompatibilityMatrix,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), matrix.len());
    for &obs in sequence {
        for &(true_sym, v) in matrix.column(obs) {
            let slot = &mut out[true_sym.index()];
            if v > *slot {
                *slot = v;
            }
        }
    }
}

/// Reusable scratch buffers for the per-symbol match scan.
#[derive(Debug, Clone)]
pub struct SymbolMatchScratch {
    max_match: Vec<f64>,
    seen: Vec<bool>,
    touched: Vec<u16>,
}

impl SymbolMatchScratch {
    /// Creates scratch space for an `m`-symbol alphabet.
    pub fn new(m: usize) -> Self {
        Self {
            max_match: vec![0.0; m],
            seen: vec![false; m],
            touched: Vec::with_capacity(m.min(1024)),
        }
    }

    /// Computes `max_match` for one sequence, reusing buffers; returns the
    /// slice of per-symbol maxima.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the sequence contains a symbol
    /// id outside the matrix's alphabet — the mining entry points all pass
    /// through this scan first, so an alphabet/matrix mismatch is caught
    /// here, up front, instead of surfacing as a raw index error (dense
    /// storage) or silent zero matches (sparse storage) deep in phase 2.
    pub fn sequence(&mut self, sequence: &[Symbol], matrix: &CompatibilityMatrix) -> &[f64] {
        let m = matrix.len();
        // Reset only what the previous call touched.
        for &j in &self.touched {
            self.seen[j as usize] = false;
        }
        self.touched.clear();
        self.max_match.fill(0.0);
        for &obs in sequence {
            let j = obs.index();
            assert!(
                j < m,
                "sequence symbol d{} lies outside the {m}-symbol compatibility matrix \
                 (alphabet/matrix mismatch)",
                obs.0
            );
            if self.seen[j] {
                continue;
            }
            self.seen[j] = true;
            self.touched.push(obs.0);
            for &(true_sym, v) in matrix.column(obs) {
                let slot = &mut self.max_match[true_sym.index()];
                if v > *slot {
                    *slot = v;
                }
            }
        }
        &self.max_match
    }
}

/// Match of every individual symbol across the whole database — the output
/// of Algorithm 4.1 (sampling is layered on top by the miner). One scan,
/// averaged over the sequences actually visited, like [`db_match`].
pub fn symbol_db_match<S: SequenceScan + ?Sized>(db: &S, matrix: &CompatibilityMatrix) -> Vec<f64> {
    match try_symbol_db_match(db, matrix) {
        Ok(v) => v,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`symbol_db_match`]: surfaces scan failures from the
/// store instead of panicking.
pub fn try_symbol_db_match<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
) -> Result<Vec<f64>, ScanError> {
    let m = matrix.len();
    let mut match_acc = vec![0.0f64; m];
    let mut scratch = SymbolMatchScratch::new(m);
    let mut visited = 0usize;
    db.try_scan(&mut |_, seq| {
        let per_seq = scratch.sequence(seq, matrix);
        for (acc, &v) in match_acc.iter_mut().zip(per_seq) {
            *acc += v;
        }
        visited += 1;
    })?;
    if visited > 0 {
        for v in &mut match_acc {
            *v /= visited as f64;
        }
    }
    Ok(match_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn fig2() -> CompatibilityMatrix {
        CompatibilityMatrix::paper_figure2()
    }

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(6)).unwrap()
    }

    fn seq(text: &str) -> Vec<Symbol> {
        Alphabet::synthetic(6).encode(text).unwrap()
    }

    /// The paper's Figure 4(a) database, re-indexed to d0..d4.
    fn fig4_db() -> MemorySequences {
        MemorySequences(vec![
            seq("d0 d1 d2 d0"),
            seq("d3 d1 d0"),
            seq("d2 d3 d1 d0"),
            seq("d1 d1"),
        ])
    }

    /// Re-indexes the paper's 1-based symbol names (d1..d5) to 0-based.
    fn p(text: &str) -> Pattern {
        let shifted: String = text
            .split_whitespace()
            .map(|tok| {
                if tok == "*" {
                    "*".to_string()
                } else {
                    let n: u16 = tok[1..].parse().unwrap();
                    format!("d{}", n - 1)
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        pat(&shifted)
    }

    #[test]
    fn segment_match_paper_example() {
        // M(d1*d2, d1 d2 d2) = 0.9 * 1 * 0.8 = 0.72
        let m = segment_match(&p("d1 * d2"), &seq("d0 d1 d1"), &fig2());
        assert!((m - 0.72).abs() < 1e-12);
        // M(d1 d2 d5, d1 d2 d2) = 0 because C(d5, d2) = 0
        let z = segment_match(&p("d1 d2 d5"), &seq("d0 d1 d1"), &fig2());
        assert_eq!(z, 0.0);
    }

    #[test]
    fn sequence_match_paper_example() {
        // M(d1 d2, d1 d2 d2 d3 d4 d1) = max{0.72, 0.08, 0.005, 0, 0} = 0.72
        let m = sequence_match(&p("d1 d2"), &seq("d0 d1 d1 d2 d3 d0"), &fig2());
        assert!((m - 0.72).abs() < 1e-12);
    }

    #[test]
    fn sequence_shorter_than_pattern_is_zero() {
        assert_eq!(sequence_match(&p("d1 d2 d3"), &seq("d0 d1"), &fig2()), 0.0);
    }

    #[test]
    fn db_match_of_symbols_matches_figure4b() {
        // Figure 4(b)/5(b). The paper's own two tables disagree for d1 and
        // d3 (4(b) prints 0.538/0.4, but 5(b)'s running sums give per-
        // sequence contributions of 0.9 each for d1, i.e. 0.7, and the d3
        // column cannot increase on "d2 d2" since C(d3, d2) = 0). We lock
        // in the values implied by Definition 3.7 + Figure 2; d2/d4/d5 agree
        // with Figure 5(b) exactly.
        let db = fig4_db();
        let c = fig2();
        let vals = symbol_db_match(&db, &c);
        assert!((vals[0] - 0.7).abs() < 1e-9, "d1: {}", vals[0]);
        assert!((vals[1] - 0.8).abs() < 1e-9, "d2: {}", vals[1]);
        assert!((vals[2] - 0.3875).abs() < 1e-9, "d3: {}", vals[2]);
        assert!((vals[3] - 0.425).abs() < 1e-9, "d4: {}", vals[3]);
        assert!((vals[4] - 0.075).abs() < 1e-9, "d5: {}", vals[4]);
        // Cross-check against the generic path.
        for (i, &v) in vals.iter().enumerate() {
            let direct = db_match(&Pattern::single(Symbol(i as u16)), &db, &c);
            assert!((v - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn db_match_of_pairs_matches_figure4c() {
        let db = fig4_db();
        let c = fig2();
        let cases = [
            ("d1 d1", 0.070),
            ("d1 d2", 0.203),
            ("d2 d1", 0.391),
            // Figure 4(c) prints 0.200 for d2d2, but the per-sequence maxima
            // under Figure 2 are 0.04, 0.08, 0.08, 0.64 -> 0.21 (paper
            // erratum; segments "d4 d2" give C(d2,d4)*C(d2,d2) = 0.08).
            ("d2 d2", 0.210),
            ("d3 d4", 0.136),
            ("d4 d2", 0.321),
            ("d3 d5", 0.0),
            ("d5 d5", 0.0),
        ];
        for (text, expect) in cases {
            let got = db_match(&p(text), &db, &c);
            // The paper's table rounds to three decimals (e.g. 0.2025 is
            // printed as 0.203), so allow half an ulp of that rounding.
            assert!(
                (got - expect).abs() <= 5e-4 + 1e-12,
                "match of {text}: got {got}, paper says {expect}"
            );
        }
    }

    #[test]
    fn chain_of_patterns_matches_paper_narrative() {
        // §3: matches of d3, d3d2, d3d2d2, d3d2d2d1 are quoted as 0.4, 0.07,
        // 0.016, 0.00522 while their supports are 0.5, 0, 0, 0. The first
        // and last match values are paper errata: Definition 3.7 with
        // Figure 2 gives 0.3875 (the paper's own Figure 5(b) running sum
        // reaches 0.388) and 0.01305 (the per-sequence maxima sum to
        // 0.0522 = 0.0018 + 0.0504; the quoted 0.00522 is that sum with a
        // slipped decimal instead of the /4 average).
        let db = fig4_db();
        let c = fig2();
        let chain = [
            ("d3", 0.3875, 0.5),
            ("d3 d2", 0.07, 0.0),
            ("d3 d2 d2", 0.016, 0.0),
            ("d3 d2 d2 d1", 0.01305, 0.0),
        ];
        for (text, match_expect, support_expect) in chain {
            let pattern = p(text);
            let m = db_match(&pattern, &db, &c);
            let s = db_support(&pattern, &db);
            assert!(
                (m - match_expect).abs() < 5e-4,
                "match of {text}: got {m}, expected {match_expect}"
            );
            assert!((s - support_expect).abs() < 1e-12);
        }
    }

    #[test]
    fn figure4d_redistribution_sums_to_one() {
        // The match contributed by an observed segment "d2 d2" to all 2-patterns
        // over {d1..d5} (contiguous) sums to 1 (Figure 4(d)).
        let c = fig2();
        let obs = seq("d1 d1");
        let mut total = 0.0;
        for a in 0..5u16 {
            for b in 0..5u16 {
                let pattern = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
                total += segment_match(&pattern, &obs, &c);
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Spot values from Figure 4(d).
        assert!((segment_match(&p("d2 d2"), &obs, &c) - 0.64).abs() < 1e-12);
        assert!((segment_match(&p("d2 d1"), &obs, &c) - 0.08).abs() < 1e-12);
        assert!((segment_match(&p("d1 d4"), &obs, &c) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn identity_matrix_match_equals_support() {
        let id = CompatibilityMatrix::identity(6);
        let db = fig4_db();
        for text in ["d1 d2", "d2 d1", "d3 * d1", "d4 d2 d1", "d2 d2"] {
            let pattern = p(text);
            let m = db_match(&pattern, &db, &id);
            let s = db_support(&pattern, &db);
            assert!(
                (m - s).abs() < 1e-12,
                "identity-matrix match {m} != support {s} for {text}"
            );
        }
    }

    #[test]
    fn eternal_positions_do_not_reduce_match() {
        let c = fig2();
        let s = seq("d0 d3 d1");
        let gapped = p("d1 * d2");
        let tight = p("d1 d2");
        assert!(sequence_match(&gapped, &s, &c) >= sequence_match(&tight, &s, &c));
    }

    #[test]
    fn db_match_many_agrees_with_single() {
        let db = fig4_db();
        let c = fig2();
        let patterns = vec![p("d1 d2"), p("d2 d1"), p("d3 d4"), p("d5 d5")];
        let many = db_match_many(&patterns, &db, &c);
        for (pattern, &v) in patterns.iter().zip(&many) {
            assert!((v - db_match(pattern, &db, &c)).abs() < 1e-12);
        }
    }

    #[test]
    fn naive_and_optimized_symbol_match_agree() {
        let c = fig2();
        let s = seq("d0 d1 d2 d0 d4 d3 d3 d1");
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        symbol_sequence_match_into(&s, &c, &mut a);
        symbol_sequence_match_naive_into(&s, &c, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn figure5a_max_match_trace() {
        // After scanning "d1 d2 d3 d1" the per-symbol maxima are
        // 0.9, 0.8, 0.7, 0.1, 0.15 (Figure 5(a), final column).
        let c = fig2();
        let mut out = vec![0.0; 5];
        symbol_sequence_match_into(&seq("d0 d1 d2 d0"), &c, &mut out);
        let expect = [0.9, 0.8, 0.7, 0.1, 0.15];
        for (got, want) in out.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{out:?}");
        }
    }

    #[test]
    fn support_metric_symbol_values() {
        let sup = SupportMetric;
        let mut out = vec![0.0; 6];
        sup.symbol_values(&seq("d0 d2 d2"), 6, &mut out);
        assert_eq!(out, vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
    }

    /// A database that reports fewer sequences than its scan yields — the
    /// shape of a store that is appended to between `num_sequences()` and
    /// the scan (or during it).
    struct UnderReportingDb {
        inner: MemorySequences,
        reported: usize,
    }

    impl SequenceScan for UnderReportingDb {
        fn num_sequences(&self) -> usize {
            self.reported
        }
        fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
            self.inner.scan(visit)
        }
    }

    #[test]
    fn scan_blocks_default_impl_preserves_order_and_sizes() {
        let db = MemorySequences((0..10u16).map(|i| vec![Symbol(i % 6); 3]).collect());
        let mut ids = Vec::new();
        let mut sizes = Vec::new();
        db.scan_blocks(4, &mut |block| {
            sizes.push(block.len());
            for (id, seq) in block.iter() {
                ids.push(id);
                assert_eq!(seq.len(), 3);
                assert_eq!(seq[0], Symbol((id % 6) as u16));
            }
            block
        });
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(ids, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn scan_blocks_recycles_returned_blocks() {
        let db = MemorySequences((0..9u16).map(|i| vec![Symbol(i % 6)]).collect());
        let mut seen = 0usize;
        db.scan_blocks(2, &mut |block| {
            seen += block.len();
            // Hand back the same (uncleaned) block: the scan must clear it
            // before refilling, so no sequence is ever observed twice.
            block
        });
        assert_eq!(seen, 9);
    }

    #[test]
    fn averages_use_visited_count_not_reported_count() {
        let db = UnderReportingDb {
            inner: fig4_db(),
            reported: 2, // actual: 4
        };
        let c = fig2();
        let pattern = p("d2 d1");
        let truth = db_match(&pattern, &db.inner, &c);
        assert!((db_match(&pattern, &db, &c) - truth).abs() < 1e-15);
        assert!((db_support(&pattern, &db) - db_support(&pattern, &db.inner)).abs() < 1e-15);
        let many = db_match_many(std::slice::from_ref(&pattern), &db, &c);
        assert!((many[0] - truth).abs() < 1e-15);
        for (got, want) in symbol_db_match(&db, &c)
            .iter()
            .zip(symbol_db_match(&db.inner, &c))
        {
            assert!((got - want).abs() < 1e-15);
            assert!((0.0..=1.0).contains(got));
        }
    }

    #[test]
    fn empty_scan_yields_zero_not_nan() {
        let db = MemorySequences(Vec::new());
        let c = fig2();
        let pattern = p("d1 d2");
        assert_eq!(db_match(&pattern, &db, &c), 0.0);
        assert_eq!(db_support(&pattern, &db), 0.0);
        assert_eq!(db_match_many(&[pattern], &db, &c), vec![0.0]);
        assert!(symbol_db_match(&db, &c).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn db_match_many_threads_is_bit_identical_across_thread_counts() {
        let db = MemorySequences(
            (0..700u16)
                .map(|i| (0..12).map(|j| Symbol((i + j) % 5)).collect())
                .collect(),
        );
        let c = fig2();
        let patterns = vec![p("d1 d2"), p("d2 d1"), p("d3 d4"), p("d2 * d1")];
        let serial = db_match_many_threads(&patterns, &db, &c, 1);
        for threads in [2, 3, 8] {
            assert_eq!(
                serial,
                db_match_many_threads(&patterns, &db, &c, threads),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_correct_across_sequences() {
        let c = fig2();
        let mut scratch = SymbolMatchScratch::new(5);
        let s1 = seq("d0 d1");
        let s2 = seq("d4");
        let first = scratch.sequence(&s1, &c).to_vec();
        let mut expect1 = vec![0.0; 5];
        symbol_sequence_match_into(&s1, &c, &mut expect1);
        assert_eq!(first, expect1);
        let second = scratch.sequence(&s2, &c).to_vec();
        let mut expect2 = vec![0.0; 5];
        symbol_sequence_match_into(&s2, &c, &mut expect2);
        assert_eq!(second, expect2);
    }
}
