//! Match computation (Definitions 3.5–3.7 and Algorithms 4.1 / 4.2).
//!
//! - the match of a pattern in a *segment* is the product of per-position
//!   compatibilities, `M(P, s) = ∏ C(pᵢ, sᵢ)`, with `C(*, x) = 1`;
//! - the match in a *sequence* is the maximum over all sliding windows;
//! - the match in a *database* is the mean over its sequences.
//!
//! The module also implements the per-symbol match scan of Algorithm 4.1 in
//! both the straightforward `O(N·l̄·m)` form and the first-occurrence
//! optimized `O(N·(l̄ + m²))` form (§4.1), and the exact-occurrence
//! *support* metric used by the paper as the baseline model.

use crate::alphabet::Symbol;
use crate::matrix::CompatibilityMatrix;
use crate::pattern::{Pattern, PatternElem};

/// A source of sequences that can be scanned front to back.
///
/// This is the minimal contract the mining algorithms need; the
/// `noisemine-seqdb` crate provides in-memory and disk-resident
/// implementations with scan accounting. A "scan" in the paper's
/// cost model corresponds to exactly one call of [`SequenceScan::scan`].
pub trait SequenceScan {
    /// Number of sequences `N` in the database.
    fn num_sequences(&self) -> usize;

    /// Visits every sequence in order, calling `visit(id, symbols)` once per
    /// sequence. Implementations that track I/O cost count one database scan
    /// per call.
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol]));
}

impl<T: SequenceScan + ?Sized> SequenceScan for &T {
    fn num_sequences(&self) -> usize {
        (**self).num_sequences()
    }
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        (**self).scan(visit)
    }
}

/// A plain in-memory sequence collection. The `noisemine-seqdb` crate offers
/// a richer store (ids, disk residency, scan counters); this type exists so
/// the core crate is usable and testable on its own.
#[derive(Debug, Clone, Default)]
pub struct MemorySequences(pub Vec<Vec<Symbol>>);

impl SequenceScan for MemorySequences {
    fn num_sequences(&self) -> usize {
        self.0.len()
    }
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        for (i, s) in self.0.iter().enumerate() {
            visit(i as u64, s);
        }
    }
}

/// Match of a pattern in a segment of equal length (Definition 3.5):
/// `M(P, s) = ∏ᵢ C(pᵢ, sᵢ)`, with early abort on a zero factor.
///
/// Returns 0 when the segment is shorter than the pattern.
#[inline]
pub fn segment_match(pattern: &Pattern, segment: &[Symbol], matrix: &CompatibilityMatrix) -> f64 {
    if segment.len() < pattern.len() {
        return 0.0;
    }
    let mut product = 1.0;
    for (elem, &obs) in pattern.elems().iter().zip(segment) {
        match elem {
            PatternElem::Any => {}
            PatternElem::Sym(s) => {
                product *= matrix.get(*s, obs);
                if product == 0.0 {
                    return 0.0;
                }
            }
        }
    }
    product
}

/// Match of a pattern in a sequence (Definition 3.6): the maximum of
/// [`segment_match`] over all `|S| − l + 1` sliding windows (Algorithm 4.2).
///
/// Each window's product is abandoned as soon as it falls to (or below) the
/// best window seen so far — factors never exceed 1, so the product can only
/// shrink. On dense matrices (where the zero-abort of [`segment_match`]
/// never fires) this prunes most windows after a couple of positions.
pub fn sequence_match(pattern: &Pattern, sequence: &[Symbol], matrix: &CompatibilityMatrix) -> f64 {
    let l = pattern.len();
    if sequence.len() < l {
        return 0.0;
    }
    let mut best = 0.0f64;
    for window in sequence.windows(l) {
        let m = segment_match_pruned(pattern, window, matrix, best);
        if m > best {
            best = m;
            if best >= 1.0 {
                break; // cannot improve on a perfect match
            }
        }
    }
    best
}

/// [`segment_match`] that abandons the product once it is `<= floor` (the
/// caller's best-so-far). Returns 0 for abandoned windows, which is safe
/// because the caller only takes the maximum.
#[inline]
fn segment_match_pruned(
    pattern: &Pattern,
    segment: &[Symbol],
    matrix: &CompatibilityMatrix,
    floor: f64,
) -> f64 {
    let mut product = 1.0;
    for (elem, &obs) in pattern.elems().iter().zip(segment) {
        if let PatternElem::Sym(s) = elem {
            product *= matrix.get(*s, obs);
            if product <= floor {
                return 0.0;
            }
        }
    }
    product
}

/// Match of a pattern in a database (Definition 3.7): the average of
/// [`sequence_match`] over every sequence. Performs exactly one scan.
pub fn db_match<S: SequenceScan + ?Sized>(
    pattern: &Pattern,
    db: &S,
    matrix: &CompatibilityMatrix,
) -> f64 {
    let n = db.num_sequences();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    db.scan(&mut |_, seq| {
        total += sequence_match(pattern, seq, matrix);
    });
    total / n as f64
}

/// Computes the match of many patterns in one scan of the database — the
/// building block of phase 3, where a memory-budgeted set of counters is
/// evaluated per scan (§4.3). Returns values aligned with `patterns`.
///
/// Large counter batches are evaluated across all cores: the scan buffers
/// sequences in fixed-size batches and hands each batch to the
/// deterministic parallel kernel of [`crate::parallel`]; batch and chunk
/// boundaries are constants, so results are bit-identical on any machine
/// and core count. Small batches take the direct single-pass path (no
/// buffering copies).
pub fn db_match_many<S: SequenceScan + ?Sized>(
    patterns: &[Pattern],
    db: &S,
    matrix: &CompatibilityMatrix,
) -> Vec<f64> {
    let n = db.num_sequences();
    let mut totals = vec![0.0f64; patterns.len()];
    if n == 0 || patterns.is_empty() {
        return totals;
    }
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    if threads == 1 || patterns.len() < 16 {
        db.scan(&mut |_, seq| {
            for (t, p) in totals.iter_mut().zip(patterns) {
                *t += sequence_match(p, seq, matrix);
            }
        });
    } else {
        // Batch size is a constant (not a function of the core count) so
        // the floating-point accumulation grouping — and therefore the
        // exact result — is machine-independent.
        let batch_size = crate::parallel::CHUNK_SIZE * 64;
        let mut buffer: Vec<Vec<Symbol>> = Vec::with_capacity(batch_size);
        db.scan(&mut |_, seq| {
            buffer.push(seq.to_vec());
            if buffer.len() >= batch_size {
                let partial =
                    crate::parallel::sum_sequence_matches(patterns, &buffer, matrix, threads);
                for (t, v) in totals.iter_mut().zip(&partial) {
                    *t += v;
                }
                buffer.clear();
            }
        });
        if !buffer.is_empty() {
            let partial = crate::parallel::sum_sequence_matches(patterns, &buffer, matrix, threads);
            for (t, v) in totals.iter_mut().zip(&partial) {
                *t += v;
            }
        }
    }
    for t in &mut totals {
        *t /= n as f64;
    }
    totals
}

/// Exact-occurrence support of a pattern in a sequence: 1 if some window
/// matches the pattern exactly (with `*` matching any symbol), else 0. This
/// is the traditional *support model* the paper compares against.
pub fn sequence_support(pattern: &Pattern, sequence: &[Symbol]) -> f64 {
    let l = pattern.len();
    if sequence.len() < l {
        return 0.0;
    }
    let hit = sequence.windows(l).any(|w| {
        pattern.elems().iter().zip(w).all(|(e, &obs)| match e {
            PatternElem::Any => true,
            PatternElem::Sym(s) => *s == obs,
        })
    });
    if hit {
        1.0
    } else {
        0.0
    }
}

/// Support of a pattern in a database: the fraction of sequences containing
/// an exact occurrence.
pub fn db_support<S: SequenceScan + ?Sized>(pattern: &Pattern, db: &S) -> f64 {
    let n = db.num_sequences();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    db.scan(&mut |_, seq| total += sequence_support(pattern, seq));
    total / n as f64
}

/// A significance metric on `(pattern, sequence)` pairs, averaged over the
/// database by level-wise engines. The two models of the paper — *match*
/// and *support* — both implement this trait, which lets every miner run
/// under either model (the paper notes any support-model algorithm
/// generalizes to match).
pub trait PatternMetric {
    /// The metric value of `pattern` in one sequence, in `[0, 1]`.
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64;

    /// The per-symbol values in one sequence — used by Algorithm 4.1 to
    /// obtain the restricted spread. Default: evaluate each symbol as a
    /// 1-pattern.
    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.sequence_value(&Pattern::single(Symbol(i as u16)), sequence);
        }
    }

    /// Short human-readable name ("match" / "support").
    fn name(&self) -> &'static str;
}

/// The paper's match model, parameterized by a compatibility matrix.
#[derive(Debug, Clone)]
pub struct MatchMetric<'a> {
    /// The compatibility matrix defining symbol compatibilities.
    pub matrix: &'a CompatibilityMatrix,
}

impl PatternMetric for MatchMetric<'_> {
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64 {
        sequence_match(pattern, sequence, self.matrix)
    }

    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        out.fill(0.0);
        symbol_sequence_match_into(sequence, self.matrix, out);
    }

    fn name(&self) -> &'static str {
        "match"
    }
}

/// The traditional exact-occurrence support model.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupportMetric;

impl PatternMetric for SupportMetric {
    fn sequence_value(&self, pattern: &Pattern, sequence: &[Symbol]) -> f64 {
        sequence_support(pattern, sequence)
    }

    fn symbol_values(&self, sequence: &[Symbol], m: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), m);
        out.fill(0.0);
        for &s in sequence {
            if s.index() < m {
                out[s.index()] = 1.0;
            }
        }
    }

    fn name(&self) -> &'static str {
        "support"
    }
}

/// Fills `max_match[d] = max over positions x of C(d, x)` for one sequence —
/// the inner loop of Algorithm 4.1, using the first-occurrence optimization
/// of §4.1: only the first occurrence of each distinct observed symbol can
/// change any maximum, so work is `O(l̄ + (#distinct)·nnz_col)` rather than
/// `O(l̄ · m)`.
///
/// `out` must be zero-filled (or hold a lower bound) on entry and have
/// length `m`.
pub fn symbol_sequence_match_into(
    sequence: &[Symbol],
    matrix: &CompatibilityMatrix,
    out: &mut [f64],
) {
    let m = matrix.len();
    debug_assert_eq!(out.len(), m);
    // Seen flags, small enough to allocate per call for clarity; callers on
    // the hot path use `SymbolMatchScratch` to reuse the buffer.
    let mut seen = vec![false; m];
    for &obs in sequence {
        let j = obs.index();
        assert!(
            j < m,
            "sequence symbol d{} lies outside the {m}-symbol compatibility matrix \
             (alphabet/matrix mismatch)",
            obs.0
        );
        if seen[j] {
            continue;
        }
        seen[j] = true;
        for &(true_sym, v) in matrix.column(obs) {
            let slot = &mut out[true_sym.index()];
            if v > *slot {
                *slot = v;
            }
        }
    }
}

/// The unoptimized variant of [`symbol_sequence_match_into`], processing
/// every position (`O(l̄·m)` worst case). Retained for the ablation
/// benchmark of §4.1's complexity claim; results are identical.
pub fn symbol_sequence_match_naive_into(
    sequence: &[Symbol],
    matrix: &CompatibilityMatrix,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), matrix.len());
    for &obs in sequence {
        for &(true_sym, v) in matrix.column(obs) {
            let slot = &mut out[true_sym.index()];
            if v > *slot {
                *slot = v;
            }
        }
    }
}

/// Reusable scratch buffers for the per-symbol match scan.
#[derive(Debug, Clone)]
pub struct SymbolMatchScratch {
    max_match: Vec<f64>,
    seen: Vec<bool>,
    touched: Vec<u16>,
}

impl SymbolMatchScratch {
    /// Creates scratch space for an `m`-symbol alphabet.
    pub fn new(m: usize) -> Self {
        Self {
            max_match: vec![0.0; m],
            seen: vec![false; m],
            touched: Vec::with_capacity(m.min(1024)),
        }
    }

    /// Computes `max_match` for one sequence, reusing buffers; returns the
    /// slice of per-symbol maxima.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the sequence contains a symbol
    /// id outside the matrix's alphabet — the mining entry points all pass
    /// through this scan first, so an alphabet/matrix mismatch is caught
    /// here, up front, instead of surfacing as a raw index error (dense
    /// storage) or silent zero matches (sparse storage) deep in phase 2.
    pub fn sequence(&mut self, sequence: &[Symbol], matrix: &CompatibilityMatrix) -> &[f64] {
        let m = matrix.len();
        // Reset only what the previous call touched.
        for &j in &self.touched {
            self.seen[j as usize] = false;
        }
        self.touched.clear();
        self.max_match.fill(0.0);
        for &obs in sequence {
            let j = obs.index();
            assert!(
                j < m,
                "sequence symbol d{} lies outside the {m}-symbol compatibility matrix \
                 (alphabet/matrix mismatch)",
                obs.0
            );
            if self.seen[j] {
                continue;
            }
            self.seen[j] = true;
            self.touched.push(obs.0);
            for &(true_sym, v) in matrix.column(obs) {
                let slot = &mut self.max_match[true_sym.index()];
                if v > *slot {
                    *slot = v;
                }
            }
        }
        &self.max_match
    }
}

/// Match of every individual symbol across the whole database — the output
/// of Algorithm 4.1 (sampling is layered on top by the miner). One scan.
pub fn symbol_db_match<S: SequenceScan + ?Sized>(db: &S, matrix: &CompatibilityMatrix) -> Vec<f64> {
    let m = matrix.len();
    let n = db.num_sequences();
    let mut match_acc = vec![0.0f64; m];
    if n == 0 {
        return match_acc;
    }
    let mut scratch = SymbolMatchScratch::new(m);
    db.scan(&mut |_, seq| {
        let per_seq = scratch.sequence(seq, matrix);
        for (acc, &v) in match_acc.iter_mut().zip(per_seq) {
            *acc += v;
        }
    });
    for v in &mut match_acc {
        *v /= n as f64;
    }
    match_acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn fig2() -> CompatibilityMatrix {
        CompatibilityMatrix::paper_figure2()
    }

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::synthetic(6)).unwrap()
    }

    fn seq(text: &str) -> Vec<Symbol> {
        Alphabet::synthetic(6).encode(text).unwrap()
    }

    /// The paper's Figure 4(a) database, re-indexed to d0..d4.
    fn fig4_db() -> MemorySequences {
        MemorySequences(vec![
            seq("d0 d1 d2 d0"),
            seq("d3 d1 d0"),
            seq("d2 d3 d1 d0"),
            seq("d1 d1"),
        ])
    }

    /// Re-indexes the paper's 1-based symbol names (d1..d5) to 0-based.
    fn p(text: &str) -> Pattern {
        let shifted: String = text
            .split_whitespace()
            .map(|tok| {
                if tok == "*" {
                    "*".to_string()
                } else {
                    let n: u16 = tok[1..].parse().unwrap();
                    format!("d{}", n - 1)
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        pat(&shifted)
    }

    #[test]
    fn segment_match_paper_example() {
        // M(d1*d2, d1 d2 d2) = 0.9 * 1 * 0.8 = 0.72
        let m = segment_match(&p("d1 * d2"), &seq("d0 d1 d1"), &fig2());
        assert!((m - 0.72).abs() < 1e-12);
        // M(d1 d2 d5, d1 d2 d2) = 0 because C(d5, d2) = 0
        let z = segment_match(&p("d1 d2 d5"), &seq("d0 d1 d1"), &fig2());
        assert_eq!(z, 0.0);
    }

    #[test]
    fn sequence_match_paper_example() {
        // M(d1 d2, d1 d2 d2 d3 d4 d1) = max{0.72, 0.08, 0.005, 0, 0} = 0.72
        let m = sequence_match(&p("d1 d2"), &seq("d0 d1 d1 d2 d3 d0"), &fig2());
        assert!((m - 0.72).abs() < 1e-12);
    }

    #[test]
    fn sequence_shorter_than_pattern_is_zero() {
        assert_eq!(sequence_match(&p("d1 d2 d3"), &seq("d0 d1"), &fig2()), 0.0);
    }

    #[test]
    fn db_match_of_symbols_matches_figure4b() {
        // Figure 4(b)/5(b). The paper's own two tables disagree for d1 and
        // d3 (4(b) prints 0.538/0.4, but 5(b)'s running sums give per-
        // sequence contributions of 0.9 each for d1, i.e. 0.7, and the d3
        // column cannot increase on "d2 d2" since C(d3, d2) = 0). We lock
        // in the values implied by Definition 3.7 + Figure 2; d2/d4/d5 agree
        // with Figure 5(b) exactly.
        let db = fig4_db();
        let c = fig2();
        let vals = symbol_db_match(&db, &c);
        assert!((vals[0] - 0.7).abs() < 1e-9, "d1: {}", vals[0]);
        assert!((vals[1] - 0.8).abs() < 1e-9, "d2: {}", vals[1]);
        assert!((vals[2] - 0.3875).abs() < 1e-9, "d3: {}", vals[2]);
        assert!((vals[3] - 0.425).abs() < 1e-9, "d4: {}", vals[3]);
        assert!((vals[4] - 0.075).abs() < 1e-9, "d5: {}", vals[4]);
        // Cross-check against the generic path.
        for (i, &v) in vals.iter().enumerate() {
            let direct = db_match(&Pattern::single(Symbol(i as u16)), &db, &c);
            assert!((v - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn db_match_of_pairs_matches_figure4c() {
        let db = fig4_db();
        let c = fig2();
        let cases = [
            ("d1 d1", 0.070),
            ("d1 d2", 0.203),
            ("d2 d1", 0.391),
            // Figure 4(c) prints 0.200 for d2d2, but the per-sequence maxima
            // under Figure 2 are 0.04, 0.08, 0.08, 0.64 -> 0.21 (paper
            // erratum; segments "d4 d2" give C(d2,d4)*C(d2,d2) = 0.08).
            ("d2 d2", 0.210),
            ("d3 d4", 0.136),
            ("d4 d2", 0.321),
            ("d3 d5", 0.0),
            ("d5 d5", 0.0),
        ];
        for (text, expect) in cases {
            let got = db_match(&p(text), &db, &c);
            // The paper's table rounds to three decimals (e.g. 0.2025 is
            // printed as 0.203), so allow half an ulp of that rounding.
            assert!(
                (got - expect).abs() <= 5e-4 + 1e-12,
                "match of {text}: got {got}, paper says {expect}"
            );
        }
    }

    #[test]
    fn chain_of_patterns_matches_paper_narrative() {
        // §3: matches of d3, d3d2, d3d2d2, d3d2d2d1 are quoted as 0.4, 0.07,
        // 0.016, 0.00522 while their supports are 0.5, 0, 0, 0. The first
        // and last match values are paper errata: Definition 3.7 with
        // Figure 2 gives 0.3875 (the paper's own Figure 5(b) running sum
        // reaches 0.388) and 0.01305 (the per-sequence maxima sum to
        // 0.0522 = 0.0018 + 0.0504; the quoted 0.00522 is that sum with a
        // slipped decimal instead of the /4 average).
        let db = fig4_db();
        let c = fig2();
        let chain = [
            ("d3", 0.3875, 0.5),
            ("d3 d2", 0.07, 0.0),
            ("d3 d2 d2", 0.016, 0.0),
            ("d3 d2 d2 d1", 0.01305, 0.0),
        ];
        for (text, match_expect, support_expect) in chain {
            let pattern = p(text);
            let m = db_match(&pattern, &db, &c);
            let s = db_support(&pattern, &db);
            assert!(
                (m - match_expect).abs() < 5e-4,
                "match of {text}: got {m}, expected {match_expect}"
            );
            assert!((s - support_expect).abs() < 1e-12);
        }
    }

    #[test]
    fn figure4d_redistribution_sums_to_one() {
        // The match contributed by an observed segment "d2 d2" to all 2-patterns
        // over {d1..d5} (contiguous) sums to 1 (Figure 4(d)).
        let c = fig2();
        let obs = seq("d1 d1");
        let mut total = 0.0;
        for a in 0..5u16 {
            for b in 0..5u16 {
                let pattern = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
                total += segment_match(&pattern, &obs, &c);
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Spot values from Figure 4(d).
        assert!((segment_match(&p("d2 d2"), &obs, &c) - 0.64).abs() < 1e-12);
        assert!((segment_match(&p("d2 d1"), &obs, &c) - 0.08).abs() < 1e-12);
        assert!((segment_match(&p("d1 d4"), &obs, &c) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn identity_matrix_match_equals_support() {
        let id = CompatibilityMatrix::identity(6);
        let db = fig4_db();
        for text in ["d1 d2", "d2 d1", "d3 * d1", "d4 d2 d1", "d2 d2"] {
            let pattern = p(text);
            let m = db_match(&pattern, &db, &id);
            let s = db_support(&pattern, &db);
            assert!(
                (m - s).abs() < 1e-12,
                "identity-matrix match {m} != support {s} for {text}"
            );
        }
    }

    #[test]
    fn eternal_positions_do_not_reduce_match() {
        let c = fig2();
        let s = seq("d0 d3 d1");
        let gapped = p("d1 * d2");
        let tight = p("d1 d2");
        assert!(sequence_match(&gapped, &s, &c) >= sequence_match(&tight, &s, &c));
    }

    #[test]
    fn db_match_many_agrees_with_single() {
        let db = fig4_db();
        let c = fig2();
        let patterns = vec![p("d1 d2"), p("d2 d1"), p("d3 d4"), p("d5 d5")];
        let many = db_match_many(&patterns, &db, &c);
        for (pattern, &v) in patterns.iter().zip(&many) {
            assert!((v - db_match(pattern, &db, &c)).abs() < 1e-12);
        }
    }

    #[test]
    fn naive_and_optimized_symbol_match_agree() {
        let c = fig2();
        let s = seq("d0 d1 d2 d0 d4 d3 d3 d1");
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        symbol_sequence_match_into(&s, &c, &mut a);
        symbol_sequence_match_naive_into(&s, &c, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn figure5a_max_match_trace() {
        // After scanning "d1 d2 d3 d1" the per-symbol maxima are
        // 0.9, 0.8, 0.7, 0.1, 0.15 (Figure 5(a), final column).
        let c = fig2();
        let mut out = vec![0.0; 5];
        symbol_sequence_match_into(&seq("d0 d1 d2 d0"), &c, &mut out);
        let expect = [0.9, 0.8, 0.7, 0.1, 0.15];
        for (got, want) in out.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{out:?}");
        }
    }

    #[test]
    fn support_metric_symbol_values() {
        let sup = SupportMetric;
        let mut out = vec![0.0; 6];
        sup.symbol_values(&seq("d0 d2 d2"), 6, &mut out);
        assert_eq!(out, vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scratch_reuse_is_correct_across_sequences() {
        let c = fig2();
        let mut scratch = SymbolMatchScratch::new(5);
        let s1 = seq("d0 d1");
        let s2 = seq("d4");
        let first = scratch.sequence(&s1, &c).to_vec();
        let mut expect1 = vec![0.0; 5];
        symbol_sequence_match_into(&s1, &c, &mut expect1);
        assert_eq!(first, expect1);
        let second = scratch.sequence(&s2, &c).to_vec();
        let mut expect2 = vec![0.0; 5];
        symbol_sequence_match_into(&s2, &c, &mut expect2);
        assert_eq!(second, expect2);
    }
}
