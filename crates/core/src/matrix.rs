//! The compatibility matrix (Definition 3.4).
//!
//! An `m × m` matrix `C` where `C(dᵢ, dⱼ) = P(true = dᵢ | observed = dⱼ)`:
//! the conditional probability that `dᵢ` is the underlying true symbol given
//! that `dⱼ` was observed. Columns (fixed observed symbol) therefore sum
//! to 1. The eternal symbol is fully compatible with every observation:
//! `C(*, dᵢ) = 1` — handled by the matching layer, not stored here.
//!
//! The matrix is stored densely (row-major, `true × observed`) together with
//! sparse per-column and per-row views of the non-zero entries: real
//! compatibility matrices are sparse (the paper notes "most entries in a
//! compatibility matrix is zero or near zero", §5.7), and both the
//! per-symbol-match scan (Algorithm 4.1) and candidate pruning iterate only
//! over non-zeros.

use serde::{Deserialize, Serialize};

use crate::alphabet::Symbol;
use crate::error::{Error, Result};

/// Tolerance used when validating that each column sums to 1.
pub const COLUMN_SUM_TOLERANCE: f64 = 1e-6;

/// Above this alphabet size the dense `m × m` array is dropped and lookups
/// go through the sorted sparse columns instead: at the paper's largest
/// sweep point (`m = 10⁴`, §5.7) a dense array would be 800 MB while the
/// ~10 %-dense matrix itself is tens of MB.
pub const DENSE_STORAGE_LIMIT: usize = 2048;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Storage {
    /// Row-major dense storage: `data[true * m + observed]`. O(1) lookup.
    Dense(Vec<f64>),
    /// Columns only; lookups binary-search the sorted column.
    Sparse,
}

/// A compatibility matrix `C(true, observed)` (Definition 3.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompatibilityMatrix {
    m: usize,
    storage: Storage,
    /// For each observed symbol `j`, the non-zero `(true, C(true, j))`
    /// pairs, sorted by true-symbol id.
    cols: Vec<Vec<(Symbol, f64)>>,
    /// For each true symbol `i`, the non-zero `(observed, C(i, observed))` pairs.
    rows: Vec<Vec<(Symbol, f64)>>,
}

impl CompatibilityMatrix {
    /// Builds a matrix from rows indexed `[true][observed]`, validating that
    /// every entry is a probability in `[0, 1]` and every column sums to 1
    /// (within [`COLUMN_SUM_TOLERANCE`]).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let m = rows.len();
        if m == 0 {
            return Err(Error::InvalidMatrix("matrix has no rows".into()));
        }
        if m > (u16::MAX as usize) + 1 {
            return Err(Error::InvalidMatrix(format!(
                "alphabet size {m} exceeds the u16 symbol space"
            )));
        }
        let mut data = Vec::with_capacity(m * m);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(Error::InvalidMatrix(format!(
                    "row {i} has {} entries, expected {m}",
                    row.len()
                )));
            }
            for (j, &v) in row.iter().enumerate() {
                if !(0.0..=1.0 + COLUMN_SUM_TOLERANCE).contains(&v) || v.is_nan() {
                    return Err(Error::InvalidMatrix(format!(
                        "entry C(d{i}, d{j}) = {v} is not a probability"
                    )));
                }
            }
            data.extend_from_slice(row);
        }
        for j in 0..m {
            let sum: f64 = (0..m).map(|i| data[i * m + j]).sum();
            if (sum - 1.0).abs() > COLUMN_SUM_TOLERANCE {
                return Err(Error::InvalidMatrix(format!(
                    "column {j} sums to {sum}, expected 1 (C(·, d{j}) is a conditional distribution)"
                )));
            }
        }
        Ok(Self::from_dense_unchecked(m, data))
    }

    fn from_dense_unchecked(m: usize, data: Vec<f64>) -> Self {
        let mut cols = vec![Vec::new(); m];
        let mut rows = vec![Vec::new(); m];
        for i in 0..m {
            for j in 0..m {
                let v = data[i * m + j];
                if v > 0.0 {
                    cols[j].push((Symbol(i as u16), v));
                    rows[i].push((Symbol(j as u16), v));
                }
            }
        }
        let storage = if m <= DENSE_STORAGE_LIMIT {
            Storage::Dense(data)
        } else {
            Storage::Sparse
        };
        Self {
            m,
            storage,
            cols,
            rows,
        }
    }

    /// Builds a matrix directly from sparse columns: `columns[j]` lists the
    /// non-zero `(true, C(true, j))` pairs of observed symbol `j`. Validates
    /// that every column sums to 1 and that ids are in range. This is the
    /// constructor of choice for large alphabets (§5.7), where the dense
    /// array would not fit in memory.
    pub fn from_sparse_columns(columns: Vec<Vec<(Symbol, f64)>>) -> Result<Self> {
        Self::from_sparse_columns_impl(columns, true)
    }

    /// Like [`CompatibilityMatrix::from_sparse_columns`], but does **not**
    /// require columns to sum to 1 — entries need only be weights in
    /// `[0, 1]`. The Apriori property (Claim 3.1/3.2) only needs entries
    /// bounded by 1, so such *score matrices* plug into every matching and
    /// mining routine. [`CompatibilityMatrix::diagonal_normalized`] uses
    /// this to build the normalized-match metric.
    pub fn scores_from_sparse_columns(columns: Vec<Vec<(Symbol, f64)>>) -> Result<Self> {
        Self::from_sparse_columns_impl(columns, false)
    }

    fn from_sparse_columns_impl(
        columns: Vec<Vec<(Symbol, f64)>>,
        require_stochastic: bool,
    ) -> Result<Self> {
        let m = columns.len();
        if m == 0 {
            return Err(Error::InvalidMatrix("matrix has no columns".into()));
        }
        if m > (u16::MAX as usize) + 1 {
            return Err(Error::InvalidMatrix(format!(
                "alphabet size {m} exceeds the u16 symbol space"
            )));
        }
        let mut cols = columns;
        let mut rows = vec![Vec::new(); m];
        for (j, col) in cols.iter_mut().enumerate() {
            col.retain(|&(_, v)| v != 0.0); // keep the non-zero invariant
            col.sort_by_key(|&(s, _)| s);
            let mut sum = 0.0;
            let mut prev: Option<Symbol> = None;
            for &(s, v) in col.iter() {
                if s.index() >= m {
                    return Err(Error::SymbolOutOfRange {
                        symbol: s.0,
                        alphabet_size: m,
                    });
                }
                if prev == Some(s) {
                    return Err(Error::InvalidMatrix(format!(
                        "duplicate entry for (d{}, d{j})",
                        s.0
                    )));
                }
                prev = Some(s);
                if !(0.0..=1.0 + COLUMN_SUM_TOLERANCE).contains(&v) || v.is_nan() {
                    return Err(Error::InvalidMatrix(format!(
                        "entry C(d{}, d{j}) = {v} is not a probability",
                        s.0
                    )));
                }
                sum += v;
            }
            if require_stochastic && (sum - 1.0).abs() > COLUMN_SUM_TOLERANCE {
                return Err(Error::InvalidMatrix(format!(
                    "column {j} sums to {sum}, expected 1"
                )));
            }
        }
        for (j, col) in cols.iter().enumerate() {
            for &(s, v) in col {
                rows[s.index()].push((Symbol(j as u16), v));
            }
        }
        let storage = if m <= DENSE_STORAGE_LIMIT {
            let mut data = vec![0.0; m * m];
            for (j, col) in cols.iter().enumerate() {
                for &(s, v) in col {
                    data[s.index() * m + j] = v;
                }
            }
            Storage::Dense(data)
        } else {
            Storage::Sparse
        };
        Ok(Self {
            m,
            storage,
            cols,
            rows,
        })
    }

    /// The diagonal-normalized **score matrix** `Ĉ(i, j) = C(i, j) / C(i, i)`.
    ///
    /// Under `Ĉ`, an exactly-observed pattern scores 1 — like support —
    /// while a degraded occurrence retains the *relative* credit
    /// `C(i, obs) / C(i, i)` per mutated position. The resulting metric is
    /// the pattern's match expressed on the noise-free support scale (the
    /// paper describes match as "the real support … expected if a
    /// noise-free environment is assumed"), which makes a single threshold
    /// meaningful across pattern lengths and across the match/support
    /// models. Apriori holds because every entry stays in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Fails when some diagonal entry is zero or not the maximum of its row
    /// (normalization would exceed 1 and break the Apriori bound).
    pub fn diagonal_normalized(&self) -> Result<Self> {
        self.diagonal_normalized_impl(false)
    }

    /// Like [`CompatibilityMatrix::diagonal_normalized`], but entries that
    /// would exceed 1 (an observation *more* indicative of some other true
    /// symbol than that symbol's own diagonal) are clamped to 1 instead of
    /// rejected. The Apriori bound is preserved; use this for heavily noisy
    /// channels where a few posterior rows are not diagonally dominant.
    pub fn diagonal_normalized_clamped(&self) -> Result<Self> {
        self.diagonal_normalized_impl(true)
    }

    fn diagonal_normalized_impl(&self, clamp: bool) -> Result<Self> {
        let m = self.m;
        let mut columns: Vec<Vec<(Symbol, f64)>> = vec![Vec::new(); m];
        let mut diag = vec![0.0f64; m];
        for (i, d) in diag.iter_mut().enumerate() {
            *d = self.get(Symbol(i as u16), Symbol(i as u16));
            if *d <= 0.0 {
                return Err(Error::InvalidMatrix(format!(
                    "cannot normalize: C(d{i}, d{i}) = 0"
                )));
            }
        }
        for (j, col) in self.cols.iter().enumerate() {
            for &(s, v) in col {
                let scaled = v / diag[s.index()];
                if scaled > 1.0 + COLUMN_SUM_TOLERANCE && !clamp {
                    return Err(Error::InvalidMatrix(format!(
                        "cannot normalize: C(d{}, d{j}) = {v} exceeds the diagonal {}",
                        s.0,
                        diag[s.index()]
                    )));
                }
                columns[j].push((s, scaled.min(1.0)));
            }
        }
        Self::scores_from_sparse_columns(columns)
    }

    /// The identity matrix: the noise-free environment where match degrades
    /// to plain support (Section 3, observation 3).
    pub fn identity(m: usize) -> Self {
        let mut data = vec![0.0; m * m];
        for i in 0..m {
            data[i * m + i] = 1.0;
        }
        Self::from_dense_unchecked(m, data)
    }

    /// The uniform-noise matrix of the paper's robustness experiments
    /// (§5.1): `C(dᵢ, dᵢ) = 1 − α` and `C(dᵢ, dⱼ) = α / (m − 1)` for
    /// `i ≠ j`. `α = 0` is the identity; `α = (m−1)/m` is total noise where
    /// every entry is `1/m` and all patterns have equal match.
    pub fn uniform_noise(m: usize, alpha: f64) -> Result<Self> {
        if m < 2 {
            return Err(Error::InvalidMatrix(
                "uniform noise needs at least 2 symbols".into(),
            ));
        }
        if !(0.0..=1.0).contains(&alpha) {
            return Err(Error::InvalidMatrix(format!(
                "noise level alpha = {alpha} outside [0, 1]"
            )));
        }
        let off = alpha / (m as f64 - 1.0);
        let mut data = vec![off; m * m];
        for i in 0..m {
            data[i * m + i] = 1.0 - alpha;
        }
        Ok(Self::from_dense_unchecked(m, data))
    }

    /// The fully-noisy matrix where every entry is `1/m` — the degenerate
    /// case discussed in Section 3 where no pattern is more significant than
    /// any other.
    pub fn total_noise(m: usize) -> Self {
        let v = 1.0 / m as f64;
        Self::from_dense_unchecked(m, vec![v; m * m])
    }

    /// Number of distinct symbols `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` if the matrix is empty (never holds for a valid matrix).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// `C(true_sym, observed)` — the conditional probability that
    /// `true_sym` underlies the observation `observed`.
    #[inline]
    pub fn get(&self, true_sym: Symbol, observed: Symbol) -> f64 {
        debug_assert!(true_sym.index() < self.m && observed.index() < self.m);
        match &self.storage {
            Storage::Dense(data) => data[true_sym.index() * self.m + observed.index()],
            Storage::Sparse => {
                let col = &self.cols[observed.index()];
                match col.binary_search_by_key(&true_sym, |&(s, _)| s) {
                    Ok(i) => col[i].1,
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// `true` when lookups go through the dense array (small alphabets).
    pub fn is_dense(&self) -> bool {
        matches!(self.storage, Storage::Dense(_))
    }

    /// Non-zero entries of the column for `observed`: the true symbols the
    /// observation may (mis)represent, with their probabilities.
    #[inline]
    pub fn column(&self, observed: Symbol) -> &[(Symbol, f64)] {
        &self.cols[observed.index()]
    }

    /// Non-zero entries of the row for `true_sym`: the observations that the
    /// true symbol may produce, with their probabilities.
    #[inline]
    pub fn row(&self, true_sym: Symbol) -> &[(Symbol, f64)] {
        &self.rows[true_sym.index()]
    }

    /// `true` when the matrix is the identity: the noise-free case where
    /// match and support coincide.
    pub fn is_identity(&self) -> bool {
        self.cols.iter().enumerate().all(|(j, col)| {
            col.len() == 1 && col[0].0.index() == j && (col[0].1 - 1.0).abs() < COLUMN_SUM_TOLERANCE
        })
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        let nnz: usize = self.cols.iter().map(Vec::len).sum();
        nnz as f64 / (self.m * self.m) as f64
    }

    /// Returns a copy with measurement error injected, following the
    /// protocol of Figure 8: for every symbol `dᵢ`, `C(dᵢ, dᵢ)` is moved by
    /// `error_frac` (each direction equally likely under `rng`), and the
    /// other entries of the same *column* are rescaled so the column still
    /// sums to 1.
    ///
    /// `error_frac` is a fraction (`0.10` for the paper's "10 % error").
    pub fn perturb_diagonal<R: rand::Rng>(&self, error_frac: f64, rng: &mut R) -> Result<Self> {
        if !(0.0..1.0).contains(&error_frac) {
            return Err(Error::InvalidMatrix(format!(
                "error fraction {error_frac} outside [0, 1)"
            )));
        }
        let m = self.m;
        let mut cols = self.cols.clone();
        for (j, col) in cols.iter_mut().enumerate() {
            let diag_pos = col.iter().position(|&(s, _)| s.index() == j);
            let diag = diag_pos.map(|p| col[p].1).unwrap_or(0.0);
            if diag <= 0.0 {
                continue;
            }
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let new_diag = (diag * (1.0 + sign * error_frac)).clamp(0.0, 1.0);
            let off_sum: f64 = col
                .iter()
                .filter(|&&(s, _)| s.index() != j)
                .map(|&(_, v)| v)
                .sum();
            if off_sum > 0.0 {
                let scale = (1.0 - new_diag) / off_sum;
                for (s, v) in col.iter_mut() {
                    if s.index() != j {
                        *v *= scale;
                    }
                }
                col[diag_pos.expect("diag present")].1 = new_diag;
            } else if (new_diag - 1.0).abs() > COLUMN_SUM_TOLERANCE {
                // Column was a point mass; spread the deficit uniformly over
                // the other symbols so the column still sums to 1.
                let spread = (1.0 - new_diag) / (m as f64 - 1.0);
                *col = (0..m)
                    .map(|i| (Symbol(i as u16), if i == j { new_diag } else { spread }))
                    .collect();
            }
        }
        Self::from_sparse_columns(cols)
    }

    /// Builds the *observation* (noise-channel) matrix `P(observed | true)`
    /// implied by this compatibility matrix under a uniform prior over true
    /// symbols — useful for generating test data consistent with the matrix.
    /// Rows of the result (fixed true symbol) sum to 1.
    pub fn to_channel_uniform_prior(&self) -> Vec<Vec<f64>> {
        let m = self.m;
        // P(obs=j | true=i) ∝ P(true=i | obs=j) · P(obs=j); with a uniform
        // prior over observations this is proportional to C(i, j).
        let mut channel = vec![vec![0.0; m]; m];
        for (i, row) in channel.iter_mut().enumerate() {
            let entries = &self.rows[i];
            let row_sum: f64 = entries.iter().map(|&(_, v)| v).sum();
            if row_sum > 0.0 {
                for &(j, v) in entries {
                    row[j.index()] = v / row_sum;
                }
            } else {
                row[i] = 1.0;
            }
        }
        channel
    }

    /// The worked example of Figure 2 — a 5-symbol matrix used throughout
    /// the paper's Section 3 examples and locked into this library's tests.
    pub fn paper_figure2() -> Self {
        // Rows are true values d1..d5; columns observed d1..d5.
        Self::from_rows(vec![
            vec![0.90, 0.10, 0.00, 0.00, 0.00],
            vec![0.05, 0.80, 0.05, 0.10, 0.00],
            vec![0.05, 0.00, 0.70, 0.15, 0.10],
            vec![0.00, 0.10, 0.10, 0.75, 0.05],
            vec![0.00, 0.00, 0.15, 0.00, 0.85],
        ])
        .expect("Figure 2 matrix is column-stochastic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure2_values() {
        let c = CompatibilityMatrix::paper_figure2();
        assert_eq!(c.len(), 5);
        // Asymmetry example from Section 3: C(d1,d2)=0.1, C(d2,d1)=0.05.
        assert_eq!(c.get(Symbol(0), Symbol(1)), 0.10);
        assert_eq!(c.get(Symbol(1), Symbol(0)), 0.05);
        // Zero entry: a d1 can never appear as d3.
        assert_eq!(c.get(Symbol(0), Symbol(2)), 0.0);
    }

    #[test]
    fn rejects_non_stochastic_columns() {
        let bad = vec![vec![0.5, 0.0], vec![0.4, 1.0]];
        assert!(matches!(
            CompatibilityMatrix::from_rows(bad),
            Err(Error::InvalidMatrix(_))
        ));
    }

    #[test]
    fn rejects_ragged_and_empty() {
        assert!(CompatibilityMatrix::from_rows(vec![]).is_err());
        assert!(CompatibilityMatrix::from_rows(vec![vec![1.0], vec![]]).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let c = CompatibilityMatrix::identity(4);
        assert!(c.is_identity());
        assert_eq!(c.get(Symbol(2), Symbol(2)), 1.0);
        assert_eq!(c.get(Symbol(2), Symbol(3)), 0.0);
        assert_eq!(c.density(), 0.25);
    }

    #[test]
    fn uniform_noise_columns_sum_to_one() {
        let c = CompatibilityMatrix::uniform_noise(20, 0.2).unwrap();
        for j in 0..20 {
            let sum: f64 = (0..20).map(|i| c.get(Symbol(i), Symbol(j as u16))).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!((c.get(Symbol(3), Symbol(3)) - 0.8).abs() < 1e-12);
        assert!((c.get(Symbol(3), Symbol(4)) - 0.2 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_noise_zero_alpha_is_identity() {
        let c = CompatibilityMatrix::uniform_noise(5, 0.0).unwrap();
        assert!(c.is_identity());
    }

    #[test]
    fn total_noise_is_flat() {
        let c = CompatibilityMatrix::total_noise(4);
        for i in 0..4 {
            for j in 0..4 {
                assert!((c.get(Symbol(i), Symbol(j)) - 0.25).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_views_match_dense() {
        let c = CompatibilityMatrix::paper_figure2();
        for j in 0..5u16 {
            let col = c.column(Symbol(j));
            let sum: f64 = col.iter().map(|&(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for &(i, v) in col {
                assert_eq!(c.get(i, Symbol(j)), v);
                assert!(v > 0.0);
            }
        }
        for i in 0..5u16 {
            for &(j, v) in c.row(Symbol(i)) {
                assert_eq!(c.get(Symbol(i), j), v);
            }
        }
    }

    #[test]
    fn perturb_keeps_columns_stochastic() {
        let c = CompatibilityMatrix::uniform_noise(10, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let p = c.perturb_diagonal(0.10, &mut rng).unwrap();
        for j in 0..10u16 {
            let sum: f64 = (0..10).map(|i| p.get(Symbol(i), Symbol(j))).sum();
            assert!((sum - 1.0).abs() < 1e-9, "column {j} sums to {sum}");
        }
        // Diagonals moved by exactly ±10 %.
        let mut moved = 0;
        for j in 0..10u16 {
            let d0 = c.get(Symbol(j), Symbol(j));
            let d1 = p.get(Symbol(j), Symbol(j));
            let rel = (d1 - d0).abs() / d0;
            assert!((rel - 0.10).abs() < 1e-9);
            if d1 != d0 {
                moved += 1;
            }
        }
        assert_eq!(moved, 10);
    }

    #[test]
    fn perturb_identity_spreads_mass() {
        let c = CompatibilityMatrix::identity(4);
        let mut rng = StdRng::seed_from_u64(3);
        let p = c.perturb_diagonal(0.2, &mut rng).unwrap();
        for j in 0..4u16 {
            let sum: f64 = (0..4).map(|i| p.get(Symbol(i), Symbol(j))).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_columns_round_trip() {
        let fig2 = CompatibilityMatrix::paper_figure2();
        let cols: Vec<Vec<(Symbol, f64)>> =
            (0..5u16).map(|j| fig2.column(Symbol(j)).to_vec()).collect();
        let rebuilt = CompatibilityMatrix::from_sparse_columns(cols).unwrap();
        for i in 0..5u16 {
            for j in 0..5u16 {
                assert_eq!(
                    rebuilt.get(Symbol(i), Symbol(j)),
                    fig2.get(Symbol(i), Symbol(j))
                );
            }
        }
        assert!(rebuilt.is_dense());
    }

    #[test]
    fn sparse_storage_above_dense_limit() {
        // Build a large identity-like matrix from sparse columns; storage
        // must switch to sparse and lookups must still be exact.
        let m = DENSE_STORAGE_LIMIT + 10;
        let cols: Vec<Vec<(Symbol, f64)>> = (0..m).map(|j| vec![(Symbol(j as u16), 1.0)]).collect();
        let c = CompatibilityMatrix::from_sparse_columns(cols).unwrap();
        assert!(!c.is_dense());
        assert!(c.is_identity());
        assert_eq!(c.get(Symbol(7), Symbol(7)), 1.0);
        assert_eq!(c.get(Symbol(7), Symbol(8)), 0.0);
    }

    #[test]
    fn sparse_columns_validation() {
        // Column does not sum to 1.
        assert!(CompatibilityMatrix::from_sparse_columns(vec![
            vec![(Symbol(0), 0.5)],
            vec![(Symbol(1), 1.0)],
        ])
        .is_err());
        // Duplicate entry.
        assert!(CompatibilityMatrix::from_sparse_columns(vec![
            vec![(Symbol(0), 0.5), (Symbol(0), 0.5)],
            vec![(Symbol(1), 1.0)],
        ])
        .is_err());
        // Out-of-range symbol.
        assert!(CompatibilityMatrix::from_sparse_columns(vec![
            vec![(Symbol(5), 1.0)],
            vec![(Symbol(1), 1.0)],
        ])
        .is_err());
        // Zero entries are dropped, not rejected.
        let c = CompatibilityMatrix::from_sparse_columns(vec![
            vec![(Symbol(0), 1.0), (Symbol(1), 0.0)],
            vec![(Symbol(1), 1.0)],
        ])
        .unwrap();
        assert_eq!(c.column(Symbol(0)).len(), 1);
    }

    #[test]
    fn diagonal_normalized_properties() {
        let c = CompatibilityMatrix::uniform_noise(20, 0.3).unwrap();
        let n = c.diagonal_normalized().unwrap();
        // Diagonal becomes exactly 1; off-diagonal scales by 1/(1-alpha).
        for i in 0..20u16 {
            assert!((n.get(Symbol(i), Symbol(i)) - 1.0).abs() < 1e-12);
        }
        let off = n.get(Symbol(0), Symbol(1));
        assert!((off - (0.3 / 19.0) / 0.7).abs() < 1e-12);
        // All entries stay within [0, 1] (the Apriori bound).
        for i in 0..20u16 {
            for j in 0..20u16 {
                let v = n.get(Symbol(i), Symbol(j));
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Identity is a fixed point.
        let id = CompatibilityMatrix::identity(4);
        assert!(id.diagonal_normalized().unwrap().is_identity());
    }

    #[test]
    fn diagonal_normalized_rejects_weak_diagonal() {
        // d0's row max is at column 1, so normalization would exceed 1.
        let c = CompatibilityMatrix::from_rows(vec![vec![0.3, 0.7], vec![0.7, 0.3]]).unwrap();
        assert!(c.diagonal_normalized().is_err());
    }

    #[test]
    fn scores_matrix_skips_column_sum_check() {
        let s = CompatibilityMatrix::scores_from_sparse_columns(vec![
            vec![(Symbol(0), 1.0), (Symbol(1), 0.5)],
            vec![(Symbol(1), 1.0)],
        ])
        .unwrap();
        assert_eq!(s.get(Symbol(1), Symbol(0)), 0.5);
        // The stochastic constructor rejects the same input.
        assert!(CompatibilityMatrix::from_sparse_columns(vec![
            vec![(Symbol(0), 1.0), (Symbol(1), 0.5)],
            vec![(Symbol(1), 1.0)],
        ])
        .is_err());
    }

    #[test]
    fn channel_rows_sum_to_one() {
        let c = CompatibilityMatrix::paper_figure2();
        let ch = c.to_channel_uniform_prior();
        for row in &ch {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
