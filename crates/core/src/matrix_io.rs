//! Text serialization for compatibility matrices.
//!
//! In the paper's setting the matrix "can be either given by a domain
//! expert or learned from a training data set" (§3) — i.e. it arrives as a
//! file. Two line-oriented formats are supported, distinguished by a
//! header line:
//!
//! ```text
//! #noisemine-matrix dense
//! d1  d2  d3            <- symbol names (column = observed, row = true)
//! 0.9 0.1 0.0           <- row for true d1
//! 0.05 0.8 0.05
//! 0.05 0.1 0.95
//! ```
//!
//! ```text
//! #noisemine-matrix sparse
//! d1  d2  d3
//! d1 d1 0.9             <- true observed probability (zero entries omitted)
//! d1 d2 0.1
//! ...
//! ```
//!
//! The sparse form is the right one for large alphabets (§5.7). Both are
//! validated on read (columns must sum to 1); `write_*` emit the matching
//! header so files round-trip.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use crate::alphabet::Alphabet;
use crate::error::{Error, Result};
use crate::matrix::CompatibilityMatrix;
use crate::Symbol;

/// Header line of the dense format.
pub const DENSE_HEADER: &str = "#noisemine-matrix dense";
/// Header line of the sparse format.
pub const SPARSE_HEADER: &str = "#noisemine-matrix sparse";

/// Reads a matrix (and its alphabet) from text in either format.
pub fn read_matrix<R: Read>(reader: R) -> Result<(Alphabet, CompatibilityMatrix)> {
    let reader = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| Error::InvalidMatrix(format!("i/o error: {e}")))?;
        let t = line.trim().to_string();
        if t.is_empty() {
            continue;
        }
        lines.push(t);
    }
    let header = lines
        .first()
        .ok_or_else(|| Error::InvalidMatrix("empty matrix file".into()))?;
    match header.as_str() {
        DENSE_HEADER => parse_dense(&lines[1..]),
        SPARSE_HEADER => parse_sparse(&lines[1..]),
        other => Err(Error::InvalidMatrix(format!(
            "unknown matrix header {other:?}; expected {DENSE_HEADER:?} or {SPARSE_HEADER:?}"
        ))),
    }
}

fn parse_names(line: &str) -> Result<Alphabet> {
    Alphabet::new(line.split_whitespace().map(str::to_string))
}

fn parse_dense(lines: &[String]) -> Result<(Alphabet, CompatibilityMatrix)> {
    let names = lines
        .first()
        .ok_or_else(|| Error::InvalidMatrix("dense matrix missing symbol names".into()))?;
    let alphabet = parse_names(names)?;
    let m = alphabet.len();
    let rows_lines = &lines[1..];
    if rows_lines.len() != m {
        return Err(Error::InvalidMatrix(format!(
            "dense matrix has {} rows, expected {m}",
            rows_lines.len()
        )));
    }
    let mut rows = Vec::with_capacity(m);
    for (i, line) in rows_lines.iter().enumerate() {
        let row: Vec<f64> = line
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|_| Error::InvalidMatrix(format!("row {i}: {t:?} is not a number")))
            })
            .collect::<Result<_>>()?;
        rows.push(row);
    }
    Ok((alphabet, CompatibilityMatrix::from_rows(rows)?))
}

fn parse_sparse(lines: &[String]) -> Result<(Alphabet, CompatibilityMatrix)> {
    let names = lines
        .first()
        .ok_or_else(|| Error::InvalidMatrix("sparse matrix missing symbol names".into()))?;
    let alphabet = parse_names(names)?;
    let m = alphabet.len();
    let mut columns: Vec<Vec<(Symbol, f64)>> = vec![Vec::new(); m];
    for line in &lines[1..] {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (t, o, p) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(t), Some(o), Some(p), None) => (t, o, p),
            _ => {
                return Err(Error::InvalidMatrix(format!(
                    "sparse entry {line:?} is not `true observed probability`"
                )))
            }
        };
        let true_sym = alphabet.symbol(t)?;
        let obs_sym = alphabet.symbol(o)?;
        let prob: f64 = p
            .parse()
            .map_err(|_| Error::InvalidMatrix(format!("{p:?} is not a number")))?;
        columns[obs_sym.index()].push((true_sym, prob));
    }
    Ok((alphabet, CompatibilityMatrix::from_sparse_columns(columns)?))
}

/// Renders the matrix in the dense format.
pub fn to_dense_string(alphabet: &Alphabet, matrix: &CompatibilityMatrix) -> Result<String> {
    check_sizes(alphabet, matrix)?;
    let m = matrix.len();
    let mut out = String::new();
    let _ = writeln!(out, "{DENSE_HEADER}");
    let names: Vec<&str> = alphabet
        .symbols()
        .map(|s| alphabet.name(s))
        .collect::<Result<_>>()?;
    let _ = writeln!(out, "{}", names.join("\t"));
    for i in 0..m {
        let row: Vec<String> = (0..m)
            .map(|j| format!("{}", matrix.get(Symbol(i as u16), Symbol(j as u16))))
            .collect();
        let _ = writeln!(out, "{}", row.join("\t"));
    }
    Ok(out)
}

/// Renders the matrix in the sparse format (non-zero entries only).
pub fn to_sparse_string(alphabet: &Alphabet, matrix: &CompatibilityMatrix) -> Result<String> {
    check_sizes(alphabet, matrix)?;
    let mut out = String::new();
    let _ = writeln!(out, "{SPARSE_HEADER}");
    let names: Vec<&str> = alphabet
        .symbols()
        .map(|s| alphabet.name(s))
        .collect::<Result<_>>()?;
    let _ = writeln!(out, "{}", names.join("\t"));
    for obs in alphabet.symbols() {
        for &(true_sym, v) in matrix.column(obs) {
            let _ = writeln!(
                out,
                "{}\t{}\t{v}",
                alphabet.name(true_sym)?,
                alphabet.name(obs)?,
            );
        }
    }
    Ok(out)
}

/// Writes in dense format to any writer.
pub fn write_dense<W: Write>(
    mut writer: W,
    alphabet: &Alphabet,
    matrix: &CompatibilityMatrix,
) -> Result<()> {
    let s = to_dense_string(alphabet, matrix)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::InvalidMatrix(format!("i/o error: {e}")))
}

/// Writes in sparse format to any writer.
pub fn write_sparse<W: Write>(
    mut writer: W,
    alphabet: &Alphabet,
    matrix: &CompatibilityMatrix,
) -> Result<()> {
    let s = to_sparse_string(alphabet, matrix)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::InvalidMatrix(format!("i/o error: {e}")))
}

fn check_sizes(alphabet: &Alphabet, matrix: &CompatibilityMatrix) -> Result<()> {
    if alphabet.len() != matrix.len() {
        return Err(Error::InvalidMatrix(format!(
            "alphabet has {} symbols but matrix is {}x{}",
            alphabet.len(),
            matrix.len(),
            matrix.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_with_names() -> (Alphabet, CompatibilityMatrix) {
        (
            Alphabet::new((1..=5).map(|i| format!("d{i}"))).unwrap(),
            CompatibilityMatrix::paper_figure2(),
        )
    }

    #[test]
    fn dense_round_trip() {
        let (alphabet, matrix) = fig2_with_names();
        let text = to_dense_string(&alphabet, &matrix).unwrap();
        let (a2, m2) = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(a2.len(), 5);
        assert_eq!(a2.name(Symbol(0)).unwrap(), "d1");
        for i in 0..5u16 {
            for j in 0..5u16 {
                assert_eq!(
                    m2.get(Symbol(i), Symbol(j)),
                    matrix.get(Symbol(i), Symbol(j))
                );
            }
        }
    }

    #[test]
    fn sparse_round_trip() {
        let (alphabet, matrix) = fig2_with_names();
        let text = to_sparse_string(&alphabet, &matrix).unwrap();
        assert!(text.starts_with(SPARSE_HEADER));
        let (_, m2) = read_matrix(text.as_bytes()).unwrap();
        for i in 0..5u16 {
            for j in 0..5u16 {
                assert_eq!(
                    m2.get(Symbol(i), Symbol(j)),
                    matrix.get(Symbol(i), Symbol(j))
                );
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_matrix("not a matrix\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown matrix header"));
    }

    #[test]
    fn rejects_wrong_row_count() {
        let text = format!("{DENSE_HEADER}\na b\n1 0\n");
        assert!(read_matrix(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_stochastic_sparse() {
        let text = format!("{SPARSE_HEADER}\na b\na a 0.5\nb b 1\n");
        assert!(read_matrix(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_symbol_in_sparse() {
        let text = format!("{SPARSE_HEADER}\na b\nc a 1\nb b 1\n");
        assert!(matches!(
            read_matrix(text.as_bytes()),
            Err(Error::UnknownSymbol(_))
        ));
    }

    #[test]
    fn rejects_malformed_sparse_entry() {
        let text = format!("{SPARSE_HEADER}\na b\na a 1 extra\nb b 1\n");
        assert!(read_matrix(text.as_bytes()).is_err());
    }

    #[test]
    fn size_mismatch_on_write() {
        let alphabet = Alphabet::synthetic(3);
        let matrix = CompatibilityMatrix::identity(5);
        assert!(to_dense_string(&alphabet, &matrix).is_err());
    }
}
