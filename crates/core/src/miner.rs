//! The three-phase probabilistic miner (Section 4) — the paper's headline
//! algorithm.
//!
//! 1. **Phase 1** (Algorithm 4.1): one scan of the database computes the
//!    match of every individual symbol (first-occurrence optimized) and
//!    draws a uniform random sample of sequences as a by-product.
//! 2. **Phase 2** (Algorithm 4.2): level-wise mining of the in-memory
//!    sample classifies every candidate as frequent / ambiguous /
//!    infrequent by the Chernoff bound with restricted spread.
//! 3. **Phase 3** (Algorithms 4.3/4.4): border collapsing resolves the
//!    ambiguous patterns against the full database in a minimal number of
//!    scans under a counter-memory budget.
//!
//! # Observability
//!
//! With the [`noisemine_obs`] registry enabled (`--metrics-out` in the
//! CLI), each phase is timed into the
//! `core_phase{1,2,3}_seconds` histograms. Instrumentation is
//! observe-only: enabling it never changes sampling, classification, or
//! the mined pattern set, and with no sink attached every record site
//! reduces to one relaxed atomic load. `docs/OBSERVABILITY.md` maps each
//! metric to the paper quantity it tracks.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::alphabet::Symbol;
use crate::border_collapse::{
    try_collapse_with_known_kernel_indexed, CollapseResult, ProbeStrategy, Resolution,
};
use crate::candidates::{LevelTrace, PatternSpace};
use crate::chernoff::SpreadMode;
use crate::error::{Error, Result, ScanError};
use crate::index::{IndexMode, SymbolIndex, SymbolIndexBuilder};
use crate::lattice::{AmbiguousSpace, Border};
use crate::match_kernel::MatchKernel;
use crate::matching::{SequenceBlock, SequenceScan, SymbolMatchScratch};
use crate::matrix::CompatibilityMatrix;
use crate::parallel::{resolve_threads, try_scan_map_reduce, SCAN_BLOCK_SIZE};
use crate::pattern::Pattern;
use crate::sample_miner::{mine_sample_budgeted_kernel, DEFAULT_MAX_SAMPLE_PATTERNS};

/// Configuration of the three-phase miner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinerConfig {
    /// The significance threshold `min_match` (Definition 3.7).
    pub min_match: f64,
    /// Chernoff failure probability `δ` (the paper uses `1 − δ = 0.9999`).
    pub delta: f64,
    /// Number of sequences to sample into memory in phase 1.
    pub sample_size: usize,
    /// Match counters that fit in memory per database scan in phase 3.
    pub counters_per_scan: usize,
    /// Bounds of the enumerated pattern space.
    pub space: PatternSpace,
    /// Spread selection for the Chernoff bound (Claim 4.2).
    pub spread_mode: SpreadMode,
    /// Probe strategy for phase 3 (border collapsing vs level-wise).
    pub probe_strategy: ProbeStrategy,
    /// RNG seed for the phase-1 sample — mining is fully deterministic.
    pub seed: u64,
    /// Ceiling on the candidate patterns phase 2 may evaluate; exceeding it
    /// aborts the run with a diagnostic (it means the Chernoff band is too
    /// wide to prune — raise the sample size, threshold, or delta).
    pub max_sample_patterns: usize,
    /// Worker threads for the phase-1/phase-3 scan pipeline; `0` means all
    /// available cores. Purely operational: block sizes are constants and
    /// partial sums reduce in block order, so mining output is bit-identical
    /// at every thread count (which is also why this knob is not part of any
    /// checkpointed state).
    pub threads: usize,
    /// Which match kernel evaluates candidate batches in phases 2 and 3 —
    /// the batched [`CandidateTrie`](crate::match_kernel::CandidateTrie)
    /// (default), the naive per-pattern reference, or the columnar SIMD
    /// kernel (`simd`, 8 windows per step). Purely operational, like
    /// `threads`: all three kernels produce identical values (trie/naive
    /// are bit-identical by construction; simd is bound to them by
    /// [`SIMD_MAX_ULP`](crate::match_kernel::simd::SIMD_MAX_ULP), currently
    /// zero), so this knob never changes mining output and is not part of
    /// any checkpointed state.
    pub match_kernel: MatchKernel,
    /// Positional symbol index mode (see [`crate::index`]). With
    /// [`IndexMode::Build`] (or `Use` without a supplied sidecar), phase 1
    /// builds a [`SymbolIndex`] as a by-product of its scan and phase-3
    /// probe scans consult it to skip sequences that provably match every
    /// probe at exactly `0.0`. Purely operational, like `threads` and
    /// `match_kernel`: skipped sequences still count toward the Definition
    /// 3.7 denominator, so mining output is bit-identical in every mode —
    /// which is also why this knob defaults on deserialization and is not
    /// part of any checkpointed state.
    #[serde(default)]
    pub index: IndexMode,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_match: 0.01,
            delta: 0.0001,
            sample_size: 1000,
            counters_per_scan: 10_000,
            space: PatternSpace::default(),
            spread_mode: SpreadMode::Restricted,
            probe_strategy: ProbeStrategy::BorderCollapsing,
            seed: 0x6e6f_6973, // "nois"
            max_sample_patterns: DEFAULT_MAX_SAMPLE_PATTERNS,
            threads: 0,
            match_kernel: MatchKernel::default(),
            index: IndexMode::default(),
        }
    }
}

impl MinerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.min_match) {
            return Err(Error::InvalidConfig(format!(
                "min_match {} outside [0, 1]",
                self.min_match
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(Error::InvalidConfig(format!(
                "delta {} outside (0, 1)",
                self.delta
            )));
        }
        if self.sample_size == 0 {
            return Err(Error::InvalidConfig("sample_size must be positive".into()));
        }
        if self.counters_per_scan == 0 {
            return Err(Error::InvalidConfig(
                "counters_per_scan must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Which phase established that a pattern is frequent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Labeled frequent from the sample with Chernoff confidence `1 − δ`.
    SampleConfident,
    /// Verified exactly against the full database in phase 3.
    Verified,
    /// Implied frequent by a phase-3 verified superpattern (Apriori).
    Implied,
}

/// A frequent pattern in the miner's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequentPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Best available estimate of its match: the exact database match for
    /// verified patterns, the sample match otherwise.
    pub match_estimate: f64,
    /// How it was established.
    pub provenance: Provenance,
}

/// Statistics of one mining run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MineStats {
    /// Total full scans of the database (phase 1 + phase 3).
    pub db_scans: usize,
    /// Sequences actually sampled in phase 1.
    pub sample_size: usize,
    /// Candidates / survivors per level in phase 2.
    pub trace: LevelTrace,
    /// Patterns labeled frequent from the sample alone.
    pub sample_frequent: usize,
    /// Ambiguous patterns after phase 2 (what phase 3 must resolve).
    pub ambiguous_after_sample: usize,
    /// Exact match counters evaluated during phase 3.
    pub verified_patterns: usize,
    /// Ambiguous patterns resolved by Apriori propagation alone.
    pub propagated_patterns: usize,
    /// Patterns counted in each phase-3 scan (Fig. 14(c) instrumentation).
    pub probes_per_scan: Vec<usize>,
    /// Wall-clock time of each phase.
    pub phase1_time: Duration,
    /// Phase-2 wall-clock time.
    pub phase2_time: Duration,
    /// Phase-3 wall-clock time.
    pub phase3_time: Duration,
}

impl MineStats {
    /// Total wall-clock time across phases.
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time + self.phase3_time
    }
}

/// The complete result of a mining run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MineOutcome {
    /// All frequent patterns with provenance.
    pub frequent: Vec<FrequentPattern>,
    /// The border of frequent patterns (maximal frequent patterns).
    pub border: Border,
    /// Per-symbol match over the whole database (phase 1 output).
    pub symbol_match: Vec<f64>,
    /// Run statistics.
    pub stats: MineStats,
}

impl MineOutcome {
    /// The frequent patterns with exactly `k` concrete symbols.
    pub fn at_level(&self, k: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.frequent
            .iter()
            .filter(move |f| f.pattern.non_eternal_count() == k)
    }

    /// Looks up a pattern's match estimate.
    pub fn match_of(&self, pattern: &Pattern) -> Option<f64> {
        self.frequent
            .iter()
            .find(|f| &f.pattern == pattern)
            .map(|f| f.match_estimate)
    }

    /// Just the patterns, sorted for deterministic output.
    pub fn patterns(&self) -> Vec<Pattern> {
        let mut v: Vec<Pattern> = self.frequent.iter().map(|f| f.pattern.clone()).collect();
        v.sort();
        v
    }
}

/// Phase 1 output: per-symbol matches and the in-memory sample.
#[derive(Debug, Clone, Default)]
pub struct Phase1Output {
    /// `symbol_match[d]` — match of symbol `d` in the whole database.
    pub symbol_match: Vec<f64>,
    /// The uniformly sampled sequences.
    pub sample: Vec<Vec<Symbol>>,
}

/// The phase-1 sequence sampler: Vitter's sequential sampling within the
/// reported database size, hardened with the same reservoir fallback as
/// `noisemine-seqdb`'s `sequential_sample` for scans that yield more
/// sequences than [`SequenceScan::num_sequences`] reported (a store being
/// appended to concurrently). Without the fallback, `reported - seen`
/// underflows on the first surplus sequence — a panic in debug builds, a
/// corrupted inclusion probability in release builds.
struct SequentialSampler {
    /// The caller's requested sample size.
    requested: usize,
    /// `min(requested, reported)` — the sequential-sampling quota.
    quota: usize,
    reported: usize,
    seen: usize,
    sample: Vec<Vec<Symbol>>,
}

impl SequentialSampler {
    fn new(requested: usize, reported: usize) -> Self {
        let quota = requested.min(reported);
        Self {
            requested,
            quota,
            reported,
            seen: 0,
            sample: Vec::with_capacity(quota),
        }
    }

    fn offer(&mut self, seq: &[Symbol], rng: &mut impl Rng) {
        if self.seen < self.reported {
            // Sequential sampling: exactly `quota` of the reported `N`
            // sequences, uniformly, in scan order.
            let needed = self.quota - self.sample.len();
            let remaining = self.reported - self.seen;
            if needed > 0 && rng.gen::<f64>() < needed as f64 / remaining as f64 {
                self.sample.push(seq.to_vec());
            }
        } else if self.sample.len() < self.requested {
            // The reported count was a lie: grow toward the full quota...
            self.sample.push(seq.to_vec());
        } else if self.requested > 0 {
            // ...then degrade to reservoir replacement so the surplus
            // sequences still have a chance of being represented.
            let k = rng.gen_range(0..=self.seen);
            if k < self.requested {
                self.sample[k] = seq.to_vec();
            }
        }
        self.seen += 1;
    }

    /// The sample plus the number of sequences actually offered.
    fn finish(self) -> (Vec<Vec<Symbol>>, usize) {
        (self.sample, self.seen)
    }
}

/// Runs phase 1 (Algorithm 4.1): one scan computing every symbol's match
/// and drawing a uniform sample of up to `sample_size` sequences using
/// sequential sampling (choose the `i`-th sequence with probability
/// `(n − j) / (N − i)` given `j` already chosen). Equivalent to
/// [`phase1_threads`] with `threads = 0` (all cores).
pub fn phase1<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    sample_size: usize,
    rng: &mut impl Rng,
) -> Phase1Output {
    phase1_threads(db, matrix, sample_size, rng, 0)
}

/// [`phase1`] with an explicit worker-thread count (`0` = all available
/// cores).
///
/// The scan streams blocks of [`SCAN_BLOCK_SIZE`] sequences through
/// [`scan_map_reduce`](crate::parallel::scan_map_reduce): per-symbol
/// matches accumulate on worker threads
/// (one [`SymbolMatchScratch`] per worker) into per-block partial sums that
/// are reduced in block order, while sequential sampling runs on the
/// in-order block stream *before* the fan-out — so both the symbol matches
/// and the seeded sample are bit-identical at every thread count. The final
/// average divides by the number of sequences actually visited, not the
/// reported count, and the sampler falls back to reservoir replacement past
/// the reported count, so a database appended to mid-scan yields a
/// full-quota sample and in-range match values instead of a panic.
pub fn phase1_threads<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    sample_size: usize,
    rng: &mut impl Rng,
    threads: usize,
) -> Phase1Output {
    match try_phase1_threads(db, matrix, sample_size, rng, threads) {
        Ok(out) => out,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`phase1_threads`]: surfaces scan failures from the
/// store instead of panicking. On `Err` no partial phase-1 output escapes —
/// both the sample and the symbol matches are discarded, since a partial
/// scan would bias them.
pub fn try_phase1_threads<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    sample_size: usize,
    rng: &mut impl Rng,
    threads: usize,
) -> std::result::Result<Phase1Output, ScanError> {
    try_phase1_threads_indexed(db, matrix, sample_size, rng, threads, false).map(|(p1, _)| p1)
}

/// [`try_phase1_threads`] that additionally builds a [`SymbolIndex`] over
/// the scanned database when `build_index` is set.
///
/// The index is assembled in the in-order `inspect` hook alongside the
/// sequential sampler, so it costs no extra scan and records every
/// sequence in scan order — ordinal `i` in the index is the `i`-th
/// sequence the scan yields, the addressing scheme the indexed match path
/// expects. Phase 1 itself never *uses* an index: both the sampler and the
/// symbol matches must see every sequence.
pub fn try_phase1_threads_indexed<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    sample_size: usize,
    rng: &mut impl Rng,
    threads: usize,
    build_index: bool,
) -> std::result::Result<(Phase1Output, Option<SymbolIndex>), ScanError> {
    let m = matrix.len();
    let threads = resolve_threads(threads);
    let mut sampler = SequentialSampler::new(sample_size, db.num_sequences());
    let mut builder = build_index.then(|| SymbolIndexBuilder::new(m));
    let partials = try_scan_map_reduce(
        db,
        SCAN_BLOCK_SIZE,
        threads,
        &mut |block| {
            for (_, seq) in block.iter() {
                sampler.offer(seq, rng);
                if let Some(b) = builder.as_mut() {
                    b.add_sequence(seq);
                }
            }
        },
        &|| SymbolMatchScratch::new(m),
        &|scratch: &mut SymbolMatchScratch, _idx, block: &SequenceBlock| {
            let mut partial = vec![0.0f64; m];
            for (_, seq) in block.iter() {
                for (acc, &v) in partial.iter_mut().zip(scratch.sequence(seq, matrix)) {
                    *acc += v;
                }
            }
            partial
        },
    )?;
    let mut match_acc = vec![0.0f64; m];
    for partial in &partials {
        for (acc, &v) in match_acc.iter_mut().zip(partial) {
            *acc += v;
        }
    }
    let (sample, visited) = sampler.finish();
    if visited > 0 {
        for v in &mut match_acc {
            *v /= visited as f64;
        }
    }
    let index = builder.map(|b| {
        crate::obs::index_builds().inc();
        b.finish()
    });
    Ok((
        Phase1Output {
            symbol_match: match_acc,
            sample,
        },
        index,
    ))
}

/// Runs the full three-phase miner.
pub fn mine<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
) -> Result<MineOutcome> {
    mine_indexed(db, matrix, config, None)
}

/// [`mine`] with an optional pre-built [`SymbolIndex`] over `db`.
///
/// With `supplied` set (e.g. loaded from an `NMIDX` sidecar by the CLI),
/// phase-3 probe scans consult it regardless of `config.index`. With
/// `supplied` absent and `config.index` enabled, phase 1 builds the index
/// as a by-product of its scan. Either way the mined output is
/// bit-identical to an unindexed run — the index only skips sequences
/// whose match is provably `0.0` for every probe in a batch.
pub fn mine_indexed<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
    supplied: Option<&SymbolIndex>,
) -> Result<MineOutcome> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Phase 1: symbol matches + sample, one scan. A scan failure surfaces
    // as `Error::Scan` instead of killing the run with a panic.
    let build_index = supplied.is_none() && config.index.enabled();
    let span = crate::obs::phase1_seconds().span();
    let t0 = Instant::now();
    let (p1, built) = try_phase1_threads_indexed(
        db,
        matrix,
        config.sample_size,
        &mut rng,
        config.threads,
        build_index,
    )?;
    let phase1_time = t0.elapsed();
    span.finish();

    let index = supplied.or(built.as_ref());
    let mut outcome = mine_from_phase1_with_known_indexed(db, matrix, config, &p1, &[], index)?.0;
    outcome.stats.db_scans += 1;
    outcome.stats.phase1_time = phase1_time;
    Ok(outcome)
}

/// Runs phases 2 and 3 on an already-computed [`Phase1Output`].
///
/// This is the batch miner minus the phase-1 scan: an engine that maintains
/// symbol matches and a sample *incrementally* (the streaming engine in
/// `noisemine-stream`) calls this to re-mine without touching phase 1.
/// `stats.db_scans` counts only phase-3 scans and `stats.phase1_time` stays
/// zero; [`mine`] adds its own phase-1 contribution on top.
pub fn mine_from_phase1<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
    p1: &Phase1Output,
) -> Result<MineOutcome> {
    Ok(mine_from_phase1_with_known(db, matrix, config, p1, &[])?.0)
}

/// [`mine_from_phase1`] with pre-verified exact matches for phase 3.
///
/// `known` pairs patterns with their *exact database match*, maintained
/// online by the caller; phase 3 applies them through
/// [`collapse_with_known`](crate::border_collapse::collapse_with_known) so
/// previously verified patterns collapse their
/// region of the ambiguous space with zero scans. Also returns the raw
/// phase-3 [`CollapseResult`] so an incremental caller can adopt the
/// probed FQT/INFQT border patterns (with their exact matches) as its next
/// tracked set.
pub fn mine_from_phase1_with_known<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
    p1: &Phase1Output,
    known: &[(Pattern, f64)],
) -> Result<(MineOutcome, CollapseResult)> {
    mine_from_phase1_with_known_indexed(db, matrix, config, p1, known, None)
}

/// [`mine_from_phase1_with_known`] with an optional [`SymbolIndex`] over
/// `db` for the phase-3 probe scans (see [`crate::index`]). The index is
/// purely operational: verdicts and match values are bit-identical with
/// and without it.
pub fn mine_from_phase1_with_known_indexed<S: SequenceScan + ?Sized>(
    db: &S,
    matrix: &CompatibilityMatrix,
    config: &MinerConfig,
    p1: &Phase1Output,
    known: &[(Pattern, f64)],
    index: Option<&SymbolIndex>,
) -> Result<(MineOutcome, CollapseResult)> {
    config.validate()?;
    let mut stats = MineStats {
        sample_size: p1.sample.len(),
        ..MineStats::default()
    };

    // Phase 2: classify candidates on the sample.
    let phase2_span = crate::obs::phase2_seconds().span();
    let t1 = Instant::now();
    let p2 = mine_sample_budgeted_kernel(
        &p1.sample,
        matrix,
        &p1.symbol_match,
        config.min_match,
        config.delta,
        config.spread_mode,
        &config.space,
        config.max_sample_patterns,
        config.match_kernel,
    );
    if p2.truncated {
        return Err(Error::InvalidConfig(format!(
            "phase 2 exceeded the {}-pattern budget: the Chernoff band (delta = {}, {} samples) \
             is too wide to prune at min_match = {} — raise the sample size, threshold, or delta",
            config.max_sample_patterns,
            config.delta,
            p1.sample.len(),
            config.min_match
        )));
    }
    stats.trace = p2.trace.clone();
    stats.sample_frequent = p2.frequent.len();
    stats.ambiguous_after_sample = p2.ambiguous.len();
    stats.phase2_time = t1.elapsed();
    phase2_span.finish();

    // Phase 3: resolve the ambiguous patterns against the full database.
    let phase3_span = crate::obs::phase3_seconds().span();
    let t2 = Instant::now();
    let ambiguous = AmbiguousSpace::new(p2.ambiguous.iter().map(|(p, _)| p.clone()));
    let p3 = try_collapse_with_known_kernel_indexed(
        ambiguous,
        known,
        db,
        matrix,
        config.min_match,
        config.counters_per_scan,
        config.probe_strategy,
        config.threads,
        config.match_kernel,
        index,
    )?;
    stats.db_scans += p3.scans;
    stats.verified_patterns = p3.probes;
    stats.propagated_patterns = p3.propagated;
    stats.probes_per_scan = p3.probes_per_scan.clone();
    stats.phase3_time = t2.elapsed();
    phase3_span.finish();

    // Assemble: sample-confident frequents + phase-3 resolutions.
    let (frequent, border) = assemble_outcome(&p2, &p3);

    Ok((
        MineOutcome {
            frequent,
            border,
            symbol_match: p1.symbol_match.clone(),
            stats,
        },
        p3,
    ))
}

/// Assembles the final frequent-pattern list (with provenance and best
/// available match estimates) and its border from the phase-2 sample
/// classification and the phase-3 resolutions. Shared by the three-phase
/// miner and the Toivonen-style baseline, whose outputs differ only in the
/// phase-3 probe order.
pub fn assemble_outcome(
    p2: &crate::sample_miner::SampleMineResult,
    p3: &crate::border_collapse::CollapseResult,
) -> (Vec<FrequentPattern>, Border) {
    let sample_match_of = |p: &Pattern| p2.labels.get(p).map(|&(v, _)| v).unwrap_or(0.0);
    let mut frequent: Vec<FrequentPattern> = p2
        .frequent
        .iter()
        .map(|(p, v)| FrequentPattern {
            pattern: p.clone(),
            match_estimate: *v,
            provenance: Provenance::SampleConfident,
        })
        .collect();
    for r in &p3.frequent {
        frequent.push(FrequentPattern {
            pattern: r.pattern.clone(),
            match_estimate: r.match_value.unwrap_or_else(|| sample_match_of(&r.pattern)),
            provenance: match r.resolution {
                Resolution::Probed => Provenance::Verified,
                Resolution::Propagated => Provenance::Implied,
            },
        });
    }
    frequent.sort_by(|a, b| a.pattern.cmp(&b.pattern));
    let border = Border::from_patterns(frequent.iter().map(|f| f.pattern.clone()));
    (frequent, border)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matching::{db_match, MemorySequences};

    fn db() -> MemorySequences {
        let a = Alphabet::synthetic(5);
        MemorySequences(vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
            a.encode("d0 d1 d2").unwrap(),
            a.encode("d3 d1 d2 d0").unwrap(),
        ])
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_match: 0.15,
            delta: 0.01,
            sample_size: 6,
            counters_per_scan: 8,
            space: PatternSpace::contiguous(4),
            ..MinerConfig::default()
        }
    }

    #[test]
    fn phase1_counts_and_samples() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let mut rng = StdRng::seed_from_u64(1);
        let out = phase1(&database, &matrix, 3, &mut rng);
        assert_eq!(out.sample.len(), 3);
        assert_eq!(out.symbol_match.len(), 5);
        // Every sampled sequence is from the database.
        for s in &out.sample {
            assert!(database.0.contains(s));
        }
        // Symbol matches agree with the standalone implementation.
        let expect = crate::matching::symbol_db_match(&database, &matrix);
        for (a, b) in out.symbol_match.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn phase1_sample_size_capped_at_db_size() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let mut rng = StdRng::seed_from_u64(1);
        let out = phase1(&database, &matrix, 100, &mut rng);
        assert_eq!(out.sample.len(), 6);
        // With the sample being the whole DB, sampling is order-preserving.
        assert_eq!(out.sample, database.0);
    }

    #[test]
    fn full_sample_mining_is_exact() {
        // When the sample covers the whole database, every frequent pattern
        // in the outcome has true match >= min_match and nothing is missed
        // (sample match == true match, so the Chernoff bands are exact).
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let cfg = config();
        let out = mine(&database, &matrix, &cfg).unwrap();
        assert!(!out.frequent.is_empty());
        for f in &out.frequent {
            let exact = db_match(&f.pattern, &database, &matrix);
            assert!(
                exact >= cfg.min_match - 1e-12,
                "{} reported frequent but exact match {exact} < {}",
                f.pattern,
                cfg.min_match
            );
        }
        // Completeness at level 1: every symbol with exact match above the
        // threshold appears in the output.
        for (i, &v) in out.symbol_match.iter().enumerate() {
            let p = Pattern::single(Symbol(i as u16));
            if v >= cfg.min_match + 1e-12 {
                assert!(
                    out.frequent.iter().any(|f| f.pattern == p),
                    "missing frequent symbol {p} (match {v})"
                );
            }
        }
    }

    #[test]
    fn stats_account_for_scans() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let out = mine(&database, &matrix, &config()).unwrap();
        // At least phase 1's scan.
        assert!(out.stats.db_scans >= 1);
        assert_eq!(out.stats.sample_size, 6);
        assert!(out.stats.trace.levels() >= 1);
    }

    #[test]
    fn border_covers_all_frequent() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let out = mine(&database, &matrix, &config()).unwrap();
        for f in &out.frequent {
            assert!(out.border.covers(&f.pattern));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let mut cfg = config();
        cfg.sample_size = 3;
        let a = mine(&database, &matrix, &cfg).unwrap();
        let b = mine(&database, &matrix, &cfg).unwrap();
        assert_eq!(a.patterns(), b.patterns());
        cfg.seed ^= 0xdead_beef;
        let _c = mine(&database, &matrix, &cfg).unwrap(); // different seed still valid
    }

    #[test]
    fn config_validation() {
        let mut cfg = config();
        cfg.min_match = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.delta = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.sample_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.counters_per_scan = 0;
        assert!(cfg.validate().is_err());
        assert!(config().validate().is_ok());
    }

    /// A database whose scan yields more sequences than `num_sequences()`
    /// reports — the concurrent-append scenario behind the phase-1
    /// underflow bug.
    struct UnderReportingDb {
        inner: MemorySequences,
        reported: usize,
    }

    impl SequenceScan for UnderReportingDb {
        fn num_sequences(&self) -> usize {
            self.reported
        }
        fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
            self.inner.scan(visit)
        }
    }

    #[test]
    fn phase1_fills_quota_on_underreporting_db() {
        // Regression: `total - seen` underflowed once the scan ran past the
        // reported count. The sampler must fall back to reservoir
        // replacement and still fill its quota.
        let matrix = CompatibilityMatrix::paper_figure2();
        let database = UnderReportingDb {
            inner: db(), // 6 sequences
            reported: 2,
        };
        for requested in [1usize, 2, 4, 6, 10] {
            let mut rng = StdRng::seed_from_u64(9);
            let out = phase1(&database, &matrix, requested, &mut rng);
            assert_eq!(
                out.sample.len(),
                requested.min(6),
                "requested = {requested}"
            );
            for s in &out.sample {
                assert!(database.inner.0.contains(s));
            }
            for &v in &out.symbol_match {
                assert!((0.0..=1.0).contains(&v), "symbol match {v} out of range");
            }
        }
        // Matches divide by the visited count, so they equal the honest
        // full-database values.
        let mut rng = StdRng::seed_from_u64(3);
        let out = phase1(&database, &matrix, 3, &mut rng);
        let expect = crate::matching::symbol_db_match(&database.inner, &matrix);
        for (a, b) in out.symbol_match.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mine_survives_underreporting_db() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let database = UnderReportingDb {
            inner: db(),
            reported: 3,
        };
        let cfg = config(); // sample_size 6: the fallback grows to full coverage
        let out = mine(&database, &matrix, &cfg).unwrap();
        assert!(!out.frequent.is_empty());
        for f in &out.frequent {
            let exact = db_match(&f.pattern, &database.inner, &matrix);
            assert!(
                exact >= cfg.min_match - 1e-12,
                "{} frequent but exact match {exact} < {}",
                f.pattern,
                cfg.min_match
            );
        }
    }

    #[test]
    fn phase1_threads_bit_identical_across_thread_counts() {
        // Enough sequences for several scan blocks.
        let a = Alphabet::synthetic(5);
        let seqs: Vec<Vec<Symbol>> = (0..600u16)
            .map(|i| (0..10).map(|j| Symbol((i + j) % 5)).collect())
            .collect();
        let database = MemorySequences(seqs);
        let matrix = CompatibilityMatrix::paper_figure2();
        let _ = a;
        let mut rng = StdRng::seed_from_u64(77);
        let serial = phase1_threads(&database, &matrix, 40, &mut rng, 1);
        for threads in [2, 3, 8] {
            let mut rng = StdRng::seed_from_u64(77);
            let par = phase1_threads(&database, &matrix, 40, &mut rng, threads);
            assert_eq!(serial.symbol_match, par.symbol_match, "threads = {threads}");
            assert_eq!(serial.sample, par.sample, "threads = {threads}");
        }
    }

    #[test]
    fn outcome_helpers() {
        let database = db();
        let matrix = CompatibilityMatrix::paper_figure2();
        let out = mine(&database, &matrix, &config()).unwrap();
        let level1: Vec<_> = out.at_level(1).collect();
        assert!(!level1.is_empty());
        let first = &out.frequent[0];
        assert_eq!(out.match_of(&first.pattern), Some(first.match_estimate));
        assert!(out.stats.total_time() >= out.stats.phase1_time);
    }
}
