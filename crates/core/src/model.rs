//! Versioned pattern models — the serving-side artifact of a mining run.
//!
//! A [`PatternModel`] freezes everything the online match-serving layer
//! needs to classify new sequences exactly as the offline miner would:
//! the alphabet, the compatibility matrix, the mined frequent patterns
//! with their match estimates and provenance, the mining threshold, and
//! the compiled [`CandidateTrie`] metadata (node count) used to verify
//! that a reloaded model compiles to the same kernel shape.
//!
//! The model has a hand-rolled little-endian binary payload
//! ([`PatternModel::encode`] / [`PatternModel::decode`]) that is
//! **byte-stable**: encoding the same model twice yields identical bytes,
//! so artifact checksums are meaningful. Framing (magic, format version,
//! CRC32C integrity) is layered on top by the serving crate's `NMMODEL`
//! file format; this module is only the payload.
//!
//! [`CandidateTrie`]: crate::match_kernel::CandidateTrie

use crate::alphabet::{Alphabet, Symbol};
use crate::error::{Error, Result};
use crate::match_kernel::CandidateTrie;
use crate::matrix::CompatibilityMatrix;
use crate::miner::{MineOutcome, Provenance};
use crate::pattern::{Pattern, PatternElem};

/// Version of the payload encoding itself (bumped on layout changes;
/// distinct from [`PatternModel::version`], which identifies the *data*
/// the model was mined from).
pub const PAYLOAD_VERSION: u32 = 1;

/// One mined pattern as frozen into a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Best available match estimate at mining time (Def 3.7).
    pub match_estimate: f64,
    /// How the miner established the pattern.
    pub provenance: Provenance,
}

/// A complete, self-contained pattern model.
///
/// Equality of two models is equality of their canonical payloads
/// (compare [`PatternModel::encode`] outputs — the encoding is
/// byte-stable).
#[derive(Debug, Clone)]
pub struct PatternModel {
    /// Monotone model version (e.g. the stream position it was mined at).
    pub version: u64,
    /// The mining threshold the patterns were frequent at.
    pub min_match: f64,
    /// The alphabet the patterns and matrix are expressed over.
    pub alphabet: Alphabet,
    /// The compatibility matrix used for matching.
    pub matrix: CompatibilityMatrix,
    /// The mined frequent patterns.
    pub patterns: Vec<ModelPattern>,
    /// Node count of the compiled [`CandidateTrie`] at write time; checked
    /// on load so a decoded model provably compiles to the same kernel.
    pub trie_nodes: u64,
}

impl PatternModel {
    /// Freezes a mining outcome into a model.
    ///
    /// Compiles the [`CandidateTrie`] once to record its node count as
    /// integrity metadata.
    pub fn from_outcome(
        outcome: &MineOutcome,
        alphabet: &Alphabet,
        matrix: &CompatibilityMatrix,
        min_match: f64,
        version: u64,
    ) -> Self {
        let patterns: Vec<ModelPattern> = outcome
            .frequent
            .iter()
            .map(|f| ModelPattern {
                pattern: f.pattern.clone(),
                match_estimate: f.match_estimate,
                provenance: f.provenance,
            })
            .collect();
        let plain: Vec<Pattern> = patterns.iter().map(|p| p.pattern.clone()).collect();
        let trie_nodes = if plain.is_empty() {
            0
        } else {
            CandidateTrie::new(&plain).num_nodes() as u64
        };
        Self {
            version,
            min_match,
            alphabet: alphabet.clone(),
            matrix: matrix.clone(),
            patterns,
            trie_nodes,
        }
    }

    /// The bare patterns, in model order (the order kernel outputs use).
    pub fn plain_patterns(&self) -> Vec<Pattern> {
        self.patterns.iter().map(|p| p.pattern.clone()).collect()
    }

    /// Serializes the model to its canonical binary payload.
    ///
    /// Deterministic: the same model always yields the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        put_u32(&mut out, PAYLOAD_VERSION);
        put_u64(&mut out, self.version);
        put_f64(&mut out, self.min_match);
        // Alphabet: names in symbol order.
        let m = self.alphabet.len();
        put_u32(&mut out, m as u32);
        for (_, name) in self.alphabet.iter() {
            let bytes = name.as_bytes();
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        // Matrix: sparse columns (observed-major), entries in stored order.
        for j in 0..m {
            let col = self.matrix.column(Symbol(j as u16));
            put_u32(&mut out, col.len() as u32);
            for &(sym, w) in col {
                put_u16(&mut out, sym.0);
                put_f64(&mut out, w);
            }
        }
        // Patterns.
        put_u32(&mut out, self.patterns.len() as u32);
        for mp in &self.patterns {
            let elems = mp.pattern.elems();
            put_u32(&mut out, elems.len() as u32);
            for e in elems {
                match e {
                    PatternElem::Any => out.push(0),
                    PatternElem::Sym(s) => {
                        out.push(1);
                        put_u16(&mut out, s.0);
                    }
                }
            }
            put_f64(&mut out, mp.match_estimate);
            out.push(match mp.provenance {
                Provenance::SampleConfident => 0,
                Provenance::Verified => 1,
                Provenance::Implied => 2,
            });
        }
        put_u64(&mut out, self.trie_nodes);
        out
    }

    /// Decodes a payload produced by [`PatternModel::encode`].
    ///
    /// Every failure carries a description of what was malformed and
    /// where. The compiled trie's node count is re-derived and checked
    /// against the stored metadata.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let payload_version = r.u32("payload version")?;
        if payload_version != PAYLOAD_VERSION {
            return Err(model_err(format!(
                "unsupported model payload version {payload_version} (this build reads {PAYLOAD_VERSION})"
            )));
        }
        let version = r.u64("model version")?;
        let min_match = r.f64("min_match")?;
        if !(0.0..=1.0).contains(&min_match) {
            return Err(model_err(format!("min_match {min_match} outside [0, 1]")));
        }
        let m = r.u32("alphabet size")? as usize;
        if m == 0 || m > usize::from(u16::MAX) + 1 {
            return Err(model_err(format!("alphabet size {m} out of range")));
        }
        let mut names = Vec::with_capacity(m);
        for i in 0..m {
            let len = r.u32("symbol name length")? as usize;
            if len > 4096 {
                return Err(model_err(format!(
                    "symbol {i} name length {len} exceeds the 4096-byte cap"
                )));
            }
            let raw = r.bytes(len, "symbol name")?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| model_err(format!("symbol {i} name is not valid UTF-8")))?;
            names.push(name.to_string());
        }
        let alphabet = Alphabet::new(names)?;
        let mut columns = Vec::with_capacity(m);
        for j in 0..m {
            let entries = r.u32("matrix column entry count")? as usize;
            if entries > m {
                return Err(model_err(format!(
                    "matrix column {j} has {entries} entries for an alphabet of {m}"
                )));
            }
            let mut col = Vec::with_capacity(entries);
            for _ in 0..entries {
                let sym = r.u16("matrix entry symbol")?;
                let w = r.f64("matrix entry weight")?;
                col.push((Symbol(sym), w));
            }
            columns.push(col);
        }
        let matrix = CompatibilityMatrix::scores_from_sparse_columns(columns)?;
        let count = r.u32("pattern count")? as usize;
        let mut patterns = Vec::with_capacity(count.min(1 << 20));
        for i in 0..count {
            let elems_len = r.u32("pattern length")? as usize;
            if elems_len == 0 || elems_len > 1 << 20 {
                return Err(model_err(format!(
                    "pattern {i} length {elems_len} out of range"
                )));
            }
            let mut elems = Vec::with_capacity(elems_len);
            for _ in 0..elems_len {
                match r.u8("pattern element tag")? {
                    0 => elems.push(PatternElem::Any),
                    1 => {
                        let s = r.u16("pattern symbol")?;
                        if usize::from(s) >= m {
                            return Err(model_err(format!(
                                "pattern {i} references symbol id {s} outside the {m}-symbol alphabet"
                            )));
                        }
                        elems.push(PatternElem::Sym(Symbol(s)));
                    }
                    t => {
                        return Err(model_err(format!(
                            "pattern {i} has unknown element tag {t}"
                        )))
                    }
                }
            }
            let pattern = Pattern::new(elems)?;
            let match_estimate = r.f64("match estimate")?;
            let provenance = match r.u8("provenance tag")? {
                0 => Provenance::SampleConfident,
                1 => Provenance::Verified,
                2 => Provenance::Implied,
                t => {
                    return Err(model_err(format!(
                        "pattern {i} has unknown provenance tag {t}"
                    )))
                }
            };
            patterns.push(ModelPattern {
                pattern,
                match_estimate,
                provenance,
            });
        }
        let trie_nodes = r.u64("trie node count")?;
        r.finish()?;
        let model = Self {
            version,
            min_match,
            alphabet,
            matrix,
            patterns,
            trie_nodes,
        };
        let plain = model.plain_patterns();
        let actual = if plain.is_empty() {
            0
        } else {
            CandidateTrie::new(&plain).num_nodes() as u64
        };
        if actual != model.trie_nodes {
            return Err(model_err(format!(
                "compiled trie has {actual} nodes but the model metadata recorded {}",
                model.trie_nodes
            )));
        }
        Ok(model)
    }
}

fn model_err(msg: String) -> Error {
    Error::InvalidConfig(format!("pattern model: {msg}"))
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked little-endian payload reader with contextual errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(model_err(format!(
                "truncated while reading {what} at byte {} (need {n} bytes, {} left)",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.bytes(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(model_err(format!(
                "{} trailing bytes after the model payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Border;
    use crate::miner::{FrequentPattern, MineStats};

    fn sample_model() -> PatternModel {
        let alphabet = Alphabet::synthetic(6);
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.2)
            .unwrap()
            .diagonal_normalized_clamped()
            .unwrap();
        let p1 = Pattern::contiguous(&[Symbol(0), Symbol(1), Symbol(2)]).unwrap();
        let p2 = Pattern::new(vec![
            PatternElem::Sym(Symbol(3)),
            PatternElem::Any,
            PatternElem::Sym(Symbol(4)),
        ])
        .unwrap();
        let outcome = MineOutcome {
            frequent: vec![
                FrequentPattern {
                    pattern: p1,
                    match_estimate: 0.625,
                    provenance: Provenance::Verified,
                },
                FrequentPattern {
                    pattern: p2,
                    match_estimate: 0.1875,
                    provenance: Provenance::Implied,
                },
            ],
            border: Border::default(),
            symbol_match: vec![0.5; 6],
            stats: MineStats::default(),
        };
        PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.125, 42)
    }

    #[test]
    fn encode_is_byte_stable() {
        let model = sample_model();
        assert_eq!(model.encode(), model.encode());
    }

    #[test]
    fn round_trips_exactly() {
        let model = sample_model();
        let bytes = model.encode();
        let back = PatternModel::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.version, model.version);
        assert_eq!(back.patterns.len(), model.patterns.len());
    }

    #[test]
    fn round_trips_non_stochastic_matrix() {
        // diagonal_normalized produces a *score* matrix whose columns do
        // not sum to 1 — the payload must survive it.
        let model = sample_model();
        assert!(PatternModel::decode(&model.encode()).is_ok());
    }

    #[test]
    fn rejects_truncation_with_context() {
        let model = sample_model();
        let bytes = model.encode();
        let err = PatternModel::decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let model = sample_model();
        let mut bytes = model.encode();
        bytes.extend_from_slice(&[0, 1, 2]);
        let err = PatternModel::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_wrong_trie_metadata() {
        let model = sample_model();
        let mut bytes = model.encode();
        let n = bytes.len();
        // trie_nodes is the final u64; nudge it.
        bytes[n - 8] ^= 1;
        let err = PatternModel::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trie"), "{err}");
    }

    #[test]
    fn rejects_unknown_payload_version() {
        let model = sample_model();
        let mut bytes = model.encode();
        bytes[0] = 99;
        let err = PatternModel::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("payload version"), "{err}");
    }

    #[test]
    fn empty_pattern_set_round_trips() {
        let alphabet = Alphabet::synthetic(3);
        let matrix = CompatibilityMatrix::identity(3);
        let outcome = MineOutcome {
            frequent: Vec::new(),
            border: Border::default(),
            symbol_match: vec![0.0; 3],
            stats: MineStats::default(),
        };
        let model = PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.5, 1);
        assert_eq!(model.trie_nodes, 0);
        let back = PatternModel::decode(&model.encode()).unwrap();
        assert_eq!(back.encode(), model.encode());
    }
}
