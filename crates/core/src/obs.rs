//! Metric handles for the core crate's instrumentation.
//!
//! Each function lazily registers one metric in the process-wide
//! [`noisemine_obs::global`] registry and caches the `Arc`-backed handle in
//! a `OnceLock`, so hot paths pay one relaxed atomic load per record call
//! (plus nothing at all while recording is disabled — see
//! [`noisemine_obs::enabled`]). Every metric defined here is documented in
//! `docs/OBSERVABILITY.md` with the paper quantity it corresponds to.
//!
//! Instrumentation is strictly observational: nothing read from these
//! metrics ever feeds back into a mining computation, which is what keeps
//! an instrumented run bit-identical to an uninstrumented one.

use noisemine_obs::{self as obs, Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static H: OnceLock<Counter> = OnceLock::new();
            H.get_or_init(|| obs::counter($name, $help, $unit))
        }
    };
}

macro_rules! gauge {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Gauge {
            static H: OnceLock<Gauge> = OnceLock::new();
            H.get_or_init(|| obs::gauge($name, $help, $unit))
        }
    };
}

macro_rules! duration_histogram {
    ($fn_name:ident, $name:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Histogram {
            static H: OnceLock<Histogram> = OnceLock::new();
            H.get_or_init(|| obs::histogram($name, $help, "seconds", obs::duration_buckets()))
        }
    };
}

// Phase spans (Algorithms 4.1 / 4.2 / 4.3-4.4).
duration_histogram!(
    phase1_seconds,
    "core_phase1_seconds",
    "Wall-clock time of phase 1: the single symbol-match + sampling scan (Algorithm 4.1)"
);
duration_histogram!(
    phase2_seconds,
    "core_phase2_seconds",
    "Wall-clock time of phase 2: Chernoff classification of the sample (Algorithm 4.2)"
);
duration_histogram!(
    phase3_seconds,
    "core_phase3_seconds",
    "Wall-clock time of phase 3: border collapsing against the full database (Algorithms 4.3/4.4)"
);

// Phase-2 classification (Algorithm 4.2, Claims 4.1/4.2).
counter!(
    candidates_frequent,
    "core_candidates_frequent_total",
    "Sample candidates labeled frequent (sample match > min_match + eps)",
    "patterns"
);
counter!(
    candidates_ambiguous,
    "core_candidates_ambiguous_total",
    "Sample candidates labeled ambiguous (within +-eps of min_match), left for phase 3",
    "patterns"
);
counter!(
    candidates_infrequent,
    "core_candidates_infrequent_total",
    "Sample candidates labeled infrequent (sample match < min_match - eps) and pruned",
    "patterns"
);
gauge!(
    chernoff_epsilon_max,
    "core_chernoff_epsilon_max",
    "Widest Chernoff half-band eps = sqrt(R^2 ln(1/delta) / 2n) used in phase 2 (Claim 4.1)",
    "match"
);
gauge!(
    restricted_spread_min,
    "core_restricted_spread_min",
    "Smallest restricted spread R (minimum per-symbol match of a candidate, Claim 4.2)",
    "match"
);

// Phase-3 border collapsing (Algorithm 4.3: O(log(len(FQT))) scans).
counter!(
    collapse_db_scans,
    "core_collapse_db_scans",
    "Full database scans performed by border collapsing (the O(log(len(FQT))) cost of Algorithm 4.3)",
    "scans"
);
counter!(
    collapse_probes,
    "core_collapse_probes_total",
    "Ambiguous patterns whose exact match was counted against the full database",
    "patterns"
);
counter!(
    collapse_layers_probed,
    "core_collapse_layers_probed_total",
    "Distinct lattice layers probed across all collapse scans (halfway, quarter-way, ...)",
    "layers"
);
counter!(
    collapse_propagated,
    "core_collapse_propagated_total",
    "Ambiguous patterns resolved by Apriori propagation alone, without counting",
    "patterns"
);
counter!(
    collapse_known_applied,
    "core_collapse_known_applied_total",
    "Pre-verified exact matches applied by collapse_with_known without any scan (incremental reuse)",
    "patterns"
);

// Batched candidate-trie match kernel (match_kernel.rs).
counter!(
    kernel_nodes_visited,
    "core_kernel_nodes_visited_total",
    "Trie nodes expanded by the batched match kernel across all windows and sequences",
    "nodes"
);
counter!(
    kernel_prunes,
    "core_kernel_prunes_total",
    "Subtrees cut by the kernel's exact best-window floor (Claim 3.1 monotonicity)",
    "subtrees"
);
gauge!(
    kernel_patterns_per_scan,
    "core_kernel_patterns_per_scan",
    "Candidate batch width of the most recent kernel-evaluated database scan",
    "patterns"
);

// Columnar SIMD kernel (match_kernel/simd.rs).
counter!(
    simd_sequences,
    "core_simd_sequences_total",
    "Sequences evaluated on the AVX2 columnar path of the simd kernel",
    "sequences"
);
counter!(
    simd_scalar_fallback,
    "core_simd_scalar_fallback_total",
    "Sequences evaluated on the portable scalar path of the simd kernel (no AVX2, Miri, or NOISEMINE_FORCE_SCALAR)",
    "sequences"
);
counter!(
    simd_lane_slots,
    "core_simd_lane_slots_total",
    "Window-lane slots processed by the columnar kernel (LANES per chunk, filled or not)",
    "lanes"
);
counter!(
    simd_lanes_filled,
    "core_simd_lanes_filled_total",
    "Window-lane slots that held a real window (the rest were tail padding)",
    "lanes"
);
gauge!(
    simd_lane_occupancy,
    "core_simd_lane_occupancy",
    "Filled-lane fraction of the most recent columnar-kernel sequence (1.0 = every lane useful)",
    "ratio"
);

// Positional symbol index skip-scans (index.rs; beyond the paper).
counter!(
    index_builds,
    "core_index_builds_total",
    "Symbol indexes built as a by-product of a phase-1 scan",
    "indexes"
);
counter!(
    index_plans_built,
    "core_index_plans_built_total",
    "Skip plans computed from the symbol index (one per indexed probe scan)",
    "plans"
);
counter!(
    index_candidates_visited,
    "core_index_candidates_visited_total",
    "Sequences evaluated by indexed scans because the skip plan marked them candidates",
    "sequences"
);
counter!(
    index_sequences_skipped,
    "core_index_sequences_skipped_total",
    "Sequences skipped by indexed scans (match provably 0.0 for every probe in the batch)",
    "sequences"
);
counter!(
    index_false_positives,
    "core_index_false_positives_total",
    "Skip-plan candidates whose every probe match still evaluated to 0.0 (index selectivity loss)",
    "sequences"
);

// Deterministic scan map-reduce (phases 1 and 3 share it).
counter!(
    scan_sequences,
    "core_scan_sequences_total",
    "Sequences streamed through the block-scan map-reduce (phase 1 + phase 3 scans)",
    "sequences"
);
counter!(
    parallel_scan_blocks,
    "parallel_scan_blocks_total",
    "Scan blocks dispatched to map-reduce workers (SCAN_BLOCK_SIZE sequences each)",
    "blocks"
);
gauge!(
    parallel_scan_workers,
    "parallel_scan_workers",
    "Worker threads used by the most recent parallel block scan",
    "threads"
);
gauge!(
    parallel_reduce_queue_peak,
    "parallel_reduce_queue_peak",
    "Peak number of in-flight blocks awaiting ordered reduction in one scan",
    "blocks"
);
