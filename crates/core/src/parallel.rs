//! Deterministic parallel match evaluation for memory-resident data.
//!
//! Phase 2 evaluates every candidate against every sample sequence — an
//! embarrassingly parallel product that dominates wall-clock time on large
//! samples. This module splits the sample into fixed-size chunks, processes
//! chunks across threads, and reduces the per-chunk partial sums **in chunk
//! order**, so results are bit-for-bit identical for any thread count
//! (including 1). Chunk boundaries are a constant, not a function of the
//! thread count, which is what makes the reduction order stable.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::matching::sequence_match;
use crate::matrix::CompatibilityMatrix;
use crate::pattern::Pattern;
use crate::Symbol;

/// Sequences per work chunk. Constant so that chunk boundaries (and thus
/// the floating-point reduction order) do not depend on the thread count.
pub const CHUNK_SIZE: usize = 64;

/// Work size (patterns × sequences) below which the serial path is used —
/// thread startup costs more than it saves.
pub const PARALLEL_THRESHOLD: usize = 50_000;

/// Sum over all sequences of each pattern's sequence match, computed with
/// up to `threads` worker threads. Returns sums (not means) aligned with
/// `patterns`. The accumulation grouping is fixed by [`CHUNK_SIZE`], not by
/// the thread count, so every thread count produces bit-identical results.
pub fn sum_sequence_matches(
    patterns: &[Pattern],
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    threads: usize,
) -> Vec<f64> {
    let p = patterns.len();
    if p == 0 || sequences.is_empty() {
        return vec![0.0; p];
    }
    let threads = threads.max(1).min(sequences.len().div_ceil(CHUNK_SIZE));
    if threads == 1 || p * sequences.len() < PARALLEL_THRESHOLD {
        // Serial path, but with the *same* chunked accumulation grouping as
        // the parallel path, so every thread count produces bit-identical
        // sums (floating-point addition is not associative).
        let mut totals = vec![0.0f64; p];
        let mut partial = vec![0.0f64; p];
        for chunk in sequences.chunks(CHUNK_SIZE) {
            partial.fill(0.0);
            accumulate(patterns, chunk, matrix, &mut partial);
            for (t, &v) in totals.iter_mut().zip(&partial) {
                *t += v;
            }
        }
        return totals;
    }

    let chunks: Vec<&[Vec<Symbol>]> = sequences.chunks(CHUNK_SIZE).collect();
    let num_chunks = chunks.len();
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Vec<f64>> = vec![Vec::new(); num_chunks];
    {
        let partial_slots: Vec<std::sync::Mutex<&mut Vec<f64>>> =
            partials.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= num_chunks {
                        break;
                    }
                    let mut totals = vec![0.0f64; p];
                    accumulate(patterns, chunks[idx], matrix, &mut totals);
                    **partial_slots[idx]
                        .lock()
                        .expect("match-evaluation worker panicked") = totals;
                });
            }
        });
    }

    // Ordered reduction: chunk 0 + chunk 1 + … regardless of which thread
    // produced each.
    let mut totals = vec![0.0f64; p];
    for partial in &partials {
        for (t, &v) in totals.iter_mut().zip(partial) {
            *t += v;
        }
    }
    totals
}

fn accumulate(
    patterns: &[Pattern],
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    totals: &mut [f64],
) {
    for seq in sequences {
        for (total, pattern) in totals.iter_mut().zip(patterns) {
            *total += sequence_match(pattern, seq, matrix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;

    fn workload() -> (Vec<Pattern>, Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let a = Alphabet::synthetic(6);
        let patterns: Vec<Pattern> = (0..6u16)
            .flat_map(|x| {
                (0..6u16).map(move |y| Pattern::contiguous(&[Symbol(x), Symbol(y)]).unwrap())
            })
            .collect();
        let sequences: Vec<Vec<Symbol>> = (0..500)
            .map(|i| {
                (0..40)
                    .map(|j| Symbol(((i * 7 + j * 3) % 6) as u16))
                    .collect()
            })
            .collect();
        let _ = a;
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.2).unwrap();
        (patterns, sequences, matrix)
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let (patterns, sequences, matrix) = workload();
        let serial = sum_sequence_matches(&patterns, &sequences, &matrix, 1);
        for threads in [2, 3, 8] {
            let parallel = sum_sequence_matches(&patterns, &sequences, &matrix, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn agrees_with_direct_computation() {
        let (patterns, sequences, matrix) = workload();
        let sums = sum_sequence_matches(&patterns, &sequences, &matrix, 4);
        for (p, &s) in patterns.iter().zip(&sums).take(5) {
            let direct: f64 = sequences
                .iter()
                .map(|seq| sequence_match(p, seq, &matrix))
                .sum();
            assert!((s - direct).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn empty_inputs() {
        let (_, sequences, matrix) = workload();
        assert!(sum_sequence_matches(&[], &sequences, &matrix, 4).is_empty());
        let (patterns, _, matrix2) = workload();
        assert_eq!(
            sum_sequence_matches(&patterns, &[], &matrix2, 4),
            vec![0.0; patterns.len()]
        );
    }

    #[test]
    fn small_work_takes_serial_path() {
        let (patterns, sequences, matrix) = workload();
        let tiny = &sequences[..2];
        let v = sum_sequence_matches(&patterns[..2], tiny, &matrix, 8);
        assert_eq!(v.len(), 2);
    }
}
