//! Deterministic parallel kernels: chunked match evaluation for
//! memory-resident data, and the block-scan map-reduce that parallelizes
//! the full-database scans of phases 1 and 3.
//!
//! Phase 2 evaluates every candidate against every sample sequence — an
//! embarrassingly parallel product that dominates wall-clock time on large
//! samples. This module splits the sample into fixed-size chunks, processes
//! chunks across threads, and reduces the per-chunk partial sums **in chunk
//! order**, so results are bit-for-bit identical for any thread count
//! (including 1). Chunk boundaries are a constant, not a function of the
//! thread count, which is what makes the reduction order stable.
//!
//! [`scan_map_reduce`] extends the same determinism contract to streaming
//! scans over a [`SequenceScan`]: the scan is cut into blocks of exactly
//! [`SCAN_BLOCK_SIZE`] sequences, per-block results are computed on worker
//! threads, and the caller receives them **in block order** — so any fold
//! over them is bit-identical at every thread count, while order-sensitive
//! work (sequential sampling) runs on the in-order block stream before the
//! fan-out.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use crate::error::ScanError;
use crate::match_kernel::{CandidateTrie, MatchKernel};
use crate::matching::{sequence_match, SequenceBlock, SequenceScan};
use crate::matrix::CompatibilityMatrix;
use crate::pattern::Pattern;
use crate::Symbol;

/// Sequences per work chunk. Constant so that chunk boundaries (and thus
/// the floating-point reduction order) do not depend on the thread count.
pub const CHUNK_SIZE: usize = 64;

/// Sequences per scan block in [`scan_map_reduce`]. Like [`CHUNK_SIZE`],
/// this is a constant so the per-block accumulation grouping — and with it
/// every floating-point result derived from a block scan — is independent
/// of machine, thread count, and backing store.
pub const SCAN_BLOCK_SIZE: usize = 256;

/// Work size (patterns × sequences) below which the serial path is used —
/// thread startup costs more than it saves.
pub const PARALLEL_THRESHOLD: usize = 50_000;

/// Resolves a thread-count knob: `0` means all available cores.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |t| t.get())
    } else {
        threads
    }
}

/// Runs a deterministic map-reduce over the blocks of one database scan.
///
/// - `inspect` runs on the scanning thread, in block order, *before* the
///   block is handed to a worker — the hook for order-sensitive work
///   (sequential sampling, visit counting).
/// - `map` runs on one of `threads` workers with that worker's private
///   scratch value (from `make_scratch`) and the block's zero-based index
///   in scan order, producing one `T` per block. The index gives the
///   ordinal of the block's first sequence (`index * block_size`) — the
///   addressing scheme of [`crate::index::SkipPlan`].
///
/// Returns the per-block results **in block order**, regardless of which
/// worker produced each or when. Block boundaries are fixed by
/// `block_size`, so the caller's fold over the results is bit-identical for
/// every thread count; with `threads <= 1` everything runs on the calling
/// thread with the same block grouping. Blocks circulate by value — worker
/// → scanner → refill — so the steady state allocates nothing and never
/// copies a sequence out of its block.
pub fn scan_map_reduce<S, W, T>(
    db: &S,
    block_size: usize,
    threads: usize,
    inspect: &mut dyn FnMut(&SequenceBlock),
    make_scratch: &(dyn Fn() -> W + Sync),
    map: &(dyn Fn(&mut W, usize, &SequenceBlock) -> T + Sync),
) -> Vec<T>
where
    S: SequenceScan + ?Sized,
    T: Send,
{
    match try_scan_map_reduce(db, block_size, threads, inspect, make_scratch, map) {
        Ok(results) => results,
        Err(e) => panic!("database scan failed: {e}"),
    }
}

/// Fallible variant of [`scan_map_reduce`]: if the underlying scan fails
/// ([`SequenceScan::try_scan_blocks`] returns `Err`), in-flight worker
/// results are drained and discarded and the scan error is returned. No
/// partial per-block results escape — a failed scan yields `Err`, never a
/// shortened result vector.
pub fn try_scan_map_reduce<S, W, T>(
    db: &S,
    block_size: usize,
    threads: usize,
    inspect: &mut dyn FnMut(&SequenceBlock),
    make_scratch: &(dyn Fn() -> W + Sync),
    map: &(dyn Fn(&mut W, usize, &SequenceBlock) -> T + Sync),
) -> Result<Vec<T>, ScanError>
where
    S: SequenceScan + ?Sized,
    T: Send,
{
    crate::obs::parallel_scan_workers().set(threads.max(1) as f64);
    if threads <= 1 {
        let mut results = Vec::new();
        let mut scratch = make_scratch();
        db.try_scan_blocks(block_size, &mut |block| {
            inspect(&block);
            crate::obs::parallel_scan_blocks().inc();
            crate::obs::scan_sequences().add(block.len() as u64);
            let idx = results.len();
            results.push(map(&mut scratch, idx, &block));
            block
        })?;
        return Ok(results);
    }

    // Everything the scoped threads borrow must be declared before the
    // scope (its implicit join happens after the closure body returns).
    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, SequenceBlock)>(threads * 2);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = mpsc::channel::<(usize, T, SequenceBlock)>();
    let mut slots: Vec<Option<T>> = Vec::new();
    let mut scanned: Result<(), ScanError> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let done_tx = done_tx.clone();
            let work_rx = &work_rx;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                loop {
                    // Lock scoped to the recv: workers contend only on the
                    // hand-off, not while mapping.
                    let received = work_rx.lock().expect("scan worker panicked").recv();
                    let Ok((idx, block)) = received else { break };
                    let value = map(&mut scratch, idx, &block);
                    if done_tx.send((idx, value, block)).is_err() {
                        break;
                    }
                }
            });
        }
        // Workers hold their own clones; drop ours so `done_rx` disconnects
        // once they all finish.
        drop(done_tx);

        let mut next = 0usize;
        let mut completed = 0usize;
        let mut spare: Vec<SequenceBlock> = Vec::new();
        scanned = db.try_scan_blocks(block_size, &mut |block| {
            inspect(&block);
            crate::obs::parallel_scan_blocks().inc();
            crate::obs::scan_sequences().add(block.len() as u64);
            work_tx
                .send((next, block))
                .expect("scan workers exited early");
            next += 1;
            // Opportunistically collect finished results and recycle their
            // blocks back into the scan.
            while let Ok((idx, value, recycled)) = done_rx.try_recv() {
                store(&mut slots, idx, value);
                completed += 1;
                spare.push(recycled);
            }
            crate::obs::parallel_reduce_queue_peak().set_max((next - completed) as f64);
            spare.pop().unwrap_or_default()
        });
        // Closing the work channel ends the worker loops; drain whatever is
        // still in flight (even after a failed scan, so workers shut down
        // cleanly before the scope's implicit join).
        drop(work_tx);
        for (idx, value, _) in done_rx.iter() {
            store(&mut slots, idx, value);
        }
    });
    scanned?;
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("scan worker produced no result for a block"))
        .collect())
}

fn store<T>(slots: &mut Vec<Option<T>>, idx: usize, value: T) {
    if slots.len() <= idx {
        slots.resize_with(idx + 1, || None);
    }
    slots[idx] = Some(value);
}

/// Sum over all sequences of each pattern's sequence match, computed with
/// up to `threads` worker threads. Returns sums (not means) aligned with
/// `patterns`. The accumulation grouping is fixed by [`CHUNK_SIZE`], not by
/// the thread count, so every thread count produces bit-identical results.
/// Equivalent to [`sum_sequence_matches_kernel`] with the default kernel.
pub fn sum_sequence_matches(
    patterns: &[Pattern],
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    threads: usize,
) -> Vec<f64> {
    sum_sequence_matches_kernel(patterns, sequences, matrix, threads, MatchKernel::default())
}

/// [`sum_sequence_matches`] with an explicit [`MatchKernel`] choice.
///
/// With [`MatchKernel::Trie`] the pattern batch is loaded into one
/// [`CandidateTrie`] shared read-only by every worker (each with private
/// scratch). Per-(pattern, sequence) values are bit-identical to
/// [`sequence_match`] and the [`CHUNK_SIZE`] accumulation grouping is
/// unchanged, so both kernels produce bit-identical sums at every thread
/// count.
pub fn sum_sequence_matches_kernel(
    patterns: &[Pattern],
    sequences: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    threads: usize,
    kernel: MatchKernel,
) -> Vec<f64> {
    let p = patterns.len();
    if p == 0 || sequences.is_empty() {
        return vec![0.0; p];
    }
    let trie = match kernel {
        MatchKernel::Naive => None,
        MatchKernel::Trie | MatchKernel::Simd => {
            crate::obs::kernel_patterns_per_scan().set(p as f64);
            Some(CandidateTrie::new(patterns))
        }
    };
    // One reusable evaluation context per worker thread.
    let make_eval = || EvalContext::new(patterns, matrix, trie.as_ref(), kernel);
    let threads = threads.max(1).min(sequences.len().div_ceil(CHUNK_SIZE));
    if threads == 1 || p * sequences.len() < PARALLEL_THRESHOLD {
        // Serial path, but with the *same* chunked accumulation grouping as
        // the parallel path, so every thread count produces bit-identical
        // sums (floating-point addition is not associative).
        let mut eval = make_eval();
        let mut totals = vec![0.0f64; p];
        let mut partial = vec![0.0f64; p];
        for chunk in sequences.chunks(CHUNK_SIZE) {
            partial.fill(0.0);
            eval.accumulate(chunk, &mut partial);
            for (t, &v) in totals.iter_mut().zip(&partial) {
                *t += v;
            }
        }
        return totals;
    }

    let chunks: Vec<&[Vec<Symbol>]> = sequences.chunks(CHUNK_SIZE).collect();
    let num_chunks = chunks.len();
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Vec<f64>> = vec![Vec::new(); num_chunks];
    {
        let partial_slots: Vec<std::sync::Mutex<&mut Vec<f64>>> =
            partials.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut eval = make_eval();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= num_chunks {
                            break;
                        }
                        let mut totals = vec![0.0f64; p];
                        eval.accumulate(chunks[idx], &mut totals);
                        **partial_slots[idx]
                            .lock()
                            .expect("match-evaluation worker panicked") = totals;
                    }
                });
            }
        });
    }

    // Ordered reduction: chunk 0 + chunk 1 + … regardless of which thread
    // produced each.
    let mut totals = vec![0.0f64; p];
    for partial in &partials {
        for (t, &v) in totals.iter_mut().zip(partial) {
            *t += v;
        }
    }
    totals
}

/// One worker's evaluation state: either the naive per-pattern loop or a
/// shared [`CandidateTrie`] plus this worker's private scratch.
enum EvalContext<'a> {
    Naive {
        patterns: &'a [Pattern],
        matrix: &'a CompatibilityMatrix,
    },
    Trie {
        trie: &'a CandidateTrie,
        matrix: &'a CompatibilityMatrix,
        scratch: crate::match_kernel::TrieScratch,
        out: Vec<f64>,
    },
    Simd {
        trie: &'a CandidateTrie,
        matrix: &'a CompatibilityMatrix,
        scratch: crate::match_kernel::simd::SimdScratch,
        out: Vec<f64>,
    },
}

impl<'a> EvalContext<'a> {
    fn new(
        patterns: &'a [Pattern],
        matrix: &'a CompatibilityMatrix,
        trie: Option<&'a CandidateTrie>,
        kernel: MatchKernel,
    ) -> Self {
        match trie {
            None => Self::Naive { patterns, matrix },
            Some(trie) if kernel == MatchKernel::Simd => Self::Simd {
                trie,
                matrix,
                scratch: trie.simd_scratch(),
                out: vec![0.0; trie.num_patterns()],
            },
            Some(trie) => Self::Trie {
                trie,
                matrix,
                scratch: trie.scratch(),
                out: vec![0.0; trie.num_patterns()],
            },
        }
    }

    /// Adds each pattern's sequence match over `sequences` into `totals`,
    /// in sequence order — the same addition order for both variants.
    fn accumulate(&mut self, sequences: &[Vec<Symbol>], totals: &mut [f64]) {
        match self {
            Self::Naive { patterns, matrix } => {
                for seq in sequences {
                    for (total, pattern) in totals.iter_mut().zip(*patterns) {
                        *total += sequence_match(pattern, seq, matrix);
                    }
                }
            }
            Self::Trie {
                trie,
                matrix,
                scratch,
                out,
            } => {
                for seq in sequences {
                    trie.batch_sequence_match(seq, matrix, scratch, out);
                    for (total, &v) in totals.iter_mut().zip(out.iter()) {
                        *total += v;
                    }
                }
            }
            Self::Simd {
                trie,
                matrix,
                scratch,
                out,
            } => {
                for seq in sequences {
                    trie.batch_sequence_match_columnar(seq, matrix, scratch, out);
                    for (total, &v) in totals.iter_mut().zip(out.iter()) {
                        *total += v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;

    fn workload() -> (Vec<Pattern>, Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let a = Alphabet::synthetic(6);
        let patterns: Vec<Pattern> = (0..6u16)
            .flat_map(|x| {
                (0..6u16).map(move |y| Pattern::contiguous(&[Symbol(x), Symbol(y)]).unwrap())
            })
            .collect();
        let sequences: Vec<Vec<Symbol>> = (0..500)
            .map(|i| {
                (0..40)
                    .map(|j| Symbol(((i * 7 + j * 3) % 6) as u16))
                    .collect()
            })
            .collect();
        let _ = a;
        let matrix = CompatibilityMatrix::uniform_noise(6, 0.2).unwrap();
        (patterns, sequences, matrix)
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let (patterns, sequences, matrix) = workload();
        let serial = sum_sequence_matches(&patterns, &sequences, &matrix, 1);
        for threads in [2, 3, 8] {
            let parallel = sum_sequence_matches(&patterns, &sequences, &matrix, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn agrees_with_direct_computation() {
        let (patterns, sequences, matrix) = workload();
        let sums = sum_sequence_matches(&patterns, &sequences, &matrix, 4);
        for (p, &s) in patterns.iter().zip(&sums).take(5) {
            let direct: f64 = sequences
                .iter()
                .map(|seq| sequence_match(p, seq, &matrix))
                .sum();
            assert!((s - direct).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn empty_inputs() {
        let (_, sequences, matrix) = workload();
        assert!(sum_sequence_matches(&[], &sequences, &matrix, 4).is_empty());
        let (patterns, _, matrix2) = workload();
        assert_eq!(
            sum_sequence_matches(&patterns, &[], &matrix2, 4),
            vec![0.0; patterns.len()]
        );
    }

    #[test]
    fn small_work_takes_serial_path() {
        let (patterns, sequences, matrix) = workload();
        let tiny = &sequences[..2];
        let v = sum_sequence_matches(&patterns[..2], tiny, &matrix, 8);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn scan_map_reduce_returns_results_in_block_order() {
        let db = crate::matching::MemorySequences(
            (0..1000u16).map(|i| vec![Symbol(i % 6); 2]).collect(),
        );
        for threads in [1, 2, 3, 8] {
            let mut inspected = Vec::new();
            let ids = scan_map_reduce(
                &db,
                64,
                threads,
                &mut |block| inspected.push(block.get(0).0),
                &|| (),
                &|_, _, block| block.iter().map(|(id, _)| id).collect::<Vec<u64>>(),
            );
            let flat: Vec<u64> = ids.into_iter().flatten().collect();
            assert_eq!(
                flat,
                (0..1000u64).collect::<Vec<_>>(),
                "threads = {threads}"
            );
            // `inspect` saw every block first symbol, in scan order.
            assert_eq!(inspected, (0..1000u64).step_by(64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scan_map_reduce_serial_and_parallel_agree_bitwise() {
        let (_, sequences, matrix) = workload();
        let db = crate::matching::MemorySequences(sequences);
        let pattern = Pattern::contiguous(&[Symbol(1), Symbol(2)]).unwrap();
        let run = |threads: usize| -> Vec<f64> {
            scan_map_reduce(
                &db,
                SCAN_BLOCK_SIZE,
                threads,
                &mut |_| {},
                &|| (),
                &|_, _, block| {
                    block
                        .iter()
                        .map(|(_, seq)| sequence_match(&pattern, seq, &matrix))
                        .sum::<f64>()
                },
            )
        };
        let serial = run(1);
        for threads in [2, 4, 16] {
            assert_eq!(serial, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn scan_map_reduce_on_empty_db() {
        let db = crate::matching::MemorySequences(Vec::new());
        let out = scan_map_reduce(&db, 8, 4, &mut |_| {}, &|| (), &|_, _, block| block.len());
        assert!(out.is_empty());
    }
}
