//! Sequential patterns with the eternal ("don't care") symbol `*`.
//!
//! A pattern of length `l` is a list of `l` positions, each either a concrete
//! symbol from the alphabet or the eternal symbol `*` (Definition 3.2). The
//! eternal symbol matches any single observed symbol and enables fixed-length
//! gaps — e.g. the Zinc Finger transcription-factor signature
//! `C**C************H**H` from Section 3. A pattern with `k` concrete
//! symbols is called a *k-pattern*; neither the first nor the last position
//! may be eternal.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::alphabet::{Alphabet, Symbol};
use crate::error::{Error, Result};

/// One position of a pattern: a concrete symbol or the eternal symbol `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternElem {
    /// The eternal ("don't care") symbol, written `*`.
    Any,
    /// A concrete symbol.
    Sym(Symbol),
}

impl PatternElem {
    /// `true` for the eternal symbol.
    #[inline]
    pub fn is_any(self) -> bool {
        matches!(self, PatternElem::Any)
    }

    /// The concrete symbol, if any.
    #[inline]
    pub fn symbol(self) -> Option<Symbol> {
        match self {
            PatternElem::Any => None,
            PatternElem::Sym(s) => Some(s),
        }
    }
}

/// A sequential pattern (Definition 3.2).
///
/// Invariants, enforced by every constructor:
/// - the pattern is non-empty;
/// - the first and last positions are concrete symbols (the paper excludes
///   "trivial" patterns that start or end with `*`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pattern {
    elems: Vec<PatternElem>,
}

impl Pattern {
    /// Builds a pattern from raw elements, validating the invariants.
    pub fn new(elems: Vec<PatternElem>) -> Result<Self> {
        match (elems.first(), elems.last()) {
            (None, _) => Err(Error::InvalidPattern("pattern is empty".into())),
            (Some(PatternElem::Any), _) | (_, Some(PatternElem::Any)) => Err(
                Error::InvalidPattern("pattern must not start or end with '*'".into()),
            ),
            _ => Ok(Self { elems }),
        }
    }

    /// Builds a single-symbol pattern.
    pub fn single(symbol: Symbol) -> Self {
        Self {
            elems: vec![PatternElem::Sym(symbol)],
        }
    }

    /// Builds a contiguous (gap-free) pattern from symbols.
    pub fn contiguous(symbols: &[Symbol]) -> Result<Self> {
        Self::new(symbols.iter().map(|&s| PatternElem::Sym(s)).collect())
    }

    /// Builds a pattern from elements, trimming any leading/trailing `*`
    /// produced by symbol removal. Returns `None` if no concrete symbol
    /// remains.
    pub fn trimmed(elems: &[PatternElem]) -> Option<Self> {
        let first = elems.iter().position(|e| !e.is_any())?;
        let last = elems.iter().rposition(|e| !e.is_any())?;
        Some(Self {
            elems: elems[first..=last].to_vec(),
        })
    }

    /// Parses a pattern from text.
    ///
    /// Two syntaxes are accepted, mirroring [`Alphabet::encode`]:
    /// - whitespace-separated tokens, where each token is a symbol name or
    ///   `*` (e.g. `"d1 * d3"`);
    /// - a contiguous string of single-character names and `*` / `.`
    ///   (e.g. `"C**C************H**H"`).
    pub fn parse(text: &str, alphabet: &Alphabet) -> Result<Self> {
        let elems: Vec<PatternElem> = if text.contains(char::is_whitespace) {
            text.split_whitespace()
                .map(|tok| {
                    if tok == "*" || tok == "." {
                        Ok(PatternElem::Any)
                    } else {
                        alphabet.symbol(tok).map(PatternElem::Sym)
                    }
                })
                .collect::<Result<_>>()?
        } else if let Ok(sym) = alphabet.symbol(text) {
            // A single multi-character name like "d12".
            vec![PatternElem::Sym(sym)]
        } else {
            text.chars()
                .map(|c| {
                    if c == '*' || c == '.' {
                        Ok(PatternElem::Any)
                    } else {
                        alphabet.symbol(&c.to_string()).map(PatternElem::Sym)
                    }
                })
                .collect::<Result<_>>()?
        };
        Self::new(elems).map_err(|e| Error::PatternParse(format!("{text:?}: {e}")))
    }

    /// Renders the pattern using the alphabet's symbol names.
    pub fn display(&self, alphabet: &Alphabet) -> Result<String> {
        let tokens: Vec<String> = self
            .elems
            .iter()
            .map(|e| match e {
                PatternElem::Any => Ok("*".to_string()),
                PatternElem::Sym(s) => alphabet.name(*s).map(str::to_string),
            })
            .collect::<Result<_>>()?;
        let single_char = tokens.iter().all(|t| t.chars().count() == 1);
        Ok(if single_char {
            tokens.concat()
        } else {
            tokens.join(" ")
        })
    }

    /// Total length `l` of the pattern, counting eternal positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// `true` if the pattern has no positions (never holds for a valid
    /// pattern; provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Number of concrete (non-eternal) symbols `k`; the pattern is a
    /// *k-pattern* (Definition 3.2).
    #[inline]
    pub fn non_eternal_count(&self) -> usize {
        self.elems.iter().filter(|e| !e.is_any()).count()
    }

    /// The pattern's positions.
    #[inline]
    pub fn elems(&self) -> &[PatternElem] {
        &self.elems
    }

    /// Iterates over the concrete symbols, left to right.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.elems.iter().filter_map(|e| e.symbol())
    }

    /// Positions (indices) of the concrete symbols.
    pub fn symbol_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.elems
            .iter()
            .enumerate()
            .filter_map(|(i, e)| (!e.is_any()).then_some(i))
    }

    /// Length of the longest run of consecutive `*` positions (the largest
    /// gap in the pattern). `0` for contiguous patterns.
    pub fn max_gap(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for e in &self.elems {
            if e.is_any() {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// Extends the pattern on the right with `gap` eternal symbols followed
    /// by one concrete symbol — the level-wise candidate-generation step.
    pub fn extend(&self, gap: usize, symbol: Symbol) -> Self {
        let mut elems = Vec::with_capacity(self.elems.len() + gap + 1);
        elems.extend_from_slice(&self.elems);
        elems.extend(std::iter::repeat_n(PatternElem::Any, gap));
        elems.push(PatternElem::Sym(symbol));
        Self { elems }
    }

    /// Whether `self` is a subpattern of `other` (Definition 3.3): there is
    /// an alignment offset `j` such that every position of `self` is either
    /// `*` or equals the corresponding position of `other`.
    ///
    /// Every pattern is a subpattern of itself.
    pub fn is_subpattern_of(&self, other: &Pattern) -> bool {
        self.alignments_in(other).next().is_some()
    }

    /// Whether `self` is a superpattern of `other` (Definition 3.3).
    pub fn is_superpattern_of(&self, other: &Pattern) -> bool {
        other.is_subpattern_of(self)
    }

    /// All alignment offsets `j` at which `self` embeds into `other`
    /// (Definition 3.3). Empty when `self` is not a subpattern of `other`.
    pub fn alignments_in<'a>(&'a self, other: &'a Pattern) -> impl Iterator<Item = usize> + 'a {
        let (l, l2) = (self.len(), other.len());
        (0..=(l2.saturating_sub(l))).filter(move |&j| {
            l <= l2
                && self.elems.iter().enumerate().all(|(i, e)| match e {
                    PatternElem::Any => true,
                    PatternElem::Sym(_) => *e == other.elems[i + j],
                })
        })
    }

    /// The immediate subpatterns of `self`: every pattern obtained by
    /// replacing exactly one concrete symbol with `*` and trimming leading /
    /// trailing `*` (Definition 3.3, used for the Apriori check). A
    /// 1-pattern has no immediate subpatterns.
    pub fn immediate_subpatterns(&self) -> Vec<Pattern> {
        if self.non_eternal_count() <= 1 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for pos in self.symbol_positions().collect::<Vec<_>>() {
            let mut elems = self.elems.clone();
            elems[pos] = PatternElem::Any;
            if let Some(p) = Pattern::trimmed(&elems) {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Enumerates every pattern `Q` with exactly `k` concrete symbols such
    /// that `self ⊑ Q ⊑ sup` — the halfway-pattern generator of
    /// Algorithm 4.4 when `k = ⌈(k₁+k₂)/2⌉`.
    ///
    /// For each alignment of `self` inside `sup`, the intermediate patterns
    /// keep all of `self`'s concrete symbols and restore `k - k₁` of `sup`'s
    /// remaining concrete positions, then trim.
    pub fn between(&self, sup: &Pattern, k: usize) -> Vec<Pattern> {
        let k1 = self.non_eternal_count();
        let k2 = sup.non_eternal_count();
        if k < k1 || k > k2 {
            return Vec::new();
        }
        let mut out: Vec<Pattern> = Vec::new();
        for j in self.alignments_in(sup).collect::<Vec<_>>() {
            // Positions of `sup` carrying a concrete symbol not used by
            // `self` under this alignment.
            let used: Vec<bool> = {
                let mut used = vec![false; sup.len()];
                for (i, e) in self.elems.iter().enumerate() {
                    if !e.is_any() {
                        used[i + j] = true;
                    }
                }
                used
            };
            let extra: Vec<usize> = sup.symbol_positions().filter(|&p| !used[p]).collect();
            let need = k - k1;
            if need > extra.len() {
                continue;
            }
            // Base skeleton: only `self`'s symbols placed at `sup` coordinates.
            let mut base = vec![PatternElem::Any; sup.len()];
            for (i, e) in self.elems.iter().enumerate() {
                if !e.is_any() {
                    base[i + j] = *e;
                }
            }
            for combo in combinations(&extra, need) {
                let mut elems = base.clone();
                for &p in &combo {
                    elems[p] = sup.elems[p];
                }
                if let Some(pat) = Pattern::trimmed(&elems) {
                    if !out.contains(&pat) {
                        out.push(pat);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Pattern {
    /// Renders using the synthetic `dᵢ` notation, space-separated — matches
    /// the paper's figures (e.g. `d1 * d3`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match e {
                PatternElem::Any => write!(f, "*")?,
                PatternElem::Sym(s) => write!(f, "{s}")?,
            }
        }
        Ok(())
    }
}

/// All `choose`-element combinations of `items`, preserving order.
fn combinations(items: &[usize], choose: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(choose);
    fn rec(
        items: &[usize],
        choose: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == choose {
            out.push(cur.clone());
            return;
        }
        let remaining = choose - cur.len();
        for i in start..items.len() {
            if items.len() - i < remaining {
                break;
            }
            cur.push(items[i]);
            rec(items, choose, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(items, choose, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(text: &str) -> Pattern {
        let a = Alphabet::synthetic(10);
        Pattern::parse(text, &a).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let p = pat("d1 * d3 d4 d5");
        assert_eq!(p.to_string(), "d1 * d3 d4 d5");
        assert_eq!(p.len(), 5);
        assert_eq!(p.non_eternal_count(), 4);
    }

    #[test]
    fn parse_contiguous_amino_style() {
        let a = Alphabet::amino_acids();
        let p = Pattern::parse("C**C************H**H", &a).unwrap();
        assert_eq!(p.len(), 20);
        assert_eq!(p.non_eternal_count(), 4);
        assert_eq!(p.max_gap(), 12);
        assert_eq!(p.display(&a).unwrap(), "C**C************H**H");
    }

    #[test]
    fn rejects_leading_or_trailing_star() {
        let a = Alphabet::synthetic(3);
        assert!(Pattern::parse("* d1", &a).is_err());
        assert!(Pattern::parse("d1 *", &a).is_err());
        assert!(Pattern::new(vec![]).is_err());
    }

    #[test]
    fn paper_subpattern_examples() {
        // "d1*d3 and d1**d4d5 are subpatterns of d1*d3d4d5 but d1d2 is not."
        let sup = pat("d1 * d3 d4 d5");
        assert!(pat("d1 * d3").is_subpattern_of(&sup));
        assert!(pat("d1 * * d4 d5").is_subpattern_of(&sup));
        assert!(!pat("d1 d2").is_subpattern_of(&sup));
    }

    #[test]
    fn subpattern_allows_prefix_suffix_drop() {
        let sup = pat("d1 d2 d3 d4");
        assert!(pat("d2 d3").is_subpattern_of(&sup));
        assert!(pat("d3 d4").is_subpattern_of(&sup));
        assert!(pat("d1 d2 d3 d4").is_subpattern_of(&sup));
        assert!(!pat("d4 d3").is_subpattern_of(&sup));
    }

    #[test]
    fn subpattern_is_reflexive_and_antisymmetric_on_distinct() {
        let p = pat("d1 * d3");
        assert!(p.is_subpattern_of(&p));
        let q = pat("d1 d2 d3");
        assert!(p.is_subpattern_of(&q));
        assert!(!q.is_subpattern_of(&p));
    }

    #[test]
    fn immediate_subpatterns_trim_stars() {
        let p = pat("d1 d2 d3");
        let subs = p.immediate_subpatterns();
        // removing d1 -> d2 d3; removing d2 -> d1 * d3; removing d3 -> d1 d2
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&pat("d2 d3")));
        assert!(subs.contains(&pat("d1 * d3")));
        assert!(subs.contains(&pat("d1 d2")));
    }

    #[test]
    fn immediate_subpatterns_of_single_is_empty() {
        assert!(pat("d1").immediate_subpatterns().is_empty());
    }

    #[test]
    fn extend_appends_gap_and_symbol() {
        let p = pat("d1 d2").extend(2, Symbol(5));
        assert_eq!(p.to_string(), "d1 d2 * * d5");
        assert_eq!(p.max_gap(), 2);
    }

    #[test]
    fn between_enumerates_halfway_patterns() {
        // Figure 6(b): between d1 (k=1) and d1d2d3d4d5 (k=5), the halfway
        // (k=3) patterns are d1d2d3, d1d2*d4, d1d2**d5, d1*d3d4, d1*d3*d5,
        // d1**d4d5.
        let lo = pat("d1");
        let hi = pat("d1 d2 d3 d4 d5");
        let mid = lo.between(&hi, 3);
        let expect = [
            "d1 d2 d3",
            "d1 d2 * d4",
            "d1 d2 * * d5",
            "d1 * d3 d4",
            "d1 * d3 * d5",
            "d1 * * d4 d5",
        ];
        assert_eq!(mid.len(), expect.len());
        for e in expect {
            assert!(mid.contains(&pat(e)), "missing {e}");
        }
        // Every halfway pattern is between the endpoints.
        for p in &mid {
            assert!(lo.is_subpattern_of(p));
            assert!(p.is_subpattern_of(&hi));
            assert_eq!(p.non_eternal_count(), 3);
        }
    }

    #[test]
    fn between_endpoints_degenerate() {
        let lo = pat("d1 d2");
        let hi = pat("d1 d2 d3");
        assert_eq!(lo.between(&hi, 2), vec![lo.clone()]);
        assert_eq!(lo.between(&hi, 3), vec![hi.clone()]);
        assert!(lo.between(&hi, 4).is_empty());
    }

    #[test]
    fn trimmed_returns_none_for_all_stars() {
        assert!(Pattern::trimmed(&[PatternElem::Any, PatternElem::Any]).is_none());
    }

    #[test]
    fn combinations_basic() {
        let c = combinations(&[1, 2, 3], 2);
        assert_eq!(c, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<usize>::new()]);
    }
}
