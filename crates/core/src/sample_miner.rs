//! Phase 2: ambiguous-pattern discovery on the in-memory sample (§4.2).
//!
//! All candidate patterns are mined level-wise over the sample and labeled
//! *frequent*, *ambiguous*, or *infrequent* by the Chernoff bound
//! (Algorithm 4.2). A pattern remains a candidate for extension iff it is
//! frequent-or-ambiguous (patterns below the INFQT border). The output is
//! the two borders `FQT` / `INFQT` embracing the ambiguous region, plus the
//! full ambiguous set that phase 3 must resolve.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::alphabet::Symbol;
use crate::candidates::{next_level, LevelTrace, PatternSpace};
use crate::chernoff::{classify, epsilon, Label, SpreadMode};
use crate::lattice::Border;
use crate::match_kernel::MatchKernel;
use crate::matrix::CompatibilityMatrix;
use crate::pattern::Pattern;

/// Default ceiling on the number of candidate patterns phase 2 may
/// evaluate. When the Chernoff band `±ε` is wider than `min_match`, *no*
/// pattern can be labeled infrequent and the level-wise enumeration
/// diverges — the budget turns that configuration error into a loud,
/// diagnosable failure instead of an endless run. The cure is more samples,
/// a larger `min_match`, or a larger `δ` (Section 4.2; this is also why the
/// restricted spread of Claim 4.2 matters in practice).
pub const DEFAULT_MAX_SAMPLE_PATTERNS: usize = 2_000_000;

/// The result of mining the sample (phase 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleMineResult {
    /// Every evaluated candidate with its sample match and label.
    pub labels: HashMap<Pattern, (f64, Label)>,
    /// Patterns labeled frequent (sample match `> min_match + ε`).
    pub frequent: Vec<(Pattern, f64)>,
    /// Patterns labeled ambiguous, to be resolved by phase 3.
    pub ambiguous: Vec<(Pattern, f64)>,
    /// Border between frequent and ambiguous patterns (maximal frequent).
    pub fqt: Border,
    /// Border between ambiguous and infrequent patterns (maximal ambiguous).
    pub infqt: Border,
    /// Candidates/survivors per level — the instrumentation behind Fig. 9/10.
    pub trace: LevelTrace,
    /// Set when enumeration hit the candidate budget and stopped early; the
    /// classification is then incomplete and the caller must treat the run
    /// as failed (the miner surfaces an error).
    pub truncated: bool,
}

impl SampleMineResult {
    /// Number of ambiguous patterns.
    pub fn ambiguous_count(&self) -> usize {
        self.ambiguous.len()
    }
}

/// Mines the sample level-wise and classifies every candidate (§4.2).
///
/// - `sample`: the in-memory sample sequences from phase 1;
/// - `symbol_match`: per-symbol match over the **entire** database (phase 1),
///   used for the restricted spread of Claim 4.2;
/// - `min_match`: the user threshold; `delta`: Chernoff failure probability;
/// - `spread_mode`: full (`R = 1`) or restricted spread;
/// - `space`: bounds of the enumerated pattern space.
pub fn mine_sample(
    sample: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    symbol_match: &[f64],
    min_match: f64,
    delta: f64,
    spread_mode: SpreadMode,
    space: &PatternSpace,
) -> SampleMineResult {
    mine_sample_budgeted(
        sample,
        matrix,
        symbol_match,
        min_match,
        delta,
        spread_mode,
        space,
        DEFAULT_MAX_SAMPLE_PATTERNS,
    )
}

/// [`mine_sample`] with an explicit candidate budget (see
/// [`DEFAULT_MAX_SAMPLE_PATTERNS`] for why a budget exists).
#[allow(clippy::too_many_arguments)]
pub fn mine_sample_budgeted(
    sample: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    symbol_match: &[f64],
    min_match: f64,
    delta: f64,
    spread_mode: SpreadMode,
    space: &PatternSpace,
    max_patterns: usize,
) -> SampleMineResult {
    mine_sample_budgeted_kernel(
        sample,
        matrix,
        symbol_match,
        min_match,
        delta,
        spread_mode,
        space,
        max_patterns,
        MatchKernel::default(),
    )
}

/// [`mine_sample_budgeted`] with an explicit [`MatchKernel`] for the
/// level-wise candidate evaluation. The kernels produce identical values
/// (see [`crate::match_kernel`]; the columnar simd kernel is held to the
/// trie within a zero-ULP contract); the knob selects the reference oracle
/// for equivalence testing and ablation.
#[allow(clippy::too_many_arguments)]
pub fn mine_sample_budgeted_kernel(
    sample: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    symbol_match: &[f64],
    min_match: f64,
    delta: f64,
    spread_mode: SpreadMode,
    space: &PatternSpace,
    max_patterns: usize,
    kernel: MatchKernel,
) -> SampleMineResult {
    let n = sample.len().max(1);
    let m = matrix.len();
    let mut result = SampleMineResult::default();

    // Level 1: every symbol is a candidate.
    let level1: Vec<Pattern> = (0..m).map(|i| Pattern::single(Symbol(i as u16))).collect();
    let mut alive: HashSet<Pattern> = HashSet::new();
    let mut survivors: Vec<Pattern> = Vec::new();
    let mut surviving_symbols: Vec<Symbol> = Vec::new();

    let values = sample_matches(&level1, sample, matrix, n, kernel);
    let mut level_survivors = 0usize;
    for (pattern, value) in level1.iter().zip(&values) {
        let label = label_pattern(
            pattern,
            *value,
            symbol_match,
            min_match,
            delta,
            n,
            spread_mode,
        );
        record(&mut result, pattern.clone(), *value, label);
        if label != Label::Infrequent {
            alive.insert(pattern.clone());
            survivors.push(pattern.clone());
            surviving_symbols.push(
                pattern
                    .symbols()
                    .next()
                    .expect("singleton pattern has one symbol"),
            );
            level_survivors += 1;
        }
    }
    result.trace.record(level1.len(), level_survivors);

    // Fast divergence check: a surviving symbol whose Chernoff band
    // swallows zero (`min_match − ε(R_d) ≤ 0`) can never have any of its
    // pure combinations labeled infrequent — values only shrink with
    // length, but the infrequent band is empty for those spreads. If the
    // enumerable pattern count over such symbols already exceeds the
    // budget, fail now instead of after millions of evaluations.
    {
        let diverging = survivors
            .iter()
            .filter(|p| {
                let spread = spread_mode.spread(p, symbol_match);
                min_match - epsilon(spread, n, delta) <= 0.0
            })
            .count();
        if diverging >= 2 {
            // Lower bound: contiguous patterns only, each level multiplies
            // the frontier by `diverging` choices (gaps only add more).
            let mut frontier = diverging as f64;
            let mut total = frontier;
            for _ in 1..space.max_len {
                frontier *= diverging as f64;
                total += frontier;
                if total > max_patterns as f64 {
                    result.truncated = true;
                    return result;
                }
            }
        }
    }

    // Levels 2..: generate, evaluate, classify.
    let mut evaluated = level1.len();
    while !survivors.is_empty() {
        let candidates = next_level(&survivors, &alive, &surviving_symbols, space);
        if candidates.is_empty() {
            break;
        }
        evaluated += candidates.len();
        if evaluated > max_patterns {
            result.truncated = true;
            break;
        }
        let values = sample_matches(&candidates, sample, matrix, n, kernel);
        let mut next_survivors = Vec::new();
        let mut survived = 0usize;
        for (pattern, value) in candidates.iter().zip(&values) {
            let label = label_pattern(
                pattern,
                *value,
                symbol_match,
                min_match,
                delta,
                n,
                spread_mode,
            );
            record(&mut result, pattern.clone(), *value, label);
            if label != Label::Infrequent {
                alive.insert(pattern.clone());
                next_survivors.push(pattern.clone());
                survived += 1;
            }
        }
        result.trace.record(candidates.len(), survived);
        survivors = next_survivors;
    }

    result
}

/// Sample match of each pattern: the mean of its sequence match over the
/// sample (footnote 7). Large candidate batches are evaluated across all
/// available cores with a deterministic, chunk-ordered reduction (see
/// [`crate::parallel`]); results are identical to the serial computation.
fn sample_matches(
    patterns: &[Pattern],
    sample: &[Vec<Symbol>],
    matrix: &CompatibilityMatrix,
    n: usize,
    kernel: MatchKernel,
) -> Vec<f64> {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let mut totals =
        crate::parallel::sum_sequence_matches_kernel(patterns, sample, matrix, threads, kernel);
    for t in &mut totals {
        *t /= n as f64;
    }
    totals
}

#[allow(clippy::too_many_arguments)]
fn label_pattern(
    pattern: &Pattern,
    sample_match: f64,
    symbol_match: &[f64],
    min_match: f64,
    delta: f64,
    n: usize,
    spread_mode: SpreadMode,
) -> Label {
    let spread = spread_mode.spread(pattern, symbol_match);
    let eps = epsilon(spread, n, delta);
    crate::obs::restricted_spread_min().set_min(spread);
    crate::obs::chernoff_epsilon_max().set_max(eps);
    classify(sample_match, min_match, eps)
}

fn record(result: &mut SampleMineResult, pattern: Pattern, value: f64, label: Label) {
    match label {
        Label::Frequent => {
            crate::obs::candidates_frequent().inc();
            result.fqt.insert(pattern.clone());
            result.frequent.push((pattern.clone(), value));
        }
        Label::Ambiguous => {
            crate::obs::candidates_ambiguous().inc();
            result.infqt.insert(pattern.clone());
            result.ambiguous.push((pattern.clone(), value));
        }
        Label::Infrequent => {
            crate::obs::candidates_infrequent().inc();
        }
    }
    result.labels.insert(pattern, (value, label));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matching::{db_match, MemorySequences, SequenceScan};

    fn sample_db() -> (Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let a = Alphabet::synthetic(5);
        let seqs = vec![
            a.encode("d0 d1 d2 d0").unwrap(),
            a.encode("d3 d1 d0").unwrap(),
            a.encode("d2 d3 d1 d0").unwrap(),
            a.encode("d1 d1").unwrap(),
        ];
        (seqs, CompatibilityMatrix::paper_figure2())
    }

    #[test]
    fn classification_covers_all_candidates() {
        let (sample, matrix) = sample_db();
        let symbol_match = [0.7, 0.8, 0.3875, 0.425, 0.075];
        let space = PatternSpace::contiguous(4);
        let r = mine_sample(
            &sample,
            &matrix,
            &symbol_match,
            0.15,
            0.01,
            SpreadMode::Restricted,
            &space,
        );
        assert!(!r.labels.is_empty());
        // frequent + ambiguous sets are consistent with the label map.
        for (p, v) in &r.frequent {
            assert_eq!(r.labels[p], (*v, Label::Frequent));
        }
        for (p, v) in &r.ambiguous {
            assert_eq!(r.labels[p], (*v, Label::Ambiguous));
        }
        // Borders cover their sets.
        for (p, _) in &r.frequent {
            assert!(r.fqt.covers(p));
        }
        for (p, _) in &r.ambiguous {
            assert!(r.infqt.covers(p));
        }
    }

    #[test]
    fn sample_match_equals_db_match_when_sample_is_whole_db() {
        let (sample, matrix) = sample_db();
        let db = MemorySequences(sample.clone());
        let symbol_match = crate::matching::symbol_db_match(&db, &matrix);
        let space = PatternSpace::contiguous(3);
        let r = mine_sample(
            &sample,
            &matrix,
            &symbol_match,
            0.10,
            0.001,
            SpreadMode::Restricted,
            &space,
        );
        for (p, (v, _)) in &r.labels {
            let exact = db_match(p, &db, &matrix);
            assert!(
                (v - exact).abs() < 1e-12,
                "{p}: sample {v} != exact {exact}"
            );
        }
        assert_eq!(db.num_sequences(), 4);
    }

    #[test]
    fn frequent_labels_imply_margin() {
        let (sample, matrix) = sample_db();
        let symbol_match = [0.7, 0.8, 0.3875, 0.425, 0.075];
        let min_match = 0.2;
        let delta = 0.05;
        let space = PatternSpace::contiguous(3);
        let r = mine_sample(
            &sample,
            &matrix,
            &symbol_match,
            min_match,
            delta,
            SpreadMode::Restricted,
            &space,
        );
        for (p, v) in &r.frequent {
            let spread = SpreadMode::Restricted.spread(p, &symbol_match);
            let eps = epsilon(spread, sample.len(), delta);
            assert!(*v > min_match + eps);
        }
        for (p, v) in &r.ambiguous {
            let spread = SpreadMode::Restricted.spread(p, &symbol_match);
            let eps = epsilon(spread, sample.len(), delta);
            assert!(*v <= min_match + eps && *v >= min_match - eps);
        }
    }

    #[test]
    fn restricted_spread_never_increases_ambiguity() {
        let (sample, matrix) = sample_db();
        let symbol_match = [0.7, 0.8, 0.3875, 0.425, 0.075];
        let space = PatternSpace::contiguous(3);
        let full = mine_sample(
            &sample,
            &matrix,
            &symbol_match,
            0.15,
            0.01,
            SpreadMode::Full,
            &space,
        );
        let restricted = mine_sample(
            &sample,
            &matrix,
            &symbol_match,
            0.15,
            0.01,
            SpreadMode::Restricted,
            &space,
        );
        assert!(restricted.ambiguous_count() <= full.ambiguous_count());
    }

    #[test]
    fn divergent_configuration_fails_fast() {
        // A tiny sample makes the Chernoff band wider than the threshold:
        // nothing can be labeled infrequent and the enumeration would
        // diverge. The guard must set `truncated` without evaluating
        // millions of candidates.
        let (sample, matrix) = sample_db();
        let tiny: Vec<_> = sample.into_iter().take(2).collect();
        let symbol_match = [0.9; 5];
        let r = mine_sample_budgeted(
            &tiny,
            &matrix,
            &symbol_match,
            0.01, // far below epsilon at n = 2
            0.0001,
            SpreadMode::Restricted,
            &PatternSpace::contiguous(64),
            100_000,
        );
        assert!(r.truncated, "divergence guard did not trip");
        // Only level 1 was evaluated.
        assert_eq!(r.trace.levels(), 1);
    }

    #[test]
    fn empty_sample_yields_no_frequent_patterns() {
        let matrix = CompatibilityMatrix::paper_figure2();
        let symbol_match = [0.0; 5];
        let r = mine_sample(
            &[],
            &matrix,
            &symbol_match,
            0.1,
            0.01,
            SpreadMode::Full,
            &PatternSpace::contiguous(3),
        );
        assert!(r.frequent.is_empty());
    }
}
