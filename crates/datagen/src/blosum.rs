//! The BLOSUM50 amino-acid substitution model (§5.1's in-text experiment).
//!
//! The paper generates a test database "according to the BLOSUM50 matrix
//! [Durbin et al. 1998] which is widely used to characterize the likelihood
//! of mutations between amino acids". BLOSUM entries are log-odds scores
//! `s(i, j) = 2·log₂( P(i, j) / (pᵢ·pⱼ) )` (half-bit units); inverting
//! them yields relative substitution propensities `w(i, j) = 2^{s(i,j)/2}`.
//!
//! We turn these propensities into:
//!
//! - a **mutation channel** `P(observed = j | true = i)`: the true amino
//!   acid survives with probability `1 − μ` and otherwise mutates to `j ≠ i`
//!   proportionally to `w(i, j)` — mirroring how the paper separately
//!   controls the *degree* of noise (`α`, here `μ`) from its *shape*;
//! - the corresponding **compatibility matrix**
//!   `C(i, j) = P(true = i | observed = j)` via Bayes' rule under uniform
//!   amino-acid priors (columns normalized to 1).
//!
//! The amino-acid order is the canonical `A R N D C Q E G H I L K M F P S T
//! W V Y` of [`noisemine_core::alphabet::AMINO_ACIDS`].

use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::{Alphabet, Symbol};

/// Number of canonical amino acids.
pub const NUM_AMINO_ACIDS: usize = 20;

/// The published BLOSUM50 score matrix (half-bit log-odds), indexed in the
/// order `A R N D C Q E G H I L K M F P S T W V Y`.
///
/// The matrix is symmetric; diagonal entries are the self-conservation
/// scores (5 for A up to 15 for the rare W).
#[rustfmt::skip]
pub const BLOSUM50: [[i8; NUM_AMINO_ACIDS]; NUM_AMINO_ACIDS] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   V   Y
    [ 5, -2, -1, -2, -1, -1, -1,  0, -2, -1, -2, -1, -1, -3, -1,  1,  0, -3,  0, -2], // A
    [-2,  7, -1, -2, -4,  1,  0, -3,  0, -4, -3,  3, -2, -3, -3, -1, -1, -3, -3, -1], // R
    [-1, -1,  7,  2, -2,  0,  0,  0,  1, -3, -4,  0, -2, -4, -2,  1,  0, -4, -3, -2], // N
    [-2, -2,  2,  8, -4,  0,  2, -1, -1, -4, -4, -1, -4, -5, -1,  0, -1, -5, -4, -3], // D
    [-1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1, -1, -5, -1, -3], // C
    [-1,  1,  0,  0, -3,  7,  2, -2,  1, -3, -2,  2,  0, -4, -1,  0, -1, -1, -3, -1], // Q
    [-1,  0,  0,  2, -3,  2,  6, -3,  0, -4, -3,  1, -2, -3, -1, -1, -1, -3, -3, -2], // E
    [ 0, -3,  0, -1, -3, -2, -3,  8, -2, -4, -4, -2, -3, -4, -2,  0, -2, -3, -4, -3], // G
    [-2,  0,  1, -1, -3,  1,  0, -2, 10, -4, -3,  0, -1, -1, -2, -1, -2, -3, -4,  2], // H
    [-1, -4, -3, -4, -2, -3, -4, -4, -4,  5,  2, -3,  2,  0, -3, -3, -1, -3,  4, -1], // I
    [-2, -3, -4, -4, -2, -2, -3, -4, -3,  2,  5, -3,  3,  1, -4, -3, -1, -2,  1, -1], // L
    [-1,  3,  0, -1, -3,  2,  1, -2,  0, -3, -3,  6, -2, -4, -1,  0, -1, -3, -3, -2], // K
    [-1, -2, -2, -4, -2,  0, -2, -3, -1,  2,  3, -2,  7,  0, -3, -2, -1, -1,  1,  0], // M
    [-3, -3, -4, -5, -2, -4, -3, -4, -1,  0,  1, -4,  0,  8, -4, -3, -2,  1, -1,  4], // F
    [-1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1, -1, -4, -3, -3], // P
    [ 1, -1,  1,  0, -1,  0, -1,  0, -1, -3, -3,  0, -2, -3, -1,  5,  2, -4, -2, -2], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  2,  5, -3,  0, -2], // T
    [-3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1,  1, -4, -4, -3, 15, -3,  2], // W
    [ 0, -3, -3, -4, -1, -3, -3, -4, -4,  4,  1, -3,  1, -1, -3, -2,  0, -3,  5, -1], // V
    [-2, -1, -2, -3, -3, -1, -2, -3,  2, -1, -1, -2,  0,  4, -3, -2, -2,  2, -1,  8], // Y
];

/// Relative substitution propensity `w(i, j) = 2^{s(i,j)/2}`.
fn propensity(i: usize, j: usize) -> f64 {
    2f64.powf(BLOSUM50[i][j] as f64 / 2.0)
}

/// The BLOSUM50 mutation channel `P(observed = j | true = i)` at overall
/// mutation rate `mu`: the amino acid survives with probability `1 − mu`
/// and otherwise mutates to `j ≠ i` with probability proportional to the
/// BLOSUM propensity `w(i, j)`.
pub fn mutation_channel(mu: f64) -> Vec<Vec<f64>> {
    assert!((0.0..1.0).contains(&mu), "mutation rate outside [0, 1)");
    let m = NUM_AMINO_ACIDS;
    let mut channel = vec![vec![0.0; m]; m];
    for (i, row) in channel.iter_mut().enumerate() {
        let off_total: f64 = (0..m).filter(|&j| j != i).map(|j| propensity(i, j)).sum();
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = if i == j {
                1.0 - mu
            } else {
                mu * propensity(i, j) / off_total
            };
        }
    }
    channel
}

/// The compatibility matrix `C(true, observed)` implied by the
/// [`mutation_channel`] at rate `mu`, assuming uniform amino-acid priors:
/// `C(i, j) = P(j | i) / Σ_k P(j | k)` (Bayes' rule, columns sum to 1).
pub fn compatibility_matrix(mu: f64) -> CompatibilityMatrix {
    let channel = mutation_channel(mu);
    let m = NUM_AMINO_ACIDS;
    let mut rows = vec![vec![0.0; m]; m];
    for j in 0..m {
        let col_total: f64 = (0..m).map(|k| channel[k][j]).sum();
        for (i, row) in rows.iter_mut().enumerate() {
            row[j] = channel[i][j] / col_total;
        }
    }
    CompatibilityMatrix::from_rows(rows).expect("Bayes inversion is column-stochastic")
}

/// The amino-acid alphabet matching the matrix index order.
pub fn alphabet() -> Alphabet {
    Alphabet::amino_acids()
}

/// The `n` BLOSUM-likeliest mutation partners of each amino acid, as a
/// partner map for [`crate::noise::partner_channel`] — the structured-noise
/// channel matching the paper's Figure 1 motivation. Using two or more
/// partners keeps the Bayes posterior diagonally dominant up to higher
/// noise degrees (`alpha < n/(n+1)`).
pub fn partner_map(n: usize) -> Vec<Vec<usize>> {
    assert!((1..NUM_AMINO_ACIDS).contains(&n));
    (0..NUM_AMINO_ACIDS)
        .map(|i| {
            let mut others: Vec<usize> = (0..NUM_AMINO_ACIDS).filter(|&j| j != i).collect();
            others.sort_by(|&a, &b| propensity(i, b).total_cmp(&propensity(i, a)));
            others.truncate(n);
            others
        })
        .collect()
}

/// The most likely substitution target for a given amino acid (excluding
/// itself) — e.g. N→D, K→R, V→I, the mutations from the paper's Figure 1.
pub fn likeliest_substitution(amino: Symbol) -> Symbol {
    let i = amino.index();
    let j = (0..NUM_AMINO_ACIDS)
        .filter(|&j| j != i)
        .max_by(|&a, &b| propensity(i, a).total_cmp(&propensity(i, b)))
        .expect("non-empty alphabet");
    Symbol(j as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        for (i, row) in BLOSUM50.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, BLOSUM50[j][i], "asymmetry at ({i}, {j})");
            }
        }
    }

    #[test]
    fn diagonal_dominates() {
        for (i, row) in BLOSUM50.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    assert!(row[i] > v, "({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn channel_rows_are_stochastic() {
        let ch = mutation_channel(0.15);
        for (i, row) in ch.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!((row[i] - 0.85).abs() < 1e-12);
        }
    }

    #[test]
    fn compatibility_columns_are_stochastic() {
        let c = compatibility_matrix(0.15);
        for j in 0..NUM_AMINO_ACIDS {
            let sum: f64 = (0..NUM_AMINO_ACIDS)
                .map(|i| c.get(Symbol(i as u16), Symbol(j as u16)))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_figure1_mutations_are_likeliest() {
        // The paper motivates the model with N→D, K→R, V→I mutations.
        let a = alphabet();
        let n = a.symbol("N").unwrap();
        let d = a.symbol("D").unwrap();
        let k = a.symbol("K").unwrap();
        let r = a.symbol("R").unwrap();
        let v = a.symbol("V").unwrap();
        let i = a.symbol("I").unwrap();
        assert_eq!(likeliest_substitution(n), d);
        assert_eq!(likeliest_substitution(k), r);
        assert_eq!(likeliest_substitution(v), i);
    }

    #[test]
    fn zero_mutation_rate_gives_identity_channel() {
        let ch = mutation_channel(0.0);
        for (i, row) in ch.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
        }
        let c = compatibility_matrix(0.0);
        assert!(c.is_identity());
    }

    #[test]
    fn compatibility_diagonal_is_strong_at_moderate_mu() {
        let c = compatibility_matrix(0.2);
        for i in 0..NUM_AMINO_ACIDS as u16 {
            let diag = c.get(Symbol(i), Symbol(i));
            assert!(diag > 0.5, "C({i},{i}) = {diag} too weak");
        }
    }
}
