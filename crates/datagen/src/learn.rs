//! Learning a compatibility matrix from training data.
//!
//! The paper assumes the matrix "can be either given by a domain expert or
//! learned from a training data set" (§3) but does not say how. This module
//! supplies the natural estimator: given paired (true, observed) sequences
//! — e.g. curated reference sequences alongside their raw reads — count the
//! per-position confusions and normalize each *observed* column with
//! Laplace smoothing:
//!
//! ```text
//! Ĉ(i, j) = (count[true = i, obs = j] + λ) / (Σ_k count[k, j] + λ·m)
//! ```
//!
//! With λ = 0 unseen substitutions get probability 0 (a hard impossibility,
//! exactly what makes the match kernel prune); with λ > 0 every
//! substitution keeps a little mass (safer when the training set is small).

use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::{Error, Result, Symbol};

/// Confusion counts accumulated from paired sequences.
#[derive(Debug, Clone)]
pub struct ConfusionCounts {
    m: usize,
    /// `counts[true * m + observed]`.
    counts: Vec<u64>,
    positions: u64,
}

impl ConfusionCounts {
    /// Creates an empty counter over an `m`-symbol alphabet.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            counts: vec![0; m * m],
            positions: 0,
        }
    }

    /// Accumulates one aligned (true, observed) sequence pair.
    ///
    /// # Errors
    ///
    /// Fails if the two sequences differ in length (the paper's noise model
    /// is substitution-only) or contain out-of-alphabet symbols.
    pub fn observe_pair(&mut self, true_seq: &[Symbol], observed_seq: &[Symbol]) -> Result<()> {
        if true_seq.len() != observed_seq.len() {
            return Err(Error::InvalidConfig(format!(
                "paired sequences differ in length ({} vs {}); the noise model is substitution-only",
                true_seq.len(),
                observed_seq.len()
            )));
        }
        for (&t, &o) in true_seq.iter().zip(observed_seq) {
            if t.index() >= self.m || o.index() >= self.m {
                return Err(Error::SymbolOutOfRange {
                    symbol: t.0.max(o.0),
                    alphabet_size: self.m,
                });
            }
            self.counts[t.index() * self.m + o.index()] += 1;
            self.positions += 1;
        }
        Ok(())
    }

    /// Accumulates many pairs.
    pub fn observe_pairs(
        &mut self,
        true_seqs: &[Vec<Symbol>],
        observed_seqs: &[Vec<Symbol>],
    ) -> Result<()> {
        if true_seqs.len() != observed_seqs.len() {
            return Err(Error::InvalidConfig(format!(
                "{} true sequences paired with {} observed sequences",
                true_seqs.len(),
                observed_seqs.len()
            )));
        }
        for (t, o) in true_seqs.iter().zip(observed_seqs) {
            self.observe_pair(t, o)?;
        }
        Ok(())
    }

    /// Total aligned positions observed.
    pub fn positions(&self) -> u64 {
        self.positions
    }

    /// The raw count for a (true, observed) pair.
    pub fn count(&self, true_sym: Symbol, observed: Symbol) -> u64 {
        self.counts[true_sym.index() * self.m + observed.index()]
    }

    /// Estimates the compatibility matrix `Ĉ(true | observed)` with Laplace
    /// smoothing `lambda` (per matrix cell).
    ///
    /// # Errors
    ///
    /// With `lambda = 0`, fails if some symbol was never observed (its
    /// column would be all-zero and cannot be a conditional distribution).
    pub fn estimate(&self, lambda: f64) -> Result<CompatibilityMatrix> {
        if lambda < 0.0 {
            return Err(Error::InvalidConfig("lambda must be non-negative".into()));
        }
        let m = self.m;
        let mut columns: Vec<Vec<(Symbol, f64)>> = vec![Vec::new(); m];
        for (j, column) in columns.iter_mut().enumerate() {
            let col_total: f64 =
                (0..m).map(|i| self.counts[i * m + j] as f64).sum::<f64>() + lambda * m as f64;
            if col_total == 0.0 {
                return Err(Error::InvalidMatrix(format!(
                    "symbol d{j} never observed in the training data; use lambda > 0 or more data"
                )));
            }
            for i in 0..m {
                let v = (self.counts[i * m + j] as f64 + lambda) / col_total;
                if v > 0.0 {
                    column.push((Symbol(i as u16), v));
                }
            }
        }
        CompatibilityMatrix::from_sparse_columns(columns)
    }
}

/// One-shot convenience: learn a matrix from paired sequence sets.
pub fn learn_matrix(
    true_seqs: &[Vec<Symbol>],
    observed_seqs: &[Vec<Symbol>],
    m: usize,
    lambda: f64,
) -> Result<CompatibilityMatrix> {
    let mut counts = ConfusionCounts::new(m);
    counts.observe_pairs(true_seqs, observed_seqs)?;
    counts.estimate(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{apply_channel, channel_to_compatibility, partner_channel};
    use crate::{generate, Background, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn training_data(
        m: usize,
        alpha: f64,
        n: usize,
    ) -> (Vec<Vec<Symbol>>, Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let standard = generate(&GeneratorConfig {
            num_sequences: n,
            min_len: 60,
            max_len: 80,
            alphabet_size: m,
            background: Background::Uniform,
            motifs: Vec::new(),
            seed: 42,
        });
        let partners: Vec<Vec<usize>> = (0..m).map(|i| vec![i ^ 1]).collect();
        let channel = partner_channel(m, alpha, &partners);
        let mut rng = StdRng::seed_from_u64(9);
        let observed = apply_channel(&standard, &channel, &mut rng);
        let truth = channel_to_compatibility(&channel);
        (standard, observed, truth)
    }

    #[test]
    fn learned_matrix_approximates_true_posterior() {
        let (truth_seqs, observed, truth) = training_data(8, 0.25, 400);
        let learned = learn_matrix(&truth_seqs, &observed, 8, 0.0).unwrap();
        for i in 0..8u16 {
            for j in 0..8u16 {
                let t = truth.get(Symbol(i), Symbol(j));
                let l = learned.get(Symbol(i), Symbol(j));
                assert!((t - l).abs() < 0.03, "C(d{i}, d{j}): true {t}, learned {l}");
            }
        }
    }

    #[test]
    fn zero_lambda_preserves_impossibilities() {
        // The partner channel never maps d0 to d3, so the learned entry must
        // be exactly zero (a hard impossibility the kernel can prune on).
        let (truth_seqs, observed, _) = training_data(8, 0.25, 200);
        let learned = learn_matrix(&truth_seqs, &observed, 8, 0.0).unwrap();
        assert_eq!(learned.get(Symbol(0), Symbol(3)), 0.0);
        assert!(learned.get(Symbol(0), Symbol(1)) > 0.0);
    }

    #[test]
    fn positive_lambda_smooths_everything() {
        let (truth_seqs, observed, _) = training_data(6, 0.2, 50);
        let learned = learn_matrix(&truth_seqs, &observed, 6, 0.5).unwrap();
        for i in 0..6u16 {
            for j in 0..6u16 {
                assert!(learned.get(Symbol(i), Symbol(j)) > 0.0, "({i},{j})");
            }
        }
    }

    #[test]
    fn columns_are_stochastic() {
        let (truth_seqs, observed, _) = training_data(8, 0.3, 100);
        for lambda in [0.0, 1.0] {
            let learned = learn_matrix(&truth_seqs, &observed, 8, lambda).unwrap();
            for j in 0..8u16 {
                let sum: f64 = (0..8).map(|i| learned.get(Symbol(i), Symbol(j))).sum();
                assert!((sum - 1.0).abs() < 1e-9, "lambda {lambda} column {j}");
            }
        }
    }

    #[test]
    fn length_mismatch_and_pairing_mismatch_fail() {
        let mut c = ConfusionCounts::new(4);
        assert!(c
            .observe_pair(&[Symbol(0), Symbol(1)], &[Symbol(0)])
            .is_err());
        assert!(c.observe_pairs(&[vec![Symbol(0)]], &[]).is_err());
    }

    #[test]
    fn out_of_range_symbol_fails() {
        let mut c = ConfusionCounts::new(4);
        assert!(c.observe_pair(&[Symbol(9)], &[Symbol(0)]).is_err());
    }

    #[test]
    fn never_observed_symbol_needs_smoothing() {
        let mut c = ConfusionCounts::new(3);
        c.observe_pair(&[Symbol(0)], &[Symbol(0)]).unwrap();
        // d1/d2 never observed: lambda = 0 fails, lambda > 0 works.
        assert!(c.estimate(0.0).is_err());
        let smoothed = c.estimate(0.1).unwrap();
        let sum: f64 = (0..3).map(|i| smoothed.get(Symbol(i), Symbol(1))).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_accessors() {
        let mut c = ConfusionCounts::new(3);
        c.observe_pair(&[Symbol(0), Symbol(1)], &[Symbol(0), Symbol(2)])
            .unwrap();
        assert_eq!(c.positions(), 2);
        assert_eq!(c.count(Symbol(1), Symbol(2)), 1);
        assert_eq!(c.count(Symbol(1), Symbol(1)), 0);
    }
}
