//! # noisemine-datagen
//!
//! Synthetic workload generation for the noisemine experiments: planted-
//! motif sequence databases ([`planted`]), the paper's uniform noise channel
//! and arbitrary substitution channels ([`noise`]), the BLOSUM50 amino-acid
//! mutation model ([`blosum`]), sparse random compatibility matrices for the
//! alphabet-size sweep ([`scalability`]), and bundled per-experiment
//! workloads ([`workloads`]), plus compatibility-matrix estimation from
//! paired training data ([`learn`], the paper's "learned from a training
//! data set" provision).
//!
//! **Substitution note** (see DESIGN.md): the paper evaluates on a 600 K
//! sequence NCBI protein database we do not have; these generators produce
//! the closest synthetic equivalent — long sequences over the 20-letter
//! amino-acid alphabet with *known* planted patterns — which strengthens the
//! paper's own protocol (mining the noise-free database as ground truth) by
//! making the ground truth exact.

pub mod blosum;
pub mod learn;
pub mod noise;
pub mod planted;
pub mod scalability;
pub mod workloads;

pub use learn::{learn_matrix, ConfusionCounts};
pub use noise::{apply_channel, apply_uniform_noise, observed_noise_rate};
pub use planted::{generate, Background, GeneratorConfig, PlantedMotif};
pub use scalability::{scalability_db, sparse_random_matrix};
pub use workloads::{accuracy_completeness, ProteinWorkload, ProteinWorkloadConfig};
