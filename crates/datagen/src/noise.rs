//! Noise channels: deriving *test* databases from a *standard* database.
//!
//! Implements the paper's noise-injection protocol (§5.1): each symbol of
//! every sequence independently either survives or is substituted. Two
//! channels are provided:
//!
//! - [`apply_uniform_noise`] — the paper's primary protocol: a symbol stays
//!   itself with probability `1 − α` and becomes each of the other `m − 1`
//!   symbols with probability `α / (m − 1)`;
//! - [`apply_channel`] — substitution according to an arbitrary
//!   `P(observed | true)` row-stochastic channel (used for the BLOSUM50
//!   experiment and for matrix-consistent workloads).

use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::Symbol;
use rand::Rng;

/// Applies uniform substitution noise of degree `alpha` to every sequence.
/// `m` is the alphabet size. The noisy copy preserves sequence lengths.
pub fn apply_uniform_noise<R: Rng>(
    sequences: &[Vec<Symbol>],
    alpha: f64,
    m: usize,
    rng: &mut R,
) -> Vec<Vec<Symbol>> {
    assert!((0.0..=1.0).contains(&alpha), "alpha outside [0, 1]");
    assert!(m >= 2, "need at least two symbols to substitute");
    sequences
        .iter()
        .map(|seq| {
            seq.iter()
                .map(|&s| {
                    if rng.gen::<f64>() < alpha {
                        // Substitute by a uniformly random *other* symbol.
                        let mut t = rng.gen_range(0..m - 1) as u16;
                        if t >= s.0 {
                            t += 1;
                        }
                        Symbol(t)
                    } else {
                        s
                    }
                })
                .collect()
        })
        .collect()
}

/// The compatibility matrix corresponding to [`apply_uniform_noise`]
/// (§5.1): `C(dᵢ, dᵢ) = 1 − α`, `C(dᵢ, dⱼ) = α / (m − 1)`.
pub fn uniform_noise_matrix(m: usize, alpha: f64) -> CompatibilityMatrix {
    CompatibilityMatrix::uniform_noise(m, alpha).expect("valid uniform noise parameters")
}

/// Applies an arbitrary substitution channel. `channel[i][j]` is
/// `P(observed = j | true = i)`; every row must sum to 1.
pub fn apply_channel<R: Rng>(
    sequences: &[Vec<Symbol>],
    channel: &[Vec<f64>],
    rng: &mut R,
) -> Vec<Vec<Symbol>> {
    let m = channel.len();
    for (i, row) in channel.iter().enumerate() {
        assert_eq!(row.len(), m, "channel row {i} has wrong width");
        let sum: f64 = row.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "channel row {i} sums to {sum}, expected 1"
        );
    }
    sequences
        .iter()
        .map(|seq| {
            seq.iter()
                .map(|&s| {
                    let row = &channel[s.index()];
                    let x: f64 = rng.gen();
                    let mut acc = 0.0;
                    for (j, &p) in row.iter().enumerate() {
                        acc += p;
                        if x < acc {
                            return Symbol(j as u16);
                        }
                    }
                    Symbol((m - 1) as u16) // floating-point slack
                })
                .collect()
        })
        .collect()
}

/// The Bayes-inverted compatibility matrix of an arbitrary substitution
/// channel under a uniform prior over true symbols:
/// `C(i, j) = P(o = j | t = i) / Σ_k P(o = j | t = k)` (columns sum to 1).
/// This is how a "domain expert" matrix consistent with a known noise
/// process is obtained (Definition 3.4).
pub fn channel_to_compatibility(channel: &[Vec<f64>]) -> CompatibilityMatrix {
    let m = channel.len();
    let mut columns: Vec<Vec<(Symbol, f64)>> = vec![Vec::new(); m];
    for j in 0..m {
        let total: f64 = (0..m).map(|i| channel[i][j]).sum();
        assert!(total > 0.0, "observed symbol {j} can never be produced");
        for (i, row) in channel.iter().enumerate() {
            if row[j] > 0.0 {
                columns[j].push((Symbol(i as u16), row[j] / total));
            }
        }
    }
    CompatibilityMatrix::from_sparse_columns(columns).expect("Bayes inversion is column-stochastic")
}

/// A *structured* substitution channel of degree `alpha`: each symbol `i`
/// survives with probability `1 − alpha` and otherwise mutates into one of
/// its designated partners (`alpha` split evenly among `partners[i]`) — the
/// regime the paper's biological motivation describes (Figure 1: N→D, K→R,
/// V→I are *the* likely mutations, not arbitrary ones). Unlike uniform
/// noise, a structured channel leaves large off-diagonal posteriors, so the
/// compatibility matrix carries real information about degraded
/// occurrences.
pub fn partner_channel(m: usize, alpha: f64, partners: &[Vec<usize>]) -> Vec<Vec<f64>> {
    assert!((0.0..=1.0).contains(&alpha), "alpha outside [0, 1]");
    assert_eq!(partners.len(), m, "one partner list per symbol");
    let mut channel = vec![vec![0.0; m]; m];
    for (i, row) in channel.iter_mut().enumerate() {
        let ps = &partners[i];
        assert!(!ps.is_empty(), "symbol {i} needs at least one partner");
        row[i] = 1.0 - alpha;
        for &p in ps {
            assert!(p < m && p != i, "partner of {i} must be a different symbol");
            row[p] += alpha / ps.len() as f64;
        }
    }
    channel
}

/// Fraction of positions that differ between a standard database and its
/// noisy counterpart — a direct estimate of the effective noise level.
pub fn observed_noise_rate(standard: &[Vec<Symbol>], noisy: &[Vec<Symbol>]) -> f64 {
    let mut total = 0usize;
    let mut flipped = 0usize;
    for (a, b) in standard.iter().zip(noisy) {
        assert_eq!(a.len(), b.len(), "noise must preserve lengths");
        total += a.len();
        flipped += a.iter().zip(b).filter(|(x, y)| x != y).count();
    }
    if total == 0 {
        0.0
    } else {
        flipped as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn standard() -> Vec<Vec<Symbol>> {
        (0..200)
            .map(|i| (0..50).map(|j| Symbol(((i + j) % 20) as u16)).collect())
            .collect()
    }

    #[test]
    fn zero_alpha_is_identity() {
        let s = standard();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(apply_uniform_noise(&s, 0.0, 20, &mut rng), s);
    }

    #[test]
    fn noise_rate_tracks_alpha() {
        let s = standard();
        let mut rng = StdRng::seed_from_u64(2);
        for alpha in [0.1, 0.3, 0.6] {
            let noisy = apply_uniform_noise(&s, alpha, 20, &mut rng);
            let rate = observed_noise_rate(&s, &noisy);
            assert!(
                (rate - alpha).abs() < 0.02,
                "alpha {alpha}: observed {rate}"
            );
        }
    }

    #[test]
    fn substitution_never_yields_same_symbol_with_full_noise() {
        let s = standard();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = apply_uniform_noise(&s, 1.0, 20, &mut rng);
        assert!((observed_noise_rate(&s, &noisy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn substitutions_stay_in_alphabet() {
        let s = standard();
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = apply_uniform_noise(&s, 0.5, 20, &mut rng);
        for seq in &noisy {
            assert!(seq.iter().all(|x| x.index() < 20));
        }
    }

    #[test]
    fn channel_identity_is_noop() {
        let s = standard();
        let mut channel = vec![vec![0.0; 20]; 20];
        for (i, row) in channel.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(apply_channel(&s, &channel, &mut rng), s);
    }

    #[test]
    fn channel_marginals_are_respected() {
        // A 2-symbol channel flipping 0 -> 1 with probability 0.3.
        let s: Vec<Vec<Symbol>> = vec![vec![Symbol(0); 10_000]];
        let channel = vec![vec![0.7, 0.3], vec![0.0, 1.0]];
        let mut rng = StdRng::seed_from_u64(6);
        let noisy = apply_channel(&s, &channel, &mut rng);
        let flips = noisy[0].iter().filter(|&&x| x == Symbol(1)).count();
        let rate = flips as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    fn channel_to_compatibility_is_bayes() {
        // 2-symbol channel: 0 -> 1 with prob 0.4; 1 always stays.
        let channel = vec![vec![0.6, 0.4], vec![0.0, 1.0]];
        let c = channel_to_compatibility(&channel);
        // Observed 1: P(true=0 | obs=1) = 0.4 / (0.4 + 1.0).
        assert!((c.get(Symbol(0), Symbol(1)) - 0.4 / 1.4).abs() < 1e-12);
        assert!((c.get(Symbol(1), Symbol(1)) - 1.0 / 1.4).abs() < 1e-12);
        // Observed 0 can only come from true 0.
        assert!((c.get(Symbol(0), Symbol(0)) - 1.0).abs() < 1e-12);
        assert_eq!(c.get(Symbol(1), Symbol(0)), 0.0);
    }

    #[test]
    fn partner_channel_structure() {
        let partners = vec![vec![1], vec![0], vec![3], vec![2]];
        let ch = partner_channel(4, 0.3, &partners);
        for (i, row) in ch.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!((row[i] - 0.7).abs() < 1e-12);
            assert!((row[partners[i][0]] - 0.3).abs() < 1e-12);
        }
        // The induced compatibility has large off-diagonal posteriors —
        // the structured-noise property.
        let c = channel_to_compatibility(&ch);
        assert!((c.get(Symbol(0), Symbol(1)) - 0.3).abs() < 1e-12);
        // ...and is sparse: only self and partner columns are non-zero.
        assert_eq!(c.column(Symbol(0)).len(), 2);
    }

    #[test]
    fn partner_channel_with_zero_alpha_is_identity() {
        let ch = partner_channel(3, 0.0, &[vec![1], vec![2], vec![0]]);
        let c = channel_to_compatibility(&ch);
        assert!(c.is_identity());
    }

    #[test]
    fn matrix_matches_channel_semantics() {
        let c = uniform_noise_matrix(20, 0.2);
        assert!((c.get(Symbol(0), Symbol(0)) - 0.8).abs() < 1e-12);
        assert!((c.get(Symbol(0), Symbol(1)) - 0.2 / 19.0).abs() < 1e-12);
    }
}
