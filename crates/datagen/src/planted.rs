//! Planted-motif sequence generation.
//!
//! The paper's robustness protocol (§5.1) mines a *standard* (noise-free)
//! database first and uses that result as ground truth for *test* databases
//! derived by injecting noise. Synthetic data with **planted motifs** gives
//! us the same protocol with exact control: background symbols are drawn
//! i.i.d. from a configurable distribution, and each motif (the "true
//! pattern" the miner should recover) is embedded into a configurable
//! fraction of sequences at a random position.

use noisemine_core::pattern::{Pattern, PatternElem};
use noisemine_core::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A motif to embed in generated sequences.
#[derive(Debug, Clone)]
pub struct PlantedMotif {
    /// The motif, possibly containing eternal positions (gaps). Eternal
    /// positions are filled with random background symbols at embedding
    /// time, so the *pattern* occurs even though the raw text differs.
    pub pattern: Pattern,
    /// Fraction of sequences that contain the motif.
    pub occurrence: f64,
}

impl PlantedMotif {
    /// A contiguous motif occurring in the given fraction of sequences.
    pub fn new(pattern: Pattern, occurrence: f64) -> Self {
        Self {
            pattern,
            occurrence,
        }
    }
}

/// Background symbol distribution.
#[derive(Debug, Clone)]
pub enum Background {
    /// Every symbol equally likely.
    Uniform,
    /// Zipf-ish skew: probability of symbol `i` proportional to
    /// `1 / (i + 1)^s`. Mimics the skewed amino-acid frequencies of real
    /// protein data.
    Zipf(f64),
    /// Explicit weights (normalized internally; must be non-negative).
    Weights(Vec<f64>),
}

impl Background {
    fn cumulative(&self, m: usize) -> Vec<f64> {
        let weights: Vec<f64> = match self {
            Background::Uniform => vec![1.0; m],
            Background::Zipf(s) => (0..m).map(|i| 1.0 / ((i + 1) as f64).powf(*s)).collect(),
            Background::Weights(w) => {
                assert_eq!(w.len(), m, "background weights must cover the alphabet");
                w.clone()
            }
        };
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "background weights must not all be zero");
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }
}

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of sequences `N`.
    pub num_sequences: usize,
    /// Minimum sequence length (inclusive).
    pub min_len: usize,
    /// Maximum sequence length (inclusive).
    pub max_len: usize,
    /// Alphabet size `m`.
    pub alphabet_size: usize,
    /// Background symbol distribution.
    pub background: Background,
    /// Motifs to embed.
    pub motifs: Vec<PlantedMotif>,
    /// RNG seed — generation is deterministic.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_sequences: 1000,
            min_len: 50,
            max_len: 100,
            alphabet_size: 20,
            background: Background::Uniform,
            motifs: Vec::new(),
            seed: 0xBEEF,
        }
    }
}

/// Generates the standard (noise-free) database.
///
/// # Panics
///
/// Panics if a motif is longer than `min_len` or uses a symbol outside the
/// alphabet — both are configuration bugs worth failing loudly on.
pub fn generate(config: &GeneratorConfig) -> Vec<Vec<Symbol>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let cumulative = config.background.cumulative(config.alphabet_size);
    for motif in &config.motifs {
        assert!(
            motif.pattern.len() <= config.min_len,
            "motif {} longer than min sequence length {}",
            motif.pattern,
            config.min_len
        );
        assert!(
            motif
                .pattern
                .symbols()
                .all(|s| s.index() < config.alphabet_size),
            "motif {} uses symbols outside the alphabet",
            motif.pattern
        );
    }

    (0..config.num_sequences)
        .map(|_| {
            let len = rng.gen_range(config.min_len..=config.max_len);
            let mut seq: Vec<Symbol> = (0..len).map(|_| draw(&cumulative, &mut rng)).collect();
            let mut occupied: Vec<(usize, usize)> = Vec::new();
            for motif in &config.motifs {
                if rng.gen::<f64>() < motif.occurrence {
                    embed(&motif.pattern, &mut seq, &mut occupied, &mut rng);
                }
            }
            seq
        })
        .collect()
}

fn draw(cumulative: &[f64], rng: &mut StdRng) -> Symbol {
    let x: f64 = rng.gen();
    let idx = cumulative.partition_point(|&c| c < x);
    Symbol(idx.min(cumulative.len() - 1) as u16)
}

/// Writes the motif's concrete symbols into a random window of `seq`
/// (eternal positions keep whatever background symbol is there), preferring
/// a window that does not overlap previously embedded motifs so that motifs
/// do not clobber each other. Falls back to an arbitrary window after a
/// bounded number of attempts (short sequences with many motifs).
fn embed(
    pattern: &Pattern,
    seq: &mut [Symbol],
    occupied: &mut Vec<(usize, usize)>,
    rng: &mut StdRng,
) {
    let l = pattern.len();
    let max_start = seq.len() - l;
    let mut start = rng.gen_range(0..=max_start);
    for _ in 0..16 {
        let overlaps = occupied.iter().any(|&(a, b)| start < b && start + l > a);
        if !overlaps {
            break;
        }
        start = rng.gen_range(0..=max_start);
    }
    occupied.push((start, start + l));
    for (offset, elem) in pattern.elems().iter().enumerate() {
        if let PatternElem::Sym(s) = elem {
            seq[start + offset] = *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::matching::{db_support, MemorySequences};
    use noisemine_core::Alphabet;

    #[test]
    fn generates_requested_shape() {
        let cfg = GeneratorConfig {
            num_sequences: 50,
            min_len: 10,
            max_len: 20,
            alphabet_size: 8,
            ..GeneratorConfig::default()
        };
        let seqs = generate(&cfg);
        assert_eq!(seqs.len(), 50);
        for s in &seqs {
            assert!((10..=20).contains(&s.len()));
            assert!(s.iter().all(|sym| sym.index() < 8));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = GeneratorConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::default()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn planted_motif_reaches_target_support() {
        let a = Alphabet::synthetic(20);
        let motif = Pattern::parse("d1 d2 d3 d4 d5", &a).unwrap();
        let cfg = GeneratorConfig {
            num_sequences: 400,
            min_len: 30,
            max_len: 50,
            motifs: vec![PlantedMotif::new(motif.clone(), 0.5)],
            ..GeneratorConfig::default()
        };
        let seqs = generate(&cfg);
        let db = MemorySequences(seqs);
        let support = db_support(&motif, &db);
        assert!(
            (support - 0.5).abs() < 0.08,
            "support {support}, expected about 0.5"
        );
    }

    #[test]
    fn gapped_motif_occurs_as_pattern() {
        let a = Alphabet::synthetic(20);
        let motif = Pattern::parse("d1 * * d4 d5", &a).unwrap();
        let cfg = GeneratorConfig {
            num_sequences: 200,
            min_len: 20,
            max_len: 30,
            motifs: vec![PlantedMotif::new(motif.clone(), 1.0)],
            ..GeneratorConfig::default()
        };
        let db = MemorySequences(generate(&cfg));
        // Every sequence must contain the gapped pattern exactly.
        assert!((db_support(&motif, &db) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_background_is_skewed() {
        let cfg = GeneratorConfig {
            num_sequences: 200,
            min_len: 50,
            max_len: 50,
            alphabet_size: 10,
            background: Background::Zipf(1.0),
            ..GeneratorConfig::default()
        };
        let seqs = generate(&cfg);
        let mut counts = [0usize; 10];
        for s in &seqs {
            for sym in s {
                counts[sym.index()] += 1;
            }
        }
        assert!(counts[0] > counts[9] * 3, "Zipf skew missing: {counts:?}");
    }

    #[test]
    fn explicit_weights_respected() {
        let cfg = GeneratorConfig {
            num_sequences: 100,
            min_len: 20,
            max_len: 20,
            alphabet_size: 3,
            background: Background::Weights(vec![0.0, 1.0, 0.0]),
            ..GeneratorConfig::default()
        };
        let seqs = generate(&cfg);
        for s in &seqs {
            assert!(s.iter().all(|&sym| sym == Symbol(1)));
        }
    }

    #[test]
    #[should_panic(expected = "longer than min sequence length")]
    fn rejects_oversized_motif() {
        let a = Alphabet::synthetic(5);
        let motif = Pattern::parse("d1 d2 d3 d4", &a).unwrap();
        let cfg = GeneratorConfig {
            min_len: 2,
            max_len: 5,
            motifs: vec![PlantedMotif::new(motif, 1.0)],
            ..GeneratorConfig::default()
        };
        generate(&cfg);
    }
}
