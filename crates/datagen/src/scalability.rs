//! Workloads for the alphabet-size scalability experiment (§5.7, Fig. 15).
//!
//! The paper sweeps the number of distinct symbols `m` from hundreds to
//! 10⁴ over synthetic databases, with compatibility matrices in which "a
//! symbol is compatible to around 10 % of other symbols with various
//! degree". This module generates such sparse random matrices (column-
//! stochastic by construction) and matching symbol-skewed databases.

use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a sparse random compatibility matrix over `m` symbols where every
/// observed symbol is compatible with itself (dominant diagonal mass
/// `diag_weight`) plus roughly `density · m` other symbols with random
/// weights. Columns sum to 1.
///
/// # Panics
///
/// Panics on `m < 2`, `density ∉ [0, 1]`, or `diag_weight ∉ (0, 1]`.
pub fn sparse_random_matrix(
    m: usize,
    density: f64,
    diag_weight: f64,
    seed: u64,
) -> CompatibilityMatrix {
    assert!(m >= 2, "need at least 2 symbols");
    assert!((0.0..=1.0).contains(&density), "density outside [0, 1]");
    assert!(
        diag_weight > 0.0 && diag_weight <= 1.0,
        "diag_weight outside (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Build sparse columns directly so alphabets beyond the dense storage
    // limit (the paper sweeps m to 10^4) never materialize an m x m array.
    let extras = ((m as f64 * density).round() as usize).min(m - 1);
    let mut columns: Vec<Vec<(Symbol, f64)>> = Vec::with_capacity(m);
    for j in 0..m {
        if extras == 0 {
            columns.push(vec![(Symbol(j as u16), 1.0)]);
            continue;
        }
        // Choose `extras` distinct non-diagonal rows.
        // BTreeSet keeps the iteration order (and thus the weight
        // assignment) deterministic for a fixed seed.
        let mut chosen: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        while chosen.len() < extras {
            let r = rng.gen_range(0..m);
            if r != j {
                chosen.insert(r);
            }
        }
        let mut col: Vec<(Symbol, f64)> = chosen
            .into_iter()
            .map(|r| (Symbol(r as u16), rng.gen_range(0.01..1.0)))
            .collect();
        let total: f64 = col.iter().map(|&(_, w)| w).sum();
        for (_, w) in &mut col {
            *w *= (1.0 - diag_weight) / total;
        }
        col.push((Symbol(j as u16), diag_weight));
        columns.push(col);
    }
    CompatibilityMatrix::from_sparse_columns(columns).expect("columns normalized by construction")
}

/// Generates the Fig. 15 database: `n` sequences of `len` symbols over an
/// `m`-symbol alphabet, with a handful of planted motifs so the miner has
/// something to find at any `m`. Symbols follow a Zipf distribution — the
/// realistic shape for the paper's named large-alphabet application
/// (e-commerce item catalogs) — so that the number of qualified patterns
/// decays *smoothly* as `m` grows rather than collapsing at a knife-edge.
pub fn scalability_db(m: usize, n: usize, len: usize, seed: u64) -> Vec<Vec<Symbol>> {
    use crate::planted::{generate, Background, GeneratorConfig, PlantedMotif};
    use noisemine_core::pattern::Pattern;

    let motif_len = 5.min(len);
    let motif_syms: Vec<Symbol> = (0..motif_len).map(|i| Symbol((i % m) as u16)).collect();
    let motif = Pattern::contiguous(&motif_syms).expect("non-empty motif");
    generate(&GeneratorConfig {
        num_sequences: n,
        min_len: len,
        max_len: len,
        alphabet_size: m,
        background: Background::Zipf(1.0),
        motifs: vec![PlantedMotif::new(motif, 0.3)],
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_matrix_is_column_stochastic() {
        let c = sparse_random_matrix(50, 0.1, 0.8, 7);
        for j in 0..50u16 {
            let sum: f64 = (0..50).map(|i| c.get(Symbol(i), Symbol(j))).sum();
            assert!((sum - 1.0).abs() < 1e-9, "column {j} sums to {sum}");
            assert!((c.get(Symbol(j), Symbol(j)) - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn density_is_respected() {
        let m = 100;
        let c = sparse_random_matrix(m, 0.1, 0.7, 3);
        // Each column: diagonal + ~10 extras.
        let nnz_total: f64 = c.density() * (m * m) as f64;
        let per_column = nnz_total / m as f64;
        assert!(
            (per_column - 11.0).abs() <= 2.0,
            "expected ~11 nonzeros per column, got {per_column}"
        );
    }

    #[test]
    fn zero_density_gives_identity() {
        let c = sparse_random_matrix(10, 0.0, 0.9, 1);
        assert!(c.is_identity(), "no extras means full diagonal mass");
    }

    #[test]
    fn db_respects_alphabet_and_shape() {
        let db = scalability_db(500, 100, 50, 11);
        assert_eq!(db.len(), 100);
        for s in &db {
            assert_eq!(s.len(), 50);
            assert!(s.iter().all(|x| x.index() < 500));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            scalability_db(100, 20, 30, 5),
            scalability_db(100, 20, 30, 5)
        );
        let a = sparse_random_matrix(20, 0.2, 0.8, 9);
        let b = sparse_random_matrix(20, 0.2, 0.8, 9);
        for i in 0..20u16 {
            for j in 0..20u16 {
                assert_eq!(a.get(Symbol(i), Symbol(j)), b.get(Symbol(i), Symbol(j)));
            }
        }
    }
}
