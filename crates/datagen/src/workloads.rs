//! Ready-made workloads for the paper's experiments.
//!
//! The central one is the **protein workload**: a standard (noise-free)
//! database of amino-acid sequences with planted motifs of graded lengths,
//! from which test databases are derived by noise injection — the setup of
//! §5.1–§5.6. Motif lengths are spread over a configurable range so that
//! experiments can bucket results "by number of non-eternal symbols"
//! (Fig. 7(c)(d), Fig. 11(a)).

use noisemine_core::matrix::CompatibilityMatrix;
use noisemine_core::pattern::Pattern;
use noisemine_core::{Alphabet, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::blosum;
use crate::noise::{apply_channel, apply_uniform_noise};
use crate::planted::{generate, Background, GeneratorConfig, PlantedMotif};

/// Configuration of the protein workload.
#[derive(Debug, Clone)]
pub struct ProteinWorkloadConfig {
    /// Number of sequences in the standard database.
    pub num_sequences: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Number of planted motifs.
    pub num_motifs: usize,
    /// Smallest motif length.
    pub min_motif_len: usize,
    /// Largest motif length.
    pub max_motif_len: usize,
    /// Fraction of sequences carrying each motif.
    pub occurrence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProteinWorkloadConfig {
    fn default() -> Self {
        Self {
            num_sequences: 1000,
            min_len: 40,
            max_len: 80,
            num_motifs: 6,
            min_motif_len: 4,
            max_motif_len: 14,
            occurrence: 0.3,
            seed: 2002, // the paper's year
        }
    }
}

/// A standard database with known planted motifs over the amino-acid
/// alphabet, plus derived test databases.
#[derive(Debug, Clone)]
pub struct ProteinWorkload {
    /// The 20-letter amino-acid alphabet.
    pub alphabet: Alphabet,
    /// The noise-free standard database.
    pub standard: Vec<Vec<Symbol>>,
    /// The planted motifs (ground truth).
    pub motifs: Vec<Pattern>,
    config: ProteinWorkloadConfig,
}

impl ProteinWorkload {
    /// Builds the workload: draws motifs with lengths evenly spread over
    /// `[min_motif_len, max_motif_len]` and generates the standard database.
    pub fn new(config: ProteinWorkloadConfig) -> Self {
        assert!(config.min_motif_len >= 2, "motifs must have length >= 2");
        assert!(
            config.max_motif_len >= config.min_motif_len && config.max_motif_len <= config.min_len,
            "motif lengths must fit in the shortest sequence"
        );
        let alphabet = Alphabet::amino_acids();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
        let mut motifs = Vec::with_capacity(config.num_motifs);
        for i in 0..config.num_motifs {
            let len = if config.num_motifs <= 1 {
                config.max_motif_len
            } else {
                config.min_motif_len
                    + i * (config.max_motif_len - config.min_motif_len) / (config.num_motifs - 1)
            };
            let symbols: Vec<Symbol> = (0..len).map(|_| Symbol(rng.gen_range(0..20u16))).collect();
            motifs.push(Pattern::contiguous(&symbols).expect("non-empty motif"));
        }
        let gen_cfg = GeneratorConfig {
            num_sequences: config.num_sequences,
            min_len: config.min_len,
            max_len: config.max_len,
            alphabet_size: 20,
            background: Background::Zipf(0.4), // mild amino-acid skew
            motifs: motifs
                .iter()
                .map(|p| PlantedMotif::new(p.clone(), config.occurrence))
                .collect(),
            seed: config.seed,
        };
        let standard = generate(&gen_cfg);
        Self {
            alphabet,
            standard,
            motifs,
            config,
        }
    }

    /// Builds with the default configuration.
    pub fn default_workload() -> Self {
        Self::new(ProteinWorkloadConfig::default())
    }

    /// The workload configuration.
    pub fn config(&self) -> &ProteinWorkloadConfig {
        &self.config
    }

    /// Derives a test database with uniform noise `alpha` and the matching
    /// compatibility matrix (§5.1's protocol).
    pub fn uniform_test_db(
        &self,
        alpha: f64,
        seed: u64,
    ) -> (Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = apply_uniform_noise(&self.standard, alpha, 20, &mut rng);
        let matrix = CompatibilityMatrix::uniform_noise(20, alpha)
            .expect("alpha validated by apply_uniform_noise");
        (noisy, matrix)
    }

    /// Derives a test database under the *structured* mutation-partner
    /// channel of degree `alpha` (each amino acid mutates into its
    /// BLOSUM-likeliest partner, per the paper's Figure 1 motivation), with
    /// the exact Bayes-inverted compatibility matrix.
    pub fn partner_test_db(
        &self,
        alpha: f64,
        seed: u64,
    ) -> (Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel = crate::noise::partner_channel(20, alpha, &blosum::partner_map(2));
        let noisy = apply_channel(&self.standard, &channel, &mut rng);
        (noisy, crate::noise::channel_to_compatibility(&channel))
    }

    /// Derives a test database mutated per the BLOSUM50 channel at rate
    /// `mu`, with the matching compatibility matrix (§5.1's in-text
    /// experiment).
    pub fn blosum_test_db(&self, mu: f64, seed: u64) -> (Vec<Vec<Symbol>>, CompatibilityMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel = blosum::mutation_channel(mu);
        let noisy = apply_channel(&self.standard, &channel, &mut rng);
        (noisy, blosum::compatibility_matrix(mu))
    }
}

/// Accuracy and completeness of a result set against a reference set —
/// the two quality measures of §5.1:
/// accuracy `|R' ∩ R| / |R'|`, completeness `|R' ∩ R| / |R|`.
pub fn accuracy_completeness<T: std::hash::Hash + Eq>(
    result: &std::collections::HashSet<T>,
    reference: &std::collections::HashSet<T>,
) -> (f64, f64) {
    let inter = result.intersection(reference).count() as f64;
    let accuracy = if result.is_empty() {
        1.0
    } else {
        inter / result.len() as f64
    };
    let completeness = if reference.is_empty() {
        1.0
    } else {
        inter / reference.len() as f64
    };
    (accuracy, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::matching::{db_support, MemorySequences};
    use std::collections::HashSet;

    fn small() -> ProteinWorkload {
        ProteinWorkload::new(ProteinWorkloadConfig {
            num_sequences: 200,
            min_len: 30,
            max_len: 40,
            num_motifs: 3,
            min_motif_len: 4,
            max_motif_len: 8,
            occurrence: 0.4,
            seed: 9,
        })
    }

    #[test]
    fn workload_shape() {
        let w = small();
        assert_eq!(w.standard.len(), 200);
        assert_eq!(w.motifs.len(), 3);
        let lens: Vec<usize> = w.motifs.iter().map(Pattern::len).collect();
        assert_eq!(lens, vec![4, 6, 8]);
    }

    #[test]
    fn motifs_have_target_support_in_standard_db() {
        let w = small();
        let db = MemorySequences(w.standard.clone());
        for motif in &w.motifs {
            let s = db_support(motif, &db);
            assert!(
                s >= 0.3,
                "motif {motif} support {s} below planted occurrence"
            );
        }
    }

    #[test]
    fn uniform_test_db_reduces_support_of_long_motifs() {
        let w = small();
        let (noisy, matrix) = w.uniform_test_db(0.2, 77);
        let std_db = MemorySequences(w.standard.clone());
        let noisy_db = MemorySequences(noisy);
        let longest = w.motifs.last().unwrap();
        let s_std = db_support(longest, &std_db);
        let s_noisy = db_support(longest, &noisy_db);
        assert!(
            s_noisy < s_std,
            "noise should conceal the long motif ({s_noisy} !< {s_std})"
        );
        assert_eq!(matrix.len(), 20);
    }

    #[test]
    fn blosum_test_db_is_consistent() {
        let w = small();
        let (noisy, matrix) = w.blosum_test_db(0.15, 5);
        assert_eq!(noisy.len(), w.standard.len());
        assert_eq!(matrix.len(), 20);
        let rate = crate::noise::observed_noise_rate(&w.standard, &noisy);
        assert!((rate - 0.15).abs() < 0.02, "mutation rate {rate}");
    }

    #[test]
    fn accuracy_completeness_measures() {
        let result: HashSet<i32> = [1, 2, 3, 4].into_iter().collect();
        let reference: HashSet<i32> = [3, 4, 5, 6, 7, 8].into_iter().collect();
        let (acc, comp) = accuracy_completeness(&result, &reference);
        assert!((acc - 0.5).abs() < 1e-12);
        assert!((comp - 2.0 / 6.0).abs() < 1e-12);
        let empty: HashSet<i32> = HashSet::new();
        assert_eq!(accuracy_completeness(&empty, &reference), (1.0, 0.0));
        assert_eq!(accuracy_completeness(&result, &empty).0, 0.0);
    }
}
