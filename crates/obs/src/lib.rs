//! # noisemine-obs
//!
//! The observability layer of the noisemine workspace: a lightweight,
//! zero-dependency metrics registry plus structured span timers, with
//! pluggable sinks that render both JSON snapshots and Prometheus text
//! exposition.
//!
//! The paper's whole pitch is operational — border collapsing exists so the
//! miner performs `O(log(len(FQT)))` full database scans instead of one per
//! lattice level (Algorithm 4.3), and the Chernoff bound trades sample size
//! for ambiguity (Claim 4.1). This crate makes those costs *visible*: the
//! other workspace crates record counters (`collapse_db_scans`, candidates
//! classified frequent/ambiguous/infrequent, bytes read), gauges (Chernoff
//! `ε`, restricted spread `R`), and histograms (phase durations, block
//! fill/drain times) into a process-wide [`Registry`]; callers snapshot the
//! registry and render it wherever they need it. See
//! `docs/OBSERVABILITY.md` for the complete reference of every metric the
//! workspace emits and which paper quantity each corresponds to.
//!
//! ## Design constraints
//!
//! - **Zero dependencies.** Everything is `std`: atomics for the hot path,
//!   a mutex only for metric registration (which happens once per metric
//!   name, not per observation).
//! - **Bit-identical mining output.** Instrumentation only *observes* — it
//!   never participates in a mining computation, so an instrumented run
//!   produces exactly the same patterns as an uninstrumented one.
//! - **Near-zero cost when disabled.** Recording is gated on a single
//!   relaxed atomic-bool load (see [`enabled`]); span timers skip the
//!   `Instant::now` calls entirely while disabled. Nothing is recorded
//!   until a caller opts in with [`enable`], which the CLI does only when
//!   `--metrics-out` is given.
//!
//! ## Quick start
//!
//! ```
//! use noisemine_obs as obs;
//!
//! obs::enable();
//! let scans = obs::counter("demo_db_scans", "Full database scans", "scans");
//! scans.inc();
//! let timer = obs::histogram(
//!     "demo_phase_seconds",
//!     "Phase wall-clock time",
//!     "seconds",
//!     obs::duration_buckets(),
//! );
//! {
//!     let _span = timer.span(); // records elapsed seconds on drop
//! }
//! let snapshot = obs::global().snapshot();
//! assert!(snapshot.to_json().contains("demo_db_scans"));
//! assert!(snapshot.to_prometheus().contains("# TYPE demo_db_scans counter"));
//! ```

mod registry;
mod sink;
mod snapshot;

pub use registry::{count_buckets, duration_buckets, Counter, Gauge, Histogram, Registry, Span};
pub use sink::{FileSink, SinkFormat};
pub use snapshot::{MetricSnapshot, MetricValue, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Turns recording on for the process-wide registry. Until this is called,
/// every counter/gauge/histogram operation is a single relaxed load + branch.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording back off (primarily for tests).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry all workspace instrumentation records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Registers (or fetches) a counter in the [`global`] registry.
pub fn counter(name: &str, help: &str, unit: &str) -> Counter {
    global().counter(name, help, unit)
}

/// Registers (or fetches) a gauge in the [`global`] registry.
pub fn gauge(name: &str, help: &str, unit: &str) -> Gauge {
    global().gauge(name, help, unit)
}

/// Registers (or fetches) a histogram in the [`global`] registry.
pub fn histogram(name: &str, help: &str, unit: &str, bounds: Vec<f64>) -> Histogram {
    global().histogram(name, help, unit, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_round_trip() {
        // Note: other tests in this binary share the flag; only check the
        // transitions we drive ourselves.
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
        enable();
    }

    #[test]
    fn global_registry_is_shared() {
        enable();
        let a = counter("obs_test_shared", "test", "ops");
        let b = counter("obs_test_shared", "test", "ops");
        let before = a.get();
        b.inc();
        assert_eq!(a.get(), before + 1);
    }
}
