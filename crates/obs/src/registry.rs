//! The metrics registry: named atomic counters, gauges, and bucketed
//! histograms, plus the span timer that feeds histograms.
//!
//! Registration (name → metric) goes through a mutex and happens once per
//! metric name; the handles it returns are `Arc`-backed and record through
//! plain atomics, so the hot path never touches a lock. All recording is
//! gated on [`crate::enabled`] so an instrumented binary with observability
//! off pays one relaxed load + branch per call site.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{MetricSnapshot, MetricValue, Snapshot};

/// A monotonically increasing integer metric.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point metric.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets the gauge to `min(current, value)` (e.g. the smallest restricted
    /// spread seen in a run). Lock-free CAS loop; last concurrent minimum
    /// wins deterministically because `min` is commutative.
    pub fn set_min(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let cur = f64::from_bits(current);
            // An untouched gauge reads 0.0; treat it as "unset" so the first
            // observation establishes the minimum.
            if cur != 0.0 && cur <= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Sets the gauge to `max(current, value)` (e.g. the widest Chernoff
    /// half-band `ε` used in a run). As with [`Gauge::set_min`], an
    /// untouched gauge (0.0) counts as unset.
    pub fn set_max(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let cur = f64::from_bits(current);
            if cur != 0.0 && cur >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Upper bounds of the finite buckets (strictly increasing). A value
    /// `v` lands in the first bucket with `v <= bound` — Prometheus `le`
    /// semantics — and past the last bound in the implicit `+Inf` bucket.
    pub(crate) bounds: Vec<f64>,
    /// One count per finite bound, plus the trailing `+Inf` bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    /// Sum of observations as f64 bits, updated with a CAS loop.
    pub(crate) sum_bits: AtomicU64,
}

/// A bucketed distribution metric (Prometheus-style cumulative-`le`
/// buckets at snapshot time; stored as per-bucket counts internally).
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Starts a span whose elapsed seconds are recorded on drop (or
    /// [`Span::finish`]). While recording is disabled the span takes no
    /// timestamp and records nothing.
    pub fn span(&self) -> Span {
        Span {
            start: crate::enabled().then(Instant::now),
            histogram: self.clone(),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// A scoped timer feeding a [`Histogram`] in seconds.
///
/// Obtained from [`Histogram::span`]; records the elapsed wall-clock time
/// exactly once, on drop or on an explicit [`Span::finish`].
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    histogram: Histogram,
}

impl Span {
    /// Ends the span now, recording its duration.
    pub fn finish(mut self) {
        self.record();
    }

    /// Discards the span without recording anything (e.g. a wait that ended
    /// because the stream closed rather than because work arrived).
    pub fn cancel(mut self) {
        self.start = None;
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.observe(start.elapsed().as_secs_f64());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// Exponential duration buckets in seconds: 1 µs … ~67 s (powers of 4),
/// suiting everything from a per-block drain to a full phase.
pub fn duration_buckets() -> Vec<f64> {
    (0..14).map(|i| 1e-6 * 4f64.powi(i)).collect()
}

/// Exponential count buckets: 1 … 65 536 (powers of 4), for queue depths
/// and per-scan probe sizes.
pub fn count_buckets() -> Vec<f64> {
    (0..9).map(|i| 4f64.powi(i)).collect()
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Registration {
    help: String,
    unit: String,
    metric: Metric,
}

/// A set of named metrics. Most code uses the process-wide
/// [`crate::global`] registry; tests construct private ones.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Registration>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter, or returns the existing handle for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str, unit: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let reg = metrics
            .entry(name.to_string())
            .or_insert_with(|| Registration {
                help: help.to_string(),
                unit: unit.to_string(),
                metric: Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            });
        match &reg.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is already registered as a non-counter"),
        }
    }

    /// Registers a gauge, or returns the existing handle for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, unit: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let reg = metrics
            .entry(name.to_string())
            .or_insert_with(|| Registration {
                help: help.to_string(),
                unit: unit.to_string(),
                metric: Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))),
            });
        match &reg.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is already registered as a non-gauge"),
        }
    }

    /// Registers a histogram with the given finite bucket bounds, or
    /// returns the existing handle for `name` (the bounds of the first
    /// registration win).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is empty or not strictly increasing.
    pub fn histogram(&self, name: &str, help: &str, unit: &str, bounds: Vec<f64>) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram {name} needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly increasing"
        );
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let reg = metrics.entry(name.to_string()).or_insert_with(|| {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Registration {
                help: help.to_string(),
                unit: unit.to_string(),
                metric: Metric::Histogram(Histogram(Arc::new(HistogramInner {
                    bounds,
                    buckets,
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }))),
            }
        });
        match &reg.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is already registered as a non-histogram"),
        }
    }

    /// Takes a point-in-time snapshot of every registered metric, sorted by
    /// name. Each atomic is read once, so a snapshot taken under concurrent
    /// increments is internally consistent per metric and deterministic to
    /// render (the name order never depends on registration order).
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let metrics = metrics
            .iter()
            .map(|(name, reg)| {
                let value = match &reg.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let counts: Vec<u64> =
                            h.0.buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect();
                        MetricValue::Histogram {
                            bounds: h.0.bounds.clone(),
                            counts,
                            count: h.count(),
                            sum: h.sum(),
                        }
                    }
                };
                MetricSnapshot {
                    name: name.clone(),
                    help: reg.help.clone(),
                    unit: reg.unit.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { metrics }
    }

    /// Resets every metric to zero (counters/gauges to 0, histograms to
    /// empty), keeping registrations and handles valid. Used between bench
    /// scale points so each snapshot covers one run.
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        for reg in metrics.values() {
            match &reg.metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0.0f64.to_bits(), Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.0.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.0.count.store(0, Ordering::Relaxed);
                    h.0.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        crate::enable();
        let r = Registry::new();
        let c = r.counter("c", "a counter", "ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge", "ratio");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        g.set_min(0.5);
        assert_eq!(g.get(), 0.25, "set_min must not raise the value");
        g.set_min(0.1);
        assert_eq!(g.get(), 0.1);
        g.set_max(0.05);
        assert_eq!(g.get(), 0.1, "set_max must not lower the value");
        g.set_max(0.9);
        assert_eq!(g.get(), 0.9);
    }

    #[test]
    fn histogram_bucket_boundaries_use_le_semantics() {
        crate::enable();
        let r = Registry::new();
        let h = r.histogram("h", "test", "seconds", vec![1.0, 2.0, 4.0]);
        // A value equal to a bound lands in that bucket (v <= bound).
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 9.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let MetricValue::Histogram {
            counts,
            count,
            sum,
            bounds,
        } = &snap.metrics[0].value
        else {
            panic!("expected histogram");
        };
        assert_eq!(bounds, &vec![1.0, 2.0, 4.0]);
        assert_eq!(counts, &vec![2, 2, 1, 1]); // (≤1): 0.5, 1.0; (≤2): 1.5, 2.0; (≤4): 4.0; +Inf: 9.0
        assert_eq!(*count, 6);
        assert!((sum - 18.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        let r = Registry::new();
        assert!(std::panic::catch_unwind(|| r.histogram("x", "", "", vec![])).is_err());
        let r = Registry::new();
        assert!(std::panic::catch_unwind(|| r.histogram("y", "", "", vec![2.0, 1.0])).is_err());
    }

    #[test]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "", "");
        assert!(std::panic::catch_unwind(|| r.gauge("m", "", "")).is_err());
    }

    #[test]
    fn snapshot_deterministic_under_concurrent_increments() {
        crate::enable();
        let r = Registry::new();
        let c = r.counter("concurrent", "test", "ops");
        let h = r.histogram("concurrent_h", "test", "units", count_buckets());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe((i % 7) as f64);
                    }
                });
            }
            // Snapshots taken mid-flight must render without panicking and
            // stay monotone in the counter.
            let mut last = 0;
            for _ in 0..50 {
                let snap = r.snapshot();
                let MetricValue::Counter(v) = snap.metrics[0].value else {
                    panic!("expected counter first (sorted by name)");
                };
                assert!(v >= last);
                last = v;
                let _ = snap.to_json();
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), total);
        assert_eq!(h.count(), total);
        // Histogram bucket counts and count agree after the dust settles.
        let snap = r.snapshot();
        let MetricValue::Histogram { counts, count, .. } = &snap
            .metrics
            .iter()
            .find(|m| m.name == "concurrent_h")
            .unwrap()
            .value
        else {
            panic!("expected histogram");
        };
        assert_eq!(counts.iter().sum::<u64>(), *count);
        // Two quiescent snapshots render identically.
        assert_eq!(r.snapshot().to_json(), r.snapshot().to_json());
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let r = Registry::new();
        let c = r.counter("gated", "", "");
        let h = r.histogram("gated_h", "", "", vec![1.0]);
        crate::disable();
        c.inc();
        h.observe(0.5);
        let span = h.span();
        drop(span);
        crate::enable();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn span_records_elapsed_seconds() {
        crate::enable();
        let r = Registry::new();
        let h = r.histogram("span_h", "", "seconds", duration_buckets());
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002);
        let span = h.span();
        span.finish();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        crate::enable();
        let r = Registry::new();
        let c = r.counter("resettable", "", "");
        c.add(7);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
