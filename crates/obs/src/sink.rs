//! Snapshot sinks: where a rendered [`Snapshot`](crate::Snapshot) goes.
//!
//! The only sink shipped today is [`FileSink`], which writes atomically
//! (temp file + rename) so a reader polling the path — e.g. a scrape agent
//! tailing the periodic emission of `noisemine stream --metrics-out` —
//! never observes a half-written document.

use crate::snapshot::Snapshot;
use std::io;
use std::path::{Path, PathBuf};

/// Output format for a rendered snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// `noisemine-metrics/1` JSON document.
    Json,
    /// Prometheus text exposition format (0.0.4).
    Prometheus,
}

impl SinkFormat {
    /// Chooses a format from a file extension: `.prom` / `.txt` mean
    /// Prometheus text, everything else (including no extension) JSON.
    pub fn from_path(path: &Path) -> SinkFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("prom") | Some("txt") => SinkFormat::Prometheus,
            _ => SinkFormat::Json,
        }
    }

    /// Renders a snapshot in this format.
    pub fn render(self, snapshot: &Snapshot) -> String {
        match self {
            SinkFormat::Json => snapshot.to_json(),
            SinkFormat::Prometheus => snapshot.to_prometheus(),
        }
    }
}

/// Writes snapshots to a file, atomically, in a format inferred from the
/// path (see [`SinkFormat::from_path`]).
#[derive(Debug, Clone)]
pub struct FileSink {
    path: PathBuf,
    format: SinkFormat,
}

impl FileSink {
    /// A sink writing to `path` in the format its extension implies.
    pub fn new(path: impl Into<PathBuf>) -> FileSink {
        let path = path.into();
        let format = SinkFormat::from_path(&path);
        FileSink { path, format }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The format this sink renders.
    pub fn format(&self) -> SinkFormat {
        self.format
    }

    /// Renders `snapshot` and replaces the file contents atomically: the
    /// rendering is written to `<path>.tmp` and renamed over `path`, so a
    /// concurrent reader sees either the old document or the new one.
    pub fn write(&self, snapshot: &Snapshot) -> io::Result<()> {
        let rendered = self.format.render(snapshot);
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, rendered)?;
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{MetricSnapshot, MetricValue};

    fn snap() -> Snapshot {
        Snapshot {
            metrics: vec![MetricSnapshot {
                name: "sink_test_total".into(),
                help: "test".into(),
                unit: "ops".into(),
                value: MetricValue::Counter(7),
            }],
        }
    }

    #[test]
    fn format_follows_extension() {
        assert_eq!(SinkFormat::from_path(Path::new("m.json")), SinkFormat::Json);
        assert_eq!(
            SinkFormat::from_path(Path::new("m.prom")),
            SinkFormat::Prometheus
        );
        assert_eq!(
            SinkFormat::from_path(Path::new("metrics.txt")),
            SinkFormat::Prometheus
        );
        assert_eq!(
            SinkFormat::from_path(Path::new("metrics")),
            SinkFormat::Json
        );
    }

    #[test]
    fn file_sink_writes_and_replaces() {
        let dir = std::env::temp_dir().join("noisemine_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let sink = FileSink::new(&path);
        assert_eq!(sink.format(), SinkFormat::Json);

        sink.write(&snap()).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.contains("sink_test_total"));
        assert!(first.contains("\"value\": 7"));

        // Second write replaces, not appends.
        sink.write(&snap()).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        // The temp file does not linger.
        assert!(!dir.join("m.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prometheus_sink_renders_exposition() {
        let dir = std::env::temp_dir().join("noisemine_obs_sink_prom_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.prom");
        let sink = FileSink::new(&path);
        assert_eq!(sink.format(), SinkFormat::Prometheus);
        sink.write(&snap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE sink_test_total counter"));
        assert!(text.contains("sink_test_total 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
