//! Point-in-time snapshots of a [`crate::Registry`] and their two text
//! renderings: a JSON document (for `--metrics-out`, bench artifacts, and
//! programmatic consumption) and Prometheus text exposition format (for
//! scraping).
//!
//! Rendering is deterministic: metrics are sorted by name and every number
//! is formatted with a fixed rule, so two snapshots of identical state
//! produce byte-identical text. The vendored serde shim does not serialize,
//! so JSON is emitted by hand — as everywhere else in the workspace.

use std::fmt::Write as _;

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set floating-point value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram {
        /// Finite bucket upper bounds (strictly increasing).
        bounds: Vec<f64>,
        /// Per-bucket observation counts; one entry per bound plus the
        /// trailing `+Inf` bucket (non-cumulative).
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of all observed values.
        sum: f64,
    },
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric name (e.g. `core_collapse_db_scans`).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Unit of the value (`seconds`, `sequences`, `bytes`, …).
    pub unit: String,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time view of every metric in a registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

/// Formats an `f64` as a JSON-safe number: non-finite values (which no
/// metric should produce, but a gauge could be fed one) become `0`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` for f64 never emits exponents, so the output is always
        // a valid JSON number; integers just lack a fraction part.
        s
    } else {
        "0".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The value of a counter metric, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge metric, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The `(count, sum)` of a histogram metric, if present.
    pub fn histogram_totals(&self, name: &str) -> Option<(u64, f64)> {
        match &self.get(name)?.value {
            MetricValue::Histogram { count, sum, .. } => Some((*count, *sum)),
            _ => None,
        }
    }

    /// Renders the snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "format": "noisemine-metrics/1",
    ///   "metrics": {
    ///     "core_collapse_db_scans": {"type": "counter", "unit": "scans",
    ///                                "help": "...", "value": 2},
    ///     "core_phase1_seconds": {"type": "histogram", "unit": "seconds",
    ///                             "help": "...", "count": 1, "sum": 0.0123,
    ///                             "buckets": [{"le": 1e-06, "count": 0}, ...]}
    ///   }
    /// }
    /// ```
    ///
    /// Keys are sorted; output is deterministic for identical state.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"format\": \"noisemine-metrics/1\",\n  \"metrics\": {\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = write!(
                s,
                "    \"{}\": {{\"type\": \"{}\", \"unit\": \"{}\", \"help\": \"{}\", ",
                json_escape(&m.name),
                match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                },
                json_escape(&m.unit),
                json_escape(&m.help),
            );
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(s, "\"value\": {v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(s, "\"value\": {}}}", json_f64(*v));
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let _ = write!(
                        s,
                        "\"count\": {count}, \"sum\": {}, \"buckets\": [",
                        json_f64(*sum)
                    );
                    for (j, c) in counts.iter().enumerate() {
                        let le = bounds
                            .get(j)
                            .map(|b| json_f64(*b))
                            .unwrap_or_else(|| "\"+Inf\"".to_string());
                        let comma = if j + 1 < counts.len() { ", " } else { "" };
                        let _ = write!(s, "{{\"le\": {le}, \"count\": {c}}}{comma}");
                    }
                    s.push_str("]}");
                }
            }
            s.push_str(comma);
            s.push('\n');
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders the snapshot in Prometheus text exposition format (version
    /// 0.0.4): `# HELP` / `# TYPE` headers, cumulative `_bucket{le=...}`
    /// series for histograms, `_count` / `_sum` companions.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for m in &self.metrics {
            let help = m.help.replace('\\', "\\\\").replace('\n', "\\n");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(s, "# HELP {} {help}", m.name);
                    let _ = writeln!(s, "# TYPE {} counter", m.name);
                    let _ = writeln!(s, "{} {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(s, "# HELP {} {help}", m.name);
                    let _ = writeln!(s, "# TYPE {} gauge", m.name);
                    let _ = writeln!(s, "{} {v}", m.name);
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let _ = writeln!(s, "# HELP {} {help}", m.name);
                    let _ = writeln!(s, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (j, c) in counts.iter().enumerate() {
                        cumulative += c;
                        let le = bounds
                            .get(j)
                            .map(|b| format!("{b}"))
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(s, "{}_bucket{{le=\"{le}\"}} {cumulative}", m.name);
                    }
                    let _ = writeln!(s, "{}_sum {sum}", m.name);
                    let _ = writeln!(s, "{}_count {count}", m.name);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "a_counter".into(),
                    help: "counts \"things\"".into(),
                    unit: "things".into(),
                    value: MetricValue::Counter(3),
                },
                MetricSnapshot {
                    name: "b_gauge".into(),
                    help: "level".into(),
                    unit: "ratio".into(),
                    value: MetricValue::Gauge(0.5),
                },
                MetricSnapshot {
                    name: "c_hist".into(),
                    help: "latency".into(),
                    unit: "seconds".into(),
                    value: MetricValue::Histogram {
                        bounds: vec![0.1, 1.0],
                        counts: vec![2, 1, 1],
                        count: 4,
                        sum: 2.75,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_escapes_and_structures() {
        let json = sample().to_json();
        assert!(json.contains("\"format\": \"noisemine-metrics/1\""));
        assert!(json.contains("counts \\\"things\\\""));
        assert!(json.contains("\"value\": 3"));
        assert!(json.contains("\"value\": 0.5"));
        assert!(json.contains("\"count\": 4, \"sum\": 2.75"));
        assert!(json.contains("{\"le\": \"+Inf\", \"count\": 1}"));
        // Balanced braces and brackets — a cheap structural check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE a_counter counter"));
        assert!(prom.contains("# TYPE b_gauge gauge"));
        assert!(prom.contains("# TYPE c_hist histogram"));
        assert!(prom.contains("c_hist_bucket{le=\"0.1\"} 2"));
        assert!(prom.contains("c_hist_bucket{le=\"1\"} 3"));
        assert!(prom.contains("c_hist_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("c_hist_sum 2.75"));
        assert!(prom.contains("c_hist_count 4"));
    }

    #[test]
    fn accessors_find_values() {
        let snap = sample();
        assert_eq!(snap.counter_value("a_counter"), Some(3));
        assert_eq!(snap.gauge_value("b_gauge"), Some(0.5));
        assert_eq!(snap.histogram_totals("c_hist"), Some((4, 2.75)));
        assert_eq!(snap.counter_value("missing"), None);
        assert_eq!(snap.counter_value("b_gauge"), None, "kind mismatch is None");
    }

    #[test]
    fn non_finite_gauges_render_as_zero() {
        let snap = Snapshot {
            metrics: vec![MetricSnapshot {
                name: "nan".into(),
                help: String::new(),
                unit: String::new(),
                value: MetricValue::Gauge(f64::NAN),
            }],
        };
        assert!(snap.to_json().contains("\"value\": 0"));
    }
}
