//! CRC32C (Castagnoli) — the checksum of NMSEQDB format v2.
//!
//! A plain table-driven software implementation (reflected polynomial
//! `0x82F63B38`, the iSCSI/ext4 variant). The disk format checksums are
//! small relative to the I/O they protect, so one-byte-at-a-time table
//! lookup is fast enough; what matters here is having *no* dependency and a
//! stable, well-known polynomial with good burst/bit-flip detection
//! (CRC32C detects all single-bit and all 2-bit errors within its span, and
//! any burst up to 32 bits).

/// Reflected CRC32C polynomial (Castagnoli, normal form `0x1EDC6F41`).
const POLY: u32 = 0x82F6_3B78;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32C state.
///
/// ```
/// use noisemine_seqdb::crc::Crc32c;
/// let mut crc = Crc32c::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xE306_9283); // the CRC32C check value
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state (initial value `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Self(u32::MAX)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum (with output reflection/inversion applied).
    pub fn finish(self) -> u32 {
        !self.0
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = Crc32c::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC32C check value for "123456789".
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let mut crc = Crc32c::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32c(&data));
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"noisemine sequence database".to_vec();
        let clean = crc32c(&data);
        for bit in 0..data.len() * 8 {
            let mut corrupt = data.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&corrupt), clean, "bit {bit} undetected");
        }
    }
}
