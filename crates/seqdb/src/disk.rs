//! Disk-resident sequence database.
//!
//! The paper assumes a database "far beyond the memory capacity" (§2.2), so
//! algorithm cost is dominated by full scans of the data. This module
//! provides a simple, robust binary format and a reader whose
//! [`SequenceScan::scan`] implementation streams the file with a buffered
//! reader, never materializing more than one sequence at a time, and counts
//! each scan.
//!
//! ## Format
//!
//! ```text
//! magic   : 8 bytes  b"NMSEQDB\0"
//! version : u32 LE   (currently 1)
//! count   : u64 LE   number of sequences
//! per sequence:
//!   id    : u64 LE
//!   len   : u32 LE   number of symbols
//!   data  : len × u16 LE symbol ids
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use noisemine_core::matching::{SequenceBlock, SequenceScan};
use noisemine_core::Symbol;

/// File magic for the sequence-database format.
pub const MAGIC: &[u8; 8] = b"NMSEQDB\0";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from the disk layer.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a sequence database or is corrupt.
    Format(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "i/o error: {e}"),
            DiskError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::Format(_) => None,
        }
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// Result alias for the disk layer.
pub type DiskResult<T> = Result<T, DiskError>;

/// Streaming writer for the on-disk format.
pub struct DiskDbWriter {
    out: BufWriter<File>,
    count: u64,
    path: PathBuf,
}

impl DiskDbWriter {
    /// Creates (truncating) a database file at `path`.
    ///
    /// The header's sequence count is patched in by [`DiskDbWriter::finish`];
    /// a writer that is dropped without `finish` leaves a file whose header
    /// count is zero, which readers treat as empty.
    pub fn create(path: impl AsRef<Path>) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        let mut header = Vec::with_capacity(20);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // count placeholder
        out.write_all(&header)?;
        Ok(Self {
            out,
            count: 0,
            path,
        })
    }

    /// Reopens an existing database file for appending: validates the
    /// header, seeks past the last record, and continues the sequence
    /// count, so `append(p)` followed by writes and [`DiskDbWriter::finish`]
    /// extends the database in place. This is the substrate of the
    /// streaming ingestion engine's append-only log.
    pub fn append(path: impl AsRef<Path>) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        // Validate header + count via the reader path.
        let existing = DiskDb::open(&path)?;
        let count = existing.count;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        // Seek to the end of the last record (scan the record headers; the
        // file may be longer than the counted records if a previous append
        // crashed before patching the header — truncate those).
        let mut pos: u64 = 20;
        {
            let mut reader = BufReader::new(&mut file);
            reader.seek(SeekFrom::Start(pos))?;
            let mut head = [0u8; 12];
            for i in 0..count {
                reader
                    .read_exact(&mut head)
                    .map_err(|e| DiskError::Format(format!("truncated record {i}: {e}")))?;
                let len = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as u64;
                pos += 12 + len * 2;
                reader.seek(SeekFrom::Start(pos))?;
            }
        }
        file.set_len(pos)?;
        file.seek(SeekFrom::Start(pos))?;
        Ok(Self {
            out: BufWriter::new(file),
            count,
            path,
        })
    }

    /// Number of sequences written so far (including pre-existing ones when
    /// opened with [`DiskDbWriter::append`]).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one sequence.
    pub fn write_sequence(&mut self, id: u64, symbols: &[Symbol]) -> DiskResult<()> {
        let mut buf = Vec::with_capacity(12 + symbols.len() * 2);
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
        for s in symbols {
            buf.extend_from_slice(&s.0.to_le_bytes());
        }
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Flushes, patches the header count, and returns a reader for the file.
    pub fn finish(mut self) -> DiskResult<DiskDb> {
        self.out.flush()?;
        let file = self.out.into_inner().map_err(|e| e.into_error())?;
        // Patch the count field (offset 12).
        use std::os::unix::fs::FileExt;
        file.write_all_at(&self.count.to_le_bytes(), 12)?;
        file.sync_all()?;
        drop(file);
        DiskDb::open(&self.path)
    }
}

/// A read-only disk-resident sequence database.
///
/// Each [`SequenceScan::scan`] reopens and streams the file — deliberately,
/// to model the paper's disk-resident cost model — and increments the scan
/// counter.
#[derive(Debug)]
pub struct DiskDb {
    path: PathBuf,
    count: u64,
    scans: AtomicUsize,
}

impl DiskDb {
    /// Opens an existing database file and validates the header.
    pub fn open(path: impl AsRef<Path>) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = [0u8; 20];
        reader.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(DiskError::Format("bad magic; not a noisemine seqdb".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(DiskError::Format(format!(
                "unsupported version {version}, expected {VERSION}"
            )));
        }
        let count = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        Ok(Self {
            path,
            count,
            scans: AtomicUsize::new(0),
        })
    }

    /// Writes `sequences` to `path` and opens the result.
    pub fn create_from<'a, I>(path: impl AsRef<Path>, sequences: I) -> DiskResult<Self>
    where
        I: IntoIterator<Item = &'a [Symbol]>,
    {
        let mut w = DiskDbWriter::create(path)?;
        for (i, seq) in sequences.into_iter().enumerate() {
            w.write_sequence(i as u64, seq)?;
        }
        w.finish()
    }

    /// Number of full scans performed so far.
    pub fn scans_performed(&self) -> usize {
        self.scans.load(Ordering::Relaxed)
    }

    /// Resets the scan counter.
    pub fn reset_scans(&self) {
        self.scans.store(0, Ordering::Relaxed);
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Streams the file, calling `visit` per sequence; propagates I/O and
    /// format errors instead of panicking.
    fn try_scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> DiskResult<()> {
        let mut reader = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
        let mut header = [0u8; 20];
        reader.read_exact(&mut header)?;
        let mut record_head = [0u8; 12];
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        let mut bytes_read = header.len() as u64;
        for i in 0..self.count {
            reader
                .read_exact(&mut record_head)
                .map_err(|e| DiskError::Format(format!("truncated record {i}: {e}")))?;
            let id = u64::from_le_bytes(record_head[..8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(record_head[8..12].try_into().expect("4 bytes")) as usize;
            raw.resize(len * 2, 0);
            reader
                .read_exact(&mut raw)
                .map_err(|e| DiskError::Format(format!("truncated sequence {id}: {e}")))?;
            symbols.clear();
            symbols.extend(
                raw.chunks_exact(2)
                    .map(|c| Symbol(u16::from_le_bytes([c[0], c[1]]))),
            );
            bytes_read += (record_head.len() + raw.len()) as u64;
            visit(id, &symbols);
        }
        crate::obs::disk_bytes_read().add(bytes_read);
        Ok(())
    }
}

impl SequenceScan for DiskDb {
    fn num_sequences(&self) -> usize {
        self.count as usize
    }

    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        crate::obs::disk_scans().inc();
        // The SequenceScan trait is infallible by design (the mining layer
        // treats the database as a reliable substrate); surface I/O errors
        // loudly rather than silently returning partial data.
        self.try_scan(visit)
            .unwrap_or_else(|e| panic!("scan of {} failed: {e}", self.path.display()));
    }

    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        crate::obs::disk_scans().inc();
        // Read-ahead double buffering: a dedicated thread streams and
        // decodes the file into blocks while the calling thread consumes
        // them, so disk I/O overlaps with compute.
        crate::pipeline::double_buffered(
            block_size,
            |emitter| self.try_scan(&mut |id, seq| emitter.push(id, seq)),
            sink,
        )
        .unwrap_or_else(|e| panic!("scan of {} failed: {e}", self.path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().map(|&x| Symbol(x)).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("noisemine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("roundtrip.db");
        let data = [syms(&[0, 1, 2]), syms(&[]), syms(&[65535, 7])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(db.num_sequences(), 3);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, data[0].clone()),
                (1, data[1].clone()),
                (2, data[2].clone())
            ]
        );
        assert_eq!(db.scans_performed(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_db() {
        let path = tmp("empty.db");
        let db = DiskDb::create_from(&path, std::iter::empty()).unwrap();
        assert_eq!(db.num_sequences(), 0);
        db.scan(&mut |_, _| panic!("no sequences expected"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.db");
        std::fs::write(&path, b"NOTADB!!aaaaaaaaaaaa").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_version() {
        let path = tmp("badversion.db");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_truncation() {
        let path = tmp("trunc.db");
        let data = [syms(&[1, 2, 3, 4])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        // Chop off the last two bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let db = DiskDb::open(&path).unwrap();
        let err = db.try_scan(&mut |_, _| {});
        assert!(matches!(err, Err(DiskError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_extends_in_place() {
        let path = tmp("append.db");
        let first = [syms(&[1, 2]), syms(&[3])];
        let db = DiskDb::create_from(&path, first.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(db.num_sequences(), 2);
        drop(db);

        let mut w = DiskDbWriter::append(&path).unwrap();
        assert_eq!(w.count(), 2);
        w.write_sequence(2, &syms(&[4, 5, 6])).unwrap();
        w.write_sequence(3, &syms(&[])).unwrap();
        let db = w.finish().unwrap();
        assert_eq!(db.num_sequences(), 4);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, syms(&[1, 2])),
                (1, syms(&[3])),
                (2, syms(&[4, 5, 6])),
                (3, syms(&[])),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_truncates_uncounted_tail() {
        // A crashed append leaves bytes past the counted records; reopening
        // for append must discard them so the file stays self-consistent.
        let path = tmp("append-tail.db");
        let data = [syms(&[7, 8])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        drop(f);

        let mut w = DiskDbWriter::append(&path).unwrap();
        w.write_sequence(1, &syms(&[9])).unwrap();
        let db = w.finish().unwrap();
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(seen, vec![(0, syms(&[7, 8])), (1, syms(&[9]))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_missing_file_fails() {
        let path = tmp("append-missing.db");
        std::fs::remove_file(&path).ok();
        assert!(DiskDbWriter::append(&path).is_err());
    }

    #[test]
    fn scan_blocks_streams_in_order_and_counts() {
        let path = tmp("blocks.db");
        let data: Vec<Vec<Symbol>> = (0..10u16).map(|i| syms(&[i, i + 1])).collect();
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        db.scan_blocks(4, &mut |block| {
            sizes.push(block.len());
            for (id, s) in block.iter() {
                seen.push((id, s.to_vec()));
            }
            block
        });
        assert_eq!(sizes, vec![4, 4, 2]);
        let expected: Vec<(u64, Vec<Symbol>)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect();
        assert_eq!(seen, expected);
        assert_eq!(db.scans_performed(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multiple_scans_count() {
        let path = tmp("scans.db");
        let data = [syms(&[9])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        for _ in 0..3 {
            db.scan(&mut |_, _| {});
        }
        assert_eq!(db.scans_performed(), 3);
        db.reset_scans();
        assert_eq!(db.scans_performed(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
