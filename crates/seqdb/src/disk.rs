//! Disk-resident sequence database.
//!
//! The paper assumes a database "far beyond the memory capacity" (§2.2), so
//! algorithm cost is dominated by full scans of the data. This module
//! provides a checksummed binary format and a reader whose
//! [`SequenceScan`] implementation streams the file with a buffered
//! reader, never materializing more than one sequence at a time, and counts
//! each scan. Scans are *fallible* ([`SequenceScan::try_scan`]) and run
//! under a [`FaultPolicy`]: fail fast, retry transient I/O, or quarantine
//! corrupt records and mine the surviving subset.
//!
//! ## Format v2 (current)
//!
//! ```text
//! header:
//!   magic   : 8 bytes  b"NMSEQDB\0"
//!   version : u32 LE   (2)
//!   count   : u64 LE   number of sequences
//! per sequence:
//!   id      : u64 LE
//!   len     : u32 LE   number of symbols
//!   crc     : u32 LE   CRC32C over id bytes ‖ len bytes ‖ data bytes
//!   data    : len × u16 LE symbol ids
//! footer:
//!   magic   : 8 bytes  b"NMSEQFT\0"
//!   count   : u64 LE   must equal the header count
//!   fcrc    : u32 LE   CRC32C over every preceding byte of the file
//! ```
//!
//! The per-record CRC localizes corruption to one sequence (so
//! [`FaultPolicy::Quarantine`] can skip it and resynchronize), while the
//! footer pins the record count and whole-file integrity — a single bit
//! flip anywhere in a finished v2 file, including one that zeroes the
//! header count, is detected by a strict scan. The flip side: a v2 file
//! whose writer died before [`DiskDbWriter::finish`] has no footer and
//! fails strict scans; reopen it with [`DiskDbWriter::append`] (which
//! truncates the unfinished tail) or scan it under `Quarantine`.
//!
//! ## Format v1 (read compatibility)
//!
//! Identical header with `version = 1`; records are `id ‖ len ‖ data` with
//! no checksum, and there is no footer. v1 files written by earlier
//! releases load and scan bit-identically through this reader. Bytes past
//! the counted records are tolerated on v1 (a crashed append's tail), as
//! before.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use noisemine_core::matching::{SequenceBlock, SequenceScan};
use noisemine_core::{ScanError, ScanErrorKind, Symbol};

use crate::crc::Crc32c;
use crate::fault::{FaultPlan, FaultPolicy, FaultyRead, QuarantinedRecord};

/// File magic for the sequence-database format.
pub const MAGIC: &[u8; 8] = b"NMSEQDB\0";
/// Current format version (checksummed records + footer).
pub const VERSION: u32 = 2;
/// Legacy format version (no checksums), still readable.
pub const VERSION_V1: u32 = 1;
/// Footer magic of format v2.
pub const FOOTER_MAGIC: &[u8; 8] = b"NMSEQFT\0";

/// Header length (shared by v1 and v2).
const HEADER_LEN: u64 = 20;
/// Footer length (v2 only).
const FOOTER_LEN: u64 = 20;
/// Record head length in v1: id + len.
const V1_HEAD_LEN: u64 = 12;
/// Record head length in v2: id + len + crc.
const V2_HEAD_LEN: u64 = 16;
/// Transient-fault retries granted per read under `Quarantine` — skipping
/// records is for *corruption*; a flaky device still deserves a few tries
/// before the scan gives up.
const QUARANTINE_TRANSIENT_ATTEMPTS: u32 = 3;

/// Errors from the disk layer.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a sequence database or is corrupt.
    Format(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "i/o error: {e}"),
            DiskError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::Format(_) => None,
        }
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

impl From<ScanError> for DiskError {
    fn from(e: ScanError) -> Self {
        match e.kind() {
            ScanErrorKind::Corrupt | ScanErrorKind::Truncated => DiskError::Format(e.to_string()),
            ScanErrorKind::Transient | ScanErrorKind::Io => {
                DiskError::Io(io::Error::other(e.to_string()))
            }
        }
    }
}

/// Result alias for the disk layer.
pub type DiskResult<T> = Result<T, DiskError>;

/// Classifies an I/O error for the retry machinery: timeouts and
/// would-blocks are worth retrying, a short read means truncation,
/// everything else is a hard I/O fault.
fn classify_io(e: &io::Error) -> ScanErrorKind {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => {
            ScanErrorKind::Transient
        }
        io::ErrorKind::UnexpectedEof => ScanErrorKind::Truncated,
        _ => ScanErrorKind::Io,
    }
}

fn io_scan_error(e: &io::Error, pos: u64) -> ScanError {
    ScanError::new(classify_io(e), e.to_string()).at_offset(pos)
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// The byte source a scan reads from: the plain file, or the file behind a
/// fault-injection wrapper.
enum ScanSource {
    Plain(File),
    Faulty(FaultyRead<File>),
}

impl Read for ScanSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ScanSource::Plain(f) => f.read(buf),
            ScanSource::Faulty(f) => f.read(buf),
        }
    }
}

impl Seek for ScanSource {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        match self {
            ScanSource::Plain(f) => f.seek(pos),
            ScanSource::Faulty(f) => f.seek(pos),
        }
    }
}

/// A buffered reader that tracks its absolute position, retries transient
/// faults per the active policy, and restores its position on failed reads
/// so callers can resynchronize.
struct RetryReader {
    inner: BufReader<ScanSource>,
    /// Absolute offset of the next byte a successful read returns. Kept
    /// valid across failed reads by rewinding in the error path.
    pos: u64,
    bytes_read: u64,
    attempts: u32,
    backoff: Duration,
}

impl RetryReader {
    fn pos(&self) -> u64 {
        self.pos
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads exactly `buf.len()` bytes, retrying transient faults up to the
    /// policy's budget. On any error the stream is rewound to the tracked
    /// position (`read_exact` leaves it unspecified on failure), so the
    /// reader stays consistent whether the caller retries, resynchronizes,
    /// or gives up.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ScanError> {
        let mut tries = 0u32;
        loop {
            match self.inner.read_exact(buf) {
                Ok(()) => {
                    self.pos += buf.len() as u64;
                    self.bytes_read += buf.len() as u64;
                    return Ok(());
                }
                Err(e) => {
                    // Absolute seek: also discards the BufReader buffer,
                    // which a partial failed read may have invalidated.
                    self.inner
                        .seek(SeekFrom::Start(self.pos))
                        .map_err(|se| io_scan_error(&se, self.pos))?;
                    if classify_io(&e) == ScanErrorKind::Transient && tries < self.attempts {
                        tries += 1;
                        crate::obs::fault_retries().inc();
                        if !self.backoff.is_zero() {
                            std::thread::sleep(self.backoff);
                        }
                        continue;
                    }
                    return Err(io_scan_error(&e, self.pos));
                }
            }
        }
    }

    /// Repositions to absolute offset `pos`. Relative seeks keep the
    /// buffer warm when the target is nearby (the resync sweep moves one
    /// byte at a time).
    fn seek_to(&mut self, pos: u64) -> Result<(), ScanError> {
        if pos != self.pos {
            let delta = pos as i64 - self.pos as i64;
            self.inner
                .seek_relative(delta)
                .map_err(|e| io_scan_error(&e, self.pos))?;
            self.pos = pos;
        }
        Ok(())
    }
}

/// Decodes one v2 record at the reader's current position. On success the
/// symbols are in `symbols`, the raw data bytes in `raw`, and the record's
/// bytes have been folded into `file_crc` (when given). Errors carry the
/// record's start offset and `index`.
fn read_record_v2(
    reader: &mut RetryReader,
    index: u64,
    file_len: u64,
    symbols: &mut Vec<Symbol>,
    raw: &mut Vec<u8>,
    file_crc: Option<&mut Crc32c>,
) -> Result<u64, ScanError> {
    let start = reader.pos();
    let mut head = [0u8; V2_HEAD_LEN as usize];
    reader
        .read_exact(&mut head)
        .map_err(|e| e.at_record(index))?;
    let id = le_u64(&head[..8]);
    let len = le_u32(&head[8..12]) as u64;
    let stored = le_u32(&head[12..16]);
    // Bound the length before allocating: a corrupt length field must not
    // trigger a huge allocation or a long bogus read.
    if start + V2_HEAD_LEN + len * 2 > file_len {
        return Err(ScanError::new(
            ScanErrorKind::Corrupt,
            format!("record length {len} overruns the file"),
        )
        .at_offset(start)
        .at_record(index));
    }
    raw.resize((len * 2) as usize, 0);
    reader.read_exact(raw).map_err(|e| e.at_record(index))?;
    let mut crc = Crc32c::new();
    crc.update(&head[..12]);
    crc.update(raw);
    let computed = crc.finish();
    if computed != stored {
        crate::obs::fault_crc_failures().inc();
        return Err(ScanError::new(
            ScanErrorKind::Corrupt,
            format!("record checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        )
        .at_offset(start)
        .at_record(index));
    }
    if let Some(fc) = file_crc {
        fc.update(&head);
        fc.update(raw);
    }
    symbols.clear();
    symbols.extend(
        raw.chunks_exact(2)
            .map(|c| Symbol(u16::from_le_bytes([c[0], c[1]]))),
    );
    Ok(id)
}

/// Decodes one v1 record (no checksum) at the reader's current position.
fn read_record_v1(
    reader: &mut RetryReader,
    index: u64,
    file_len: u64,
    symbols: &mut Vec<Symbol>,
    raw: &mut Vec<u8>,
) -> Result<u64, ScanError> {
    let start = reader.pos();
    let mut head = [0u8; V1_HEAD_LEN as usize];
    reader
        .read_exact(&mut head)
        .map_err(|e| e.at_record(index))?;
    let id = le_u64(&head[..8]);
    let len = le_u32(&head[8..12]) as u64;
    if start + V1_HEAD_LEN + len * 2 > file_len {
        return Err(ScanError::new(
            ScanErrorKind::Corrupt,
            format!("record length {len} overruns the file"),
        )
        .at_offset(start)
        .at_record(index));
    }
    raw.resize((len * 2) as usize, 0);
    reader.read_exact(raw).map_err(|e| e.at_record(index))?;
    symbols.clear();
    symbols.extend(
        raw.chunks_exact(2)
            .map(|c| Symbol(u16::from_le_bytes([c[0], c[1]]))),
    );
    Ok(id)
}

/// The result of the quarantine census: which byte ranges to skip, where
/// the records end, and how many sequences survive.
#[derive(Debug)]
struct Census {
    survivors: u64,
    /// Offset one past the last record byte (start of the footer on an
    /// intact v2 file).
    records_end: u64,
    /// Half-open `(start, end)` byte ranges to skip, in file order.
    bad_ranges: Vec<(u64, u64)>,
    quarantined: Vec<QuarantinedRecord>,
}

/// Streaming writer for the on-disk format.
pub struct DiskDbWriter {
    out: BufWriter<File>,
    count: u64,
    path: PathBuf,
    version: u32,
}

impl DiskDbWriter {
    /// Creates (truncating) a v2 database file at `path`.
    ///
    /// The header count and the footer are written by
    /// [`DiskDbWriter::finish`]; a writer that is dropped without `finish`
    /// leaves a footer-less file that strict scans reject (reopen it with
    /// [`DiskDbWriter::append`] to repair).
    pub fn create(path: impl AsRef<Path>) -> DiskResult<Self> {
        Self::create_with_version(path, VERSION)
    }

    /// Creates (truncating) a *v1* database file — bit-identical to what
    /// earlier releases wrote. Exists for compatibility tooling and tests;
    /// new data should use [`DiskDbWriter::create`].
    pub fn create_v1(path: impl AsRef<Path>) -> DiskResult<Self> {
        Self::create_with_version(path, VERSION_V1)
    }

    fn create_with_version(path: impl AsRef<Path>, version: u32) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // count placeholder
        out.write_all(&header)?;
        Ok(Self {
            out,
            count: 0,
            path,
            version,
        })
    }

    /// Reopens an existing database file for appending: validates the
    /// header, seeks past the last counted record, truncates anything after
    /// it (a v2 footer, or the tail of a crashed append), and continues the
    /// sequence count, so `append(p)` followed by writes and
    /// [`DiskDbWriter::finish`] extends the database in place. The file's
    /// format version is preserved. This is the substrate of the streaming
    /// ingestion engine's append-only log.
    pub fn append(path: impl AsRef<Path>) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        // Validate header + count via the reader path.
        let existing = DiskDb::open(&path)?;
        let count = existing.count;
        let version = existing.version;
        let head_len = if version == VERSION_V1 {
            V1_HEAD_LEN
        } else {
            V2_HEAD_LEN
        } as usize;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        // Walk the record heads to find the end of the last counted record;
        // everything after it (footer, torn tail) is discarded and will be
        // rewritten by `finish`.
        let mut pos: u64 = HEADER_LEN;
        {
            let mut reader = BufReader::new(&mut file);
            reader.seek(SeekFrom::Start(pos))?;
            let mut head = [0u8; V2_HEAD_LEN as usize];
            for i in 0..count {
                reader
                    .read_exact(&mut head[..head_len])
                    .map_err(|e| DiskError::Format(format!("truncated record {i}: {e}")))?;
                let len = le_u32(&head[8..12]) as u64;
                pos += head_len as u64 + len * 2;
                reader.seek(SeekFrom::Start(pos))?;
            }
        }
        file.set_len(pos)?;
        file.seek(SeekFrom::Start(pos))?;
        Ok(Self {
            out: BufWriter::new(file),
            count,
            path,
            version,
        })
    }

    /// Number of sequences written so far (including pre-existing ones when
    /// opened with [`DiskDbWriter::append`]).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one sequence (checksummed under v2).
    pub fn write_sequence(&mut self, id: u64, symbols: &[Symbol]) -> DiskResult<()> {
        let mut data = Vec::with_capacity(symbols.len() * 2);
        for s in symbols {
            data.extend_from_slice(&s.0.to_le_bytes());
        }
        let mut buf = Vec::with_capacity(V2_HEAD_LEN as usize + data.len());
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
        if self.version != VERSION_V1 {
            let mut crc = Crc32c::new();
            crc.update(&buf);
            crc.update(&data);
            buf.extend_from_slice(&crc.finish().to_le_bytes());
        }
        buf.extend_from_slice(&data);
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Flushes, patches the header count, writes the v2 footer, and returns
    /// a reader for the file.
    pub fn finish(mut self) -> DiskResult<DiskDb> {
        self.out.flush()?;
        let file = self.out.into_inner().map_err(|e| e.into_error())?;
        use std::os::unix::fs::FileExt;
        // Patch the count field (offset 12).
        file.write_all_at(&self.count.to_le_bytes(), 12)?;
        if self.version != VERSION_V1 {
            // Whole-file checksum: re-read the file (count already patched)
            // through a fresh read handle — the create handle is
            // write-only — and append the footer via `write_all_at`.
            let end = file.metadata()?.len();
            let mut crc = Crc32c::new();
            let mut reader = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
            reader.seek(SeekFrom::Start(0))?;
            let mut chunk = [0u8; 8192];
            loop {
                let n = reader.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                crc.update(&chunk[..n]);
            }
            let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
            footer.extend_from_slice(FOOTER_MAGIC);
            footer.extend_from_slice(&self.count.to_le_bytes());
            crc.update(&footer);
            footer.extend_from_slice(&crc.finish().to_le_bytes());
            file.write_all_at(&footer, end)?;
        }
        file.sync_all()?;
        drop(file);
        DiskDb::open(&self.path)
    }
}

/// A read-only disk-resident sequence database.
///
/// Each scan reopens and streams the file — deliberately, to model the
/// paper's disk-resident cost model — and increments the scan counter.
/// Fault handling is governed by the [`FaultPolicy`] chosen at open time;
/// the infallible [`SequenceScan::scan`] panics where
/// [`SequenceScan::try_scan`] would return an error.
#[derive(Debug)]
pub struct DiskDb {
    path: PathBuf,
    /// Header count — or, under `Quarantine`, the census's survivor count.
    count: u64,
    version: u32,
    policy: FaultPolicy,
    plan: Option<FaultPlan>,
    census: Option<Census>,
    scans: AtomicUsize,
}

impl DiskDb {
    /// Opens an existing database file under [`FaultPolicy::Strict`].
    pub fn open(path: impl AsRef<Path>) -> DiskResult<Self> {
        Self::open_opts(path, FaultPolicy::Strict, None)
    }

    /// Opens an existing database file under `policy`. Under
    /// [`FaultPolicy::Quarantine`] this walks the file once up front (the
    /// *census*) to locate corrupt regions, so
    /// [`SequenceScan::num_sequences`] and every subsequent scan agree on
    /// the surviving subset.
    pub fn open_with_policy(path: impl AsRef<Path>, policy: FaultPolicy) -> DiskResult<Self> {
        Self::open_opts(path, policy, None)
    }

    /// Full-control constructor: `plan` (used by
    /// [`crate::fault::FaultyStore`]) injects deterministic faults into
    /// every read this database performs, including this open.
    pub(crate) fn open_opts(
        path: impl AsRef<Path>,
        policy: FaultPolicy,
        plan: Option<FaultPlan>,
    ) -> DiskResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut db = Self {
            path,
            count: 0,
            version: 0,
            policy,
            plan,
            census: None,
            scans: AtomicUsize::new(0),
        };
        let mut reader = db.retry_reader().map_err(DiskError::from)?;
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header).map_err(DiskError::from)?;
        if &header[..8] != MAGIC {
            return Err(DiskError::Format("bad magic; not a noisemine seqdb".into()));
        }
        let version = le_u32(&header[8..12]);
        if version != VERSION && version != VERSION_V1 {
            return Err(DiskError::Format(format!(
                "unsupported version {version}, expected {VERSION_V1} or {VERSION}"
            )));
        }
        db.version = version;
        db.count = le_u64(&header[12..20]);
        if matches!(db.policy, FaultPolicy::Quarantine) {
            let census = db.run_census()?;
            db.count = census.survivors;
            db.census = Some(census);
        }
        Ok(db)
    }

    /// Writes `sequences` to `path` (format v2) and opens the result.
    pub fn create_from<'a, I>(path: impl AsRef<Path>, sequences: I) -> DiskResult<Self>
    where
        I: IntoIterator<Item = &'a [Symbol]>,
    {
        let mut w = DiskDbWriter::create(path)?;
        for (i, seq) in sequences.into_iter().enumerate() {
            w.write_sequence(i as u64, seq)?;
        }
        w.finish()
    }

    /// Number of full scans performed so far.
    pub fn scans_performed(&self) -> usize {
        self.scans.load(Ordering::Relaxed)
    }

    /// Resets the scan counter.
    pub fn reset_scans(&self) {
        self.scans.store(0, Ordering::Relaxed);
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The file's format version ([`VERSION`] or [`VERSION_V1`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The fault policy this database was opened under.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Regions skipped by the quarantine census (empty unless opened under
    /// [`FaultPolicy::Quarantine`]).
    pub fn quarantined(&self) -> &[QuarantinedRecord] {
        self.census
            .as_ref()
            .map(|c| c.quarantined.as_slice())
            .unwrap_or(&[])
    }

    /// The file length a scan should believe, honoring an injected
    /// truncation. Re-statted per scan so legitimate appends between scans
    /// are observed.
    fn effective_len(&self) -> Result<u64, ScanError> {
        let len = std::fs::metadata(&self.path)
            .map_err(|e| io_scan_error(&e, 0))?
            .len();
        Ok(match self.plan.as_ref().and_then(|p| p.truncate_at()) {
            Some(t) => len.min(t),
            None => len,
        })
    }

    /// Opens a fresh reader for one scan pass, wired through the fault
    /// plan (if any) and granted the policy's transient-retry budget.
    fn retry_reader(&self) -> Result<RetryReader, ScanError> {
        let file = File::open(&self.path).map_err(|e| io_scan_error(&e, 0))?;
        let source = match &self.plan {
            Some(plan) => ScanSource::Faulty(plan.wrap(file)),
            None => ScanSource::Plain(file),
        };
        let (attempts, backoff) = match self.policy {
            FaultPolicy::Strict => (0, Duration::ZERO),
            FaultPolicy::Retry { attempts, backoff } => (attempts, backoff),
            FaultPolicy::Quarantine => (QUARANTINE_TRANSIENT_ATTEMPTS, Duration::ZERO),
        };
        Ok(RetryReader {
            inner: BufReader::with_capacity(1 << 20, source),
            pos: 0,
            bytes_read: 0,
            attempts,
            backoff,
        })
    }

    /// Strict/retry scan of a v2 file: every record CRC, the footer, and
    /// the whole-file checksum are verified; the first failure aborts.
    fn scan_v2(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        let file_len = self.effective_len()?;
        let mut reader = self.retry_reader()?;
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(
                ScanError::new(ScanErrorKind::Corrupt, "bad magic; not a noisemine seqdb")
                    .at_offset(0),
            );
        }
        if le_u32(&header[8..12]) != VERSION {
            return Err(ScanError::new(
                ScanErrorKind::Corrupt,
                format!("header version is not {VERSION}"),
            )
            .at_offset(8));
        }
        // Count as the header reads *now* — the open-time count may lag a
        // legitimate append (see `SequenceScan::num_sequences`).
        let count = le_u64(&header[12..20]);
        let mut crc = Crc32c::new();
        crc.update(&header);
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        for i in 0..count {
            let id = read_record_v2(
                &mut reader,
                i,
                file_len,
                &mut symbols,
                &mut raw,
                Some(&mut crc),
            )?;
            visit(id, &symbols);
        }
        // The footer check is unconditional — even a count of zero must be
        // pinned, since a single bit flip can turn a real count into zero.
        let foot_pos = reader.pos();
        let mut footer = [0u8; FOOTER_LEN as usize];
        reader.read_exact(&mut footer).map_err(|e| {
            if e.kind() == ScanErrorKind::Truncated {
                ScanError::new(
                    ScanErrorKind::Corrupt,
                    "missing footer (file truncated, or writer never finished)",
                )
                .at_offset(foot_pos)
            } else {
                e
            }
        })?;
        if &footer[..8] != FOOTER_MAGIC {
            return Err(
                ScanError::new(ScanErrorKind::Corrupt, "missing or corrupt footer")
                    .at_offset(foot_pos),
            );
        }
        let foot_count = le_u64(&footer[8..16]);
        if foot_count != count {
            return Err(ScanError::new(
                ScanErrorKind::Corrupt,
                format!("footer count {foot_count} does not match header count {count}"),
            )
            .at_offset(foot_pos + 8));
        }
        crc.update(&footer[..16]);
        let stored = le_u32(&footer[16..20]);
        let computed = crc.finish();
        if computed != stored {
            crate::obs::fault_crc_failures().inc();
            return Err(ScanError::new(
                ScanErrorKind::Corrupt,
                format!(
                    "file checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
            )
            .at_offset(foot_pos + 16));
        }
        if reader.pos() != file_len {
            return Err(ScanError::new(
                ScanErrorKind::Corrupt,
                format!("{} trailing bytes after footer", file_len - reader.pos()),
            )
            .at_offset(reader.pos()));
        }
        crate::obs::disk_bytes_read().add(reader.bytes_read());
        Ok(())
    }

    /// Strict/retry scan of a v1 file: structural walk of the counted
    /// records; no checksums exist to verify. Bytes past the counted
    /// records are tolerated (legacy semantics).
    fn scan_v1(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        let file_len = self.effective_len()?;
        let mut reader = self.retry_reader()?;
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(
                ScanError::new(ScanErrorKind::Corrupt, "bad magic; not a noisemine seqdb")
                    .at_offset(0),
            );
        }
        let count = le_u64(&header[12..20]);
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        for i in 0..count {
            let id = read_record_v1(&mut reader, i, file_len, &mut symbols, &mut raw)?;
            visit(id, &symbols);
        }
        crate::obs::disk_bytes_read().add(reader.bytes_read());
        Ok(())
    }

    /// The quarantine census: one validation walk that classifies every
    /// byte of the file as record, footer, or quarantined. Scans under
    /// `Quarantine` then skip the bad ranges, so the visit stream is
    /// identical to a clean database holding only the survivors.
    fn run_census(&self) -> DiskResult<Census> {
        let file_len = self.effective_len().map_err(DiskError::from)?;
        let mut reader = self.retry_reader().map_err(DiskError::from)?;
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header).map_err(DiskError::from)?;
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        let mut survivors = 0u64;
        let mut bad_ranges: Vec<(u64, u64)> = Vec::new();
        let mut quarantined: Vec<QuarantinedRecord> = Vec::new();
        let mut index = 0u64;
        let records_end;
        if self.version == VERSION_V1 {
            // v1 has no checksums to resynchronize on: walk the counted
            // records structurally and quarantine everything from the
            // first undecodable record onward.
            let count = le_u64(&header[12..20]);
            let mut end = HEADER_LEN;
            for i in 0..count {
                match read_record_v1(&mut reader, i, file_len, &mut symbols, &mut raw) {
                    Ok(_) => {
                        survivors += 1;
                        end = reader.pos();
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            ScanErrorKind::Corrupt | ScanErrorKind::Truncated
                        ) =>
                    {
                        crate::obs::fault_quarantined().inc();
                        quarantined.push(QuarantinedRecord {
                            index: i,
                            offset: end,
                            skipped: file_len - end,
                        });
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            records_end = end;
        } else {
            // v2: ignore the (unprotected-by-itself) header count and walk
            // the checksummed records until the footer or EOF, sweeping
            // forward past anything that fails validation.
            let mut pos = HEADER_LEN;
            records_end = loop {
                if pos >= file_len {
                    break pos.min(file_len);
                }
                if file_len - pos == FOOTER_LEN {
                    // Footer-first: a genuine footer would otherwise be
                    // misread as a corrupt record (its bytes carry no
                    // record CRC).
                    reader.seek_to(pos).map_err(DiskError::from)?;
                    let mut magic = [0u8; 8];
                    reader.read_exact(&mut magic).map_err(DiskError::from)?;
                    if &magic == FOOTER_MAGIC {
                        break pos;
                    }
                }
                reader.seek_to(pos).map_err(DiskError::from)?;
                match read_record_v2(&mut reader, index, file_len, &mut symbols, &mut raw, None) {
                    Ok(_) => {
                        survivors += 1;
                        index += 1;
                        pos = reader.pos();
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            ScanErrorKind::Corrupt | ScanErrorKind::Truncated
                        ) =>
                    {
                        crate::obs::fault_resyncs().inc();
                        let next = resync(&mut reader, pos, file_len).map_err(DiskError::from)?;
                        let end = next.unwrap_or(file_len);
                        crate::obs::fault_quarantined().inc();
                        quarantined.push(QuarantinedRecord {
                            index,
                            offset: pos,
                            skipped: end - pos,
                        });
                        bad_ranges.push((pos, end));
                        index += 1;
                        pos = end;
                    }
                    // Persistent transient / hard I/O: quarantine handles
                    // *corruption*; an unreadable device stays fatal.
                    Err(e) => return Err(e.into()),
                }
            };
        }
        Ok(Census {
            survivors,
            records_end,
            bad_ranges,
            quarantined,
        })
    }

    /// Scan under `Quarantine`: replays the census's classification,
    /// skipping the quarantined ranges. A record that fails to decode here
    /// means the file changed since the census — surfaced as corruption
    /// rather than silently diverging from the reported survivor count.
    fn scan_quarantined(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        let census = match &self.census {
            Some(c) => c,
            None => {
                return Err(ScanError::new(
                    ScanErrorKind::Io,
                    "quarantine scan without a census",
                ))
            }
        };
        let file_len = self.effective_len()?;
        let mut reader = self.retry_reader()?;
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        let mut bad = census.bad_ranges.iter().peekable();
        let mut index = 0u64;
        while reader.pos() < census.records_end {
            if let Some(&&(start, end)) = bad.peek() {
                if start == reader.pos() {
                    reader.seek_to(end)?;
                    bad.next();
                    index += 1;
                    continue;
                }
            }
            let id = if self.version == VERSION_V1 {
                read_record_v1(&mut reader, index, file_len, &mut symbols, &mut raw)?
            } else {
                read_record_v2(&mut reader, index, file_len, &mut symbols, &mut raw, None)?
            };
            index += 1;
            visit(id, &symbols);
        }
        crate::obs::disk_bytes_read().add(reader.bytes_read());
        Ok(())
    }

    /// One scan pass under the active policy.
    fn scan_records(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        if matches!(self.policy, FaultPolicy::Quarantine) {
            self.scan_quarantined(visit)
        } else if self.version == VERSION_V1 {
            self.scan_v1(visit)
        } else {
            self.scan_v2(visit)
        }
    }
}

/// Sweeps forward from a failed record at `from`, looking for the next
/// position that decodes as a valid record — or the footer, when exactly
/// [`FOOTER_LEN`] bytes remain. Returns `None` if nothing downstream
/// validates (the rest of the file is quarantined).
fn resync(reader: &mut RetryReader, from: u64, file_len: u64) -> Result<Option<u64>, ScanError> {
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut raw: Vec<u8> = Vec::new();
    let mut candidate = from + 1;
    while candidate + V2_HEAD_LEN <= file_len {
        if file_len - candidate == FOOTER_LEN {
            reader.seek_to(candidate)?;
            let mut magic = [0u8; 8];
            reader.read_exact(&mut magic)?;
            if &magic == FOOTER_MAGIC {
                return Ok(Some(candidate));
            }
        }
        reader.seek_to(candidate)?;
        match read_record_v2(reader, 0, file_len, &mut symbols, &mut raw, None) {
            Ok(_) => return Ok(Some(candidate)),
            Err(e) if matches!(e.kind(), ScanErrorKind::Corrupt | ScanErrorKind::Truncated) => {
                candidate += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

impl SequenceScan for DiskDb {
    fn num_sequences(&self) -> usize {
        self.count as usize
    }

    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        // The infallible API is for callers that treat the database as a
        // reliable substrate; surface errors loudly rather than silently
        // returning partial data.
        match self.try_scan(visit) {
            Ok(()) => {}
            Err(e) => panic!("scan of {} failed: {e}", self.path.display()),
        }
    }

    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        match self.try_scan_blocks(block_size, sink) {
            Ok(()) => {}
            Err(e) => panic!("scan of {} failed: {e}", self.path.display()),
        }
    }

    fn try_scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        crate::obs::disk_scans().inc();
        match self.scan_records(visit) {
            Ok(()) => Ok(()),
            Err(e) => {
                crate::obs::fault_scan_failures().inc();
                Err(e)
            }
        }
    }

    fn try_scan_blocks(
        &self,
        block_size: usize,
        sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock,
    ) -> Result<(), ScanError> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        crate::obs::disk_scans().inc();
        // Read-ahead double buffering: a dedicated thread streams and
        // decodes the file into blocks while the calling thread consumes
        // them, so disk I/O overlaps with compute.
        let result = crate::pipeline::double_buffered(
            block_size,
            |emitter| self.scan_records(&mut |id, seq| emitter.push(id, seq)),
            sink,
        );
        if result.is_err() {
            crate::obs::fault_scan_failures().inc();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().map(|&x| Symbol(x)).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("noisemine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("roundtrip.db");
        let data = [syms(&[0, 1, 2]), syms(&[]), syms(&[65535, 7])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(db.num_sequences(), 3);
        assert_eq!(db.version(), VERSION);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, data[0].clone()),
                (1, data[1].clone()),
                (2, data[2].clone())
            ]
        );
        assert_eq!(db.scans_performed(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_db() {
        let path = tmp("empty.db");
        let db = DiskDb::create_from(&path, std::iter::empty()).unwrap();
        assert_eq!(db.num_sequences(), 0);
        db.scan(&mut |_, _| panic!("no sequences expected"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.db");
        std::fs::write(&path, b"NOTADB!!aaaaaaaaaaaa").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_version() {
        let path = tmp("badversion.db");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_truncation() {
        let path = tmp("trunc.db");
        let data = [syms(&[1, 2, 3, 4])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        // Chop off the last two bytes (into the footer).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let db = DiskDb::open(&path).unwrap();
        let err = db.try_scan(&mut |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), ScanErrorKind::Corrupt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_missing_footer() {
        // A writer that never called finish leaves no footer; strict scans
        // must reject the file rather than trust the (zero) header count.
        let path = tmp("nofooter.db");
        let mut w = DiskDbWriter::create(&path).unwrap();
        w.write_sequence(0, &syms(&[1, 2])).unwrap();
        drop(w); // BufWriter flushes on drop; no count patch, no footer.
        let db = DiskDb::open(&path).unwrap();
        let err = db.try_scan(&mut |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), ScanErrorKind::Corrupt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_reads_through_v2_reader() {
        let path = tmp("v1compat.db");
        let data = [syms(&[5, 6, 7]), syms(&[]), syms(&[9])];
        let mut w = DiskDbWriter::create_v1(&path).unwrap();
        for (i, s) in data.iter().enumerate() {
            w.write_sequence(i as u64, s).unwrap();
        }
        let db = w.finish().unwrap();
        assert_eq!(db.version(), VERSION_V1);
        assert_eq!(db.num_sequences(), 3);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, data[0].clone()),
                (1, data[1].clone()),
                (2, data[2].clone())
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_layout_is_bit_identical_to_legacy() {
        // The v1 writer must produce exactly the bytes the original format
        // specified: 20-byte header (version 1) + id/len/data records.
        let path = tmp("v1layout.db");
        let mut w = DiskDbWriter::create_v1(&path).unwrap();
        w.write_sequence(7, &syms(&[0x0102, 0x0304])).unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mut expected = Vec::new();
        expected.extend_from_slice(MAGIC);
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.extend_from_slice(&1u64.to_le_bytes());
        expected.extend_from_slice(&7u64.to_le_bytes());
        expected.extend_from_slice(&2u32.to_le_bytes());
        expected.extend_from_slice(&[0x02, 0x01, 0x04, 0x03]);
        assert_eq!(bytes, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_extends_in_place() {
        let path = tmp("append.db");
        let first = [syms(&[1, 2]), syms(&[3])];
        let db = DiskDb::create_from(&path, first.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(db.num_sequences(), 2);
        drop(db);

        let mut w = DiskDbWriter::append(&path).unwrap();
        assert_eq!(w.count(), 2);
        w.write_sequence(2, &syms(&[4, 5, 6])).unwrap();
        w.write_sequence(3, &syms(&[])).unwrap();
        let db = w.finish().unwrap();
        assert_eq!(db.num_sequences(), 4);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, syms(&[1, 2])),
                (1, syms(&[3])),
                (2, syms(&[4, 5, 6])),
                (3, syms(&[])),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_preserves_v1_format() {
        let path = tmp("append-v1.db");
        let mut w = DiskDbWriter::create_v1(&path).unwrap();
        w.write_sequence(0, &syms(&[1])).unwrap();
        w.finish().unwrap();

        let mut w = DiskDbWriter::append(&path).unwrap();
        w.write_sequence(1, &syms(&[2, 3])).unwrap();
        let db = w.finish().unwrap();
        assert_eq!(db.version(), VERSION_V1);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(seen, vec![(0, syms(&[1])), (1, syms(&[2, 3]))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_truncates_uncounted_tail() {
        // A crashed append leaves bytes past the counted records; reopening
        // for append must discard them so the file stays self-consistent.
        let path = tmp("append-tail.db");
        let data = [syms(&[7, 8])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        drop(f);

        let mut w = DiskDbWriter::append(&path).unwrap();
        w.write_sequence(1, &syms(&[9])).unwrap();
        let db = w.finish().unwrap();
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(seen, vec![(0, syms(&[7, 8])), (1, syms(&[9]))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_missing_file_fails() {
        let path = tmp("append-missing.db");
        std::fs::remove_file(&path).ok();
        assert!(DiskDbWriter::append(&path).is_err());
    }

    #[test]
    fn scan_blocks_streams_in_order_and_counts() {
        let path = tmp("blocks.db");
        let data: Vec<Vec<Symbol>> = (0..10u16).map(|i| syms(&[i, i + 1])).collect();
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        db.scan_blocks(4, &mut |block| {
            sizes.push(block.len());
            for (id, s) in block.iter() {
                seen.push((id, s.to_vec()));
            }
            block
        });
        assert_eq!(sizes, vec![4, 4, 2]);
        let expected: Vec<(u64, Vec<Symbol>)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect();
        assert_eq!(seen, expected);
        assert_eq!(db.scans_performed(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multiple_scans_count() {
        let path = tmp("scans.db");
        let data = [syms(&[9])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        for _ in 0..3 {
            db.scan(&mut |_, _| {});
        }
        assert_eq!(db.scans_performed(), 3);
        db.reset_scans();
        assert_eq!(db.scans_performed(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_record_bit_flip() {
        let path = tmp("bitflip.db");
        let data = [syms(&[10, 20, 30]), syms(&[40, 50])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        // Flip one bit in the first record's data.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(HEADER_LEN + V2_HEAD_LEN) as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let db = DiskDb::open(&path).unwrap();
        let err = db.try_scan(&mut |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), ScanErrorKind::Corrupt);
        assert_eq!(err.record(), Some(0));
        assert_eq!(err.offset(), Some(HEADER_LEN));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_skips_corrupt_record_and_renormalizes() {
        let path = tmp("quarantine.db");
        let data = [syms(&[10, 20]), syms(&[30, 40]), syms(&[50, 60])];
        let db = DiskDb::create_from(&path, data.iter().map(Vec::as_slice)).unwrap();
        drop(db);
        // Corrupt the middle record's data.
        let rec = (V2_HEAD_LEN + 4) as usize; // each record: head + 2 symbols
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + rec + V2_HEAD_LEN as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let db = DiskDb::open_with_policy(&path, FaultPolicy::Quarantine).unwrap();
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.quarantined().len(), 1);
        assert_eq!(db.quarantined()[0].offset, HEADER_LEN + rec as u64);
        let mut seen = Vec::new();
        db.try_scan(&mut |id, s| seen.push((id, s.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(0, data[0].clone()), (2, data[2].clone())]);
        std::fs::remove_file(&path).unwrap();
    }
}
