//! Fault policies and a deterministic fault-injection harness.
//!
//! The disk scan path ([`crate::disk`]) can hit three kinds of trouble:
//!
//! - **transient I/O faults** — a read times out or would block, but the
//!   same bytes are readable on retry (flaky NFS, overloaded device);
//! - **corruption** — bit flips or torn writes that the NMSEQDB v2
//!   checksums detect;
//! - **truncation** — the file ends before the data it promises.
//!
//! A [`FaultPolicy`] decides what a scan does about each: fail fast
//! ([`FaultPolicy::Strict`]), retry transients
//! ([`FaultPolicy::Retry`]), or skip corrupt records and mine the
//! surviving subset ([`FaultPolicy::Quarantine`]).
//!
//! The rest of this module is the chaos-test harness: a [`FaultPlan`]
//! describes a *deterministic* schedule of injected faults keyed by
//! absolute file offset, and a [`FaultyStore`] is a [`DiskDb`] whose every
//! read goes through that plan. Because faults are keyed by offset — not by
//! read call — the same plan produces the same observable failures
//! regardless of buffer sizes, thread counts, or how the reader chunks its
//! reads, which is what makes the chaos suite's bit-identity assertions
//! meaningful.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;
use std::time::Duration;

use noisemine_core::matching::{SequenceBlock, SequenceScan};
use noisemine_core::{ScanError, Symbol};

use crate::disk::{DiskDb, DiskResult};

/// What the scan path does when the store misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Fail fast: the first error aborts the scan and surfaces with the
    /// offending byte offset (and record index when known). The default.
    #[default]
    Strict,
    /// Retry transient I/O errors (timeouts, `WouldBlock`) up to `attempts`
    /// extra times per read, sleeping `backoff` between tries. Corruption
    /// and truncation still fail fast — retrying cannot fix a bad checksum.
    Retry {
        /// Extra attempts per failing read (0 behaves like `Strict`).
        attempts: u32,
        /// Sleep between attempts (use `Duration::ZERO` in tests).
        backoff: Duration,
    },
    /// Skip records that fail validation, resynchronize to the next intact
    /// record, and report only the surviving sequences via
    /// [`SequenceScan::num_sequences`] — so `db_match` denominators are
    /// renormalized over the sequences actually visited (Definition 3.7
    /// over the surviving subset). Quarantined regions are listed by
    /// [`DiskDb::quarantined`]. Transient faults are still retried a fixed
    /// number of times; a persistently unreadable device remains fatal.
    Quarantine,
}

/// One region of a file skipped by [`FaultPolicy::Quarantine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// Zero-based position in file walk order at which the bad region sat.
    pub index: u64,
    /// Byte offset where the quarantined region starts.
    pub offset: u64,
    /// Number of bytes skipped before the scan resynchronized (or hit EOF).
    pub skipped: u64,
}

/// One injected transient-fault site.
#[derive(Debug, Clone)]
struct TransientSite {
    /// Absolute file offset the fault guards.
    offset: u64,
    /// How many reads touching that offset fail before it heals.
    fails: u32,
}

/// A deterministic schedule of injected faults, keyed by absolute file
/// offset.
///
/// Compose with the builder methods, or draw a reproducible random plan
/// with [`FaultPlan::random`]. A plan only takes effect through
/// [`FaultyStore`] (or `DiskDb::open_opts`); it never touches the file on
/// disk.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    transient: Vec<TransientSite>,
    /// Absolute *bit* indices to flip in returned data.
    bit_flips: Vec<u64>,
    /// Pretend the file ends here.
    truncate_at: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Any read covering byte `offset` fails with a timeout, `fails` times
    /// per scan pass; after that the site heals (the fault was transient).
    pub fn transient_at(mut self, offset: u64, fails: u32) -> Self {
        self.transient.push(TransientSite { offset, fails });
        self
    }

    /// Flips absolute bit `bit` (i.e. bit `bit % 8` of byte `bit / 8`) in
    /// every read that covers it — persistent corruption.
    pub fn flip_bit(mut self, bit: u64) -> Self {
        self.bit_flips.push(bit);
        self
    }

    /// Pretends the file ends at byte `at` (reads past it see EOF).
    pub fn truncate(mut self, at: u64) -> Self {
        self.truncate_at = Some(at);
        self
    }

    /// The simulated truncation point, if any.
    pub fn truncate_at(&self) -> Option<u64> {
        self.truncate_at
    }

    /// A reproducible random plan over a file of `len` bytes: `transients`
    /// transient sites (each failing once or twice) and `flips` single-bit
    /// corruptions. The same `seed` always yields the same plan.
    pub fn random(seed: u64, len: u64, transients: usize, flips: usize) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = len.max(1);
        let mut plan = Self::default();
        for _ in 0..transients {
            plan.transient.push(TransientSite {
                offset: rng.gen_range(0..len),
                fails: rng.gen_range(1u32..=2),
            });
        }
        for _ in 0..flips {
            plan.bit_flips.push(rng.gen_range(0..len * 8));
        }
        plan
    }

    /// Applies this plan's bit flips directly to an in-memory byte buffer
    /// (flips landing beyond `bytes.len()` are ignored), returning how
    /// many were applied.
    ///
    /// This lets integrity tests for formats that are read whole — such
    /// as the serving layer's `NMMODEL` artifacts — reuse a deterministic
    /// [`FaultPlan::random`] corruption schedule without routing the bytes
    /// through a [`FaultyStore`]. Transient sites and truncation have no
    /// meaning for an in-memory buffer and are not applied; model them by
    /// slicing the buffer (`&bytes[..n]`) for truncation.
    pub fn corrupt_bytes(&self, bytes: &mut [u8]) -> usize {
        let mut applied = 0;
        for &bit in &self.bit_flips {
            let byte = (bit / 8) as usize;
            if byte < bytes.len() {
                bytes[byte] ^= 1 << (bit % 8);
                applied += 1;
            }
        }
        applied
    }

    /// Wraps an open file handle so its reads observe this plan's faults.
    /// Fresh per scan pass, so transient-failure budgets reset each pass.
    pub(crate) fn wrap(&self, file: File) -> FaultyRead<File> {
        FaultyRead::new(file, self.clone())
    }
}

/// A reader that injects a [`FaultPlan`]'s faults, keyed by absolute file
/// offset so the observable failures are independent of read chunking.
pub(crate) struct FaultyRead<R> {
    inner: R,
    plan: FaultPlan,
    /// Per transient site: failures left in this pass.
    remaining: Vec<u32>,
    /// Absolute offset of the next byte `read` would return.
    pos: u64,
}

impl<R> FaultyRead<R> {
    fn new(inner: R, plan: FaultPlan) -> Self {
        let remaining = plan.transient.iter().map(|s| s.fails).collect();
        Self {
            inner,
            plan,
            remaining,
            pos: 0,
        }
    }
}

impl<R: Read + Seek> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Simulated truncation: EOF at the configured length.
        let mut want = buf.len() as u64;
        if let Some(t) = self.plan.truncate_at {
            if self.pos >= t {
                return Ok(0);
            }
            want = want.min(t - self.pos);
        }
        let buf = &mut buf[..want as usize];
        if buf.is_empty() {
            return Ok(0);
        }
        // Transient faults: a read covering an armed site fails without
        // consuming input. `TimedOut` (not `Interrupted`) so `read_exact`
        // does not silently swallow the injection.
        let end = self.pos + buf.len() as u64;
        for (site, left) in self.plan.transient.iter().zip(self.remaining.iter_mut()) {
            if *left > 0 && site.offset >= self.pos && site.offset < end {
                *left -= 1;
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("injected transient fault at offset {}", site.offset),
                ));
            }
        }
        let n = self.inner.read(buf)?;
        // Bit flips: applied to returned bytes by absolute offset.
        for &bit in &self.plan.bit_flips {
            let byte = bit / 8;
            if byte >= self.pos && byte < self.pos + n as u64 {
                buf[(byte - self.pos) as usize] ^= 1 << (bit % 8);
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<R: Read + Seek> Seek for FaultyRead<R> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.pos = p;
        Ok(p)
    }
}

/// A [`DiskDb`] whose reads deterministically observe a [`FaultPlan`] —
/// the chaos-test harness's store.
///
/// The wrapped database behaves exactly as a real one would on equally
/// damaged media: `Strict` opens/scans fail on the first injected fault,
/// `Retry` rides out transient sites, `Quarantine` mines the surviving
/// subset. The file itself is never modified.
#[derive(Debug)]
pub struct FaultyStore {
    db: DiskDb,
}

impl FaultyStore {
    /// Opens `path` with `plan`'s faults injected under `policy`.
    pub fn open(path: impl AsRef<Path>, plan: FaultPlan, policy: FaultPolicy) -> DiskResult<Self> {
        Ok(Self {
            db: DiskDb::open_opts(path, policy, Some(plan))?,
        })
    }

    /// The wrapped database (for scan counts, quarantine reports, …).
    pub fn db(&self) -> &DiskDb {
        &self.db
    }
}

impl SequenceScan for FaultyStore {
    fn num_sequences(&self) -> usize {
        self.db.num_sequences()
    }
    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        self.db.scan(visit)
    }
    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        self.db.scan_blocks(block_size, sink)
    }
    fn try_scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) -> Result<(), ScanError> {
        self.db.try_scan(visit)
    }
    fn try_scan_blocks(
        &self,
        block_size: usize,
        sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock,
    ) -> Result<(), ScanError> {
        self.db.try_scan_blocks(block_size, sink)
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use super::*;

    #[test]
    fn bit_flips_are_chunking_independent() {
        let data: Vec<u8> = (0u8..64).collect();
        let plan = FaultPlan::new().flip_bit(8 * 10 + 3).flip_bit(8 * 40);
        let read_all = |chunk: usize| {
            let mut r = FaultyRead::new(Cursor::new(data.clone()), plan.clone());
            let mut out = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            out
        };
        let whole = read_all(64);
        assert_eq!(whole[10], 10 ^ 0b1000);
        assert_eq!(whole[40], 40 ^ 1);
        for chunk in [1, 3, 7, 64] {
            assert_eq!(read_all(chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn transient_site_fails_then_heals() {
        let data = vec![7u8; 16];
        let plan = FaultPlan::new().transient_at(5, 2);
        let mut r = FaultyRead::new(Cursor::new(data.clone()), plan);
        let mut buf = [0u8; 16];
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(r.read(&mut buf).unwrap(), 16);
        assert_eq!(buf.to_vec(), data);
    }

    #[test]
    fn truncation_hides_the_tail() {
        let data = vec![1u8; 32];
        let plan = FaultPlan::new().truncate(20);
        let mut r = FaultyRead::new(Cursor::new(data), plan);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn corrupt_bytes_matches_faulty_read() {
        let data: Vec<u8> = (0u8..64).collect();
        let plan = FaultPlan::new()
            .flip_bit(8 * 10 + 3)
            .flip_bit(8 * 40)
            .flip_bit(8 * 200);
        let mut direct = data.clone();
        // The out-of-range flip (byte 200) is ignored.
        assert_eq!(plan.corrupt_bytes(&mut direct), 2);
        let mut r = FaultyRead::new(Cursor::new(data), plan);
        let mut streamed = Vec::new();
        r.read_to_end(&mut streamed).unwrap();
        assert_eq!(direct, streamed);
    }

    #[test]
    fn random_plan_is_reproducible() {
        let a = FaultPlan::random(42, 1000, 3, 5);
        let b = FaultPlan::random(42, 1000, 3, 5);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FaultPlan::random(43, 1000, 3, 5);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }
}
