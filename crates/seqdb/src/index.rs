//! `NMIDX` — the persistent positional symbol index sidecar.
//!
//! A [`noisemine_core::SymbolIndex`] built over a disk
//! database can be persisted next to it (at [`sidecar_path`]) so later
//! mining runs skip the build scan. The sidecar is CRC32C-framed like
//! NMSEQDB format v2 and carries a [`IndexBinding`] fingerprint of the
//! database it was built from; [`load_validated`] compares that
//! fingerprint against the database actually being opened and refuses a
//! stale or corrupt index (returning `None` so the caller rebuilds)
//! rather than silently using it. See `docs/INDEXING.md` for the layout
//! and staleness semantics.
//!
//! ## On-disk layout (version 1, all integers little-endian)
//!
//! ```text
//! magic      b"NMIDX\0\0\0"                      8 bytes
//! version    u32 = 1
//! binding    file_len u64 | db_version u32 | db_count u64
//!            | fcrc u32 | q_count u32 | q_crc u32
//! alphabet   u32
//! sequences  u64
//! lens       sequences x u32
//! postings   per symbol: count u32, then count ascending u32 ordinals
//! trailer    b"NMIXFT\0\0" | crc u32   (CRC32C over every preceding byte)
//! ```

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use noisemine_core::matching::SequenceScan;
use noisemine_core::{SymbolIndex, SymbolIndexBuilder};

use crate::crc::{crc32c, Crc32c};
use crate::disk::{DiskDb, DiskError, DiskResult};

/// Sidecar magic ("NMIDX" + padding).
const MAGIC: &[u8; 8] = b"NMIDX\0\0\0";
/// Trailer magic ("NMIXFT" + padding).
const TRAILER_MAGIC: &[u8; 8] = b"NMIXFT\0\0";
/// Sidecar format version.
const VERSION: u32 = 1;

/// The path of a database's index sidecar: the database path with
/// `.nmidx` appended (so `corpus.nmdb` pairs with `corpus.nmdb.nmidx`).
pub fn sidecar_path(db_path: &Path) -> PathBuf {
    let mut s = db_path.as_os_str().to_os_string();
    s.push(".nmidx");
    PathBuf::from(s)
}

/// The fingerprint binding an index to the exact database state (and
/// quarantine view) it was built from. Any mismatch means the index's
/// sequence ordinals may not line up with the scan anymore, so the index
/// is stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexBinding {
    /// Byte length of the database file.
    pub file_len: u64,
    /// NMSEQDB format version of the database.
    pub db_version: u32,
    /// Sequences the scan yields — the header count, or the quarantine
    /// census's survivor count.
    pub db_count: u64,
    /// The database's whole-file footer checksum (format v2); `0` for v1
    /// files, which have no footer.
    pub fcrc: u32,
    /// Number of quarantined regions in the database's open view.
    pub q_count: u32,
    /// CRC32C over the quarantined `(index, offset, skipped)` triples;
    /// `0` when nothing is quarantined.
    pub q_crc: u32,
}

impl IndexBinding {
    /// Computes the binding of an open database.
    pub fn of(db: &DiskDb) -> DiskResult<Self> {
        let file_len = std::fs::metadata(db.path())?.len();
        let fcrc = if db.version() >= 2 && file_len >= 4 {
            let mut f = File::open(db.path())?;
            f.seek(SeekFrom::End(-4))?;
            let mut b = [0u8; 4];
            f.read_exact(&mut b)?;
            u32::from_le_bytes(b)
        } else {
            0
        };
        let quarantined = db.quarantined();
        let q_crc = if quarantined.is_empty() {
            0
        } else {
            let mut crc = Crc32c::new();
            for q in quarantined {
                crc.update(&q.index.to_le_bytes());
                crc.update(&q.offset.to_le_bytes());
                crc.update(&q.skipped.to_le_bytes());
            }
            crc.finish()
        };
        Ok(Self {
            file_len,
            db_version: db.version(),
            db_count: db.num_sequences() as u64,
            fcrc,
            q_count: quarantined.len() as u32,
            q_crc,
        })
    }
}

/// Builds a [`SymbolIndex`] over `db` with one scan. Ordinals follow scan
/// order — the same order every other scan of this database (under the
/// same quarantine view) yields.
pub fn build_index(db: &DiskDb, alphabet_size: usize) -> DiskResult<SymbolIndex> {
    let span = crate::obs::index_build_seconds().span();
    let mut builder = SymbolIndexBuilder::new(alphabet_size);
    db.try_scan(&mut |_, seq| builder.add_sequence(seq))
        .map_err(DiskError::from)?;
    span.finish();
    Ok(builder.finish())
}

/// Serializes `index`, bound to `db`'s current state, into the sidecar
/// file at [`sidecar_path`]. Returns the path written.
pub fn write_sidecar(db: &DiskDb, index: &SymbolIndex) -> DiskResult<PathBuf> {
    let path = sidecar_path(db.path());
    let binding = IndexBinding::of(db)?;
    write_index_file(&path, &binding, index)?;
    crate::obs::index_writes().inc();
    Ok(path)
}

/// Writes an index file with an explicit binding (exposed for tests; use
/// [`write_sidecar`] to bind to a live database).
pub fn write_index_file(
    path: &Path,
    binding: &IndexBinding,
    index: &SymbolIndex,
) -> DiskResult<()> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&binding.file_len.to_le_bytes());
    buf.extend_from_slice(&binding.db_version.to_le_bytes());
    buf.extend_from_slice(&binding.db_count.to_le_bytes());
    buf.extend_from_slice(&binding.fcrc.to_le_bytes());
    buf.extend_from_slice(&binding.q_count.to_le_bytes());
    buf.extend_from_slice(&binding.q_crc.to_le_bytes());
    buf.extend_from_slice(&(index.alphabet_size() as u32).to_le_bytes());
    buf.extend_from_slice(&(index.num_sequences() as u64).to_le_bytes());
    for ordinal in 0..index.num_sequences() {
        let len = index.len_of(ordinal).expect("ordinal within coverage");
        buf.extend_from_slice(&len.to_le_bytes());
    }
    for sym in 0..index.alphabet_size() {
        let postings = index.postings_for(noisemine_core::Symbol(sym as u16));
        buf.extend_from_slice(&(postings.len() as u32).to_le_bytes());
        for ordinal in postings {
            buf.extend_from_slice(&ordinal.to_le_bytes());
        }
    }
    buf.extend_from_slice(TRAILER_MAGIC);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    let mut f = File::create(path)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    Ok(())
}

/// Reads and structurally validates an index file: magic, version,
/// whole-file CRC, and posting-list consistency. Does *not* check the
/// binding against any database — that is [`load_validated`]'s job.
pub fn read_index_file(path: &Path) -> DiskResult<(IndexBinding, SymbolIndex)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    parse_index(&buf).map_err(DiskError::Format)
}

fn parse_index(buf: &[u8]) -> Result<(IndexBinding, SymbolIndex), String> {
    // 8 magic + 4 version + 32 binding + 4 alphabet + 8 sequences.
    const FIXED: usize = 56;
    const TRAILER: usize = 12;
    if buf.len() < FIXED + TRAILER {
        return Err(format!("index file too short ({} bytes)", buf.len()));
    }
    if &buf[..8] != MAGIC {
        return Err("bad index magic".into());
    }
    let body_end = buf.len() - TRAILER;
    if &buf[body_end..body_end + 8] != TRAILER_MAGIC {
        return Err("bad index trailer magic".into());
    }
    let stored_crc = le_u32(&buf[body_end + 8..]);
    let actual_crc = crc32c(&buf[..body_end + 8]);
    if stored_crc != actual_crc {
        return Err(format!(
            "index checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        ));
    }
    let version = le_u32(&buf[8..12]);
    if version != VERSION {
        return Err(format!("unsupported index version {version}"));
    }
    let binding = IndexBinding {
        file_len: le_u64(&buf[12..20]),
        db_version: le_u32(&buf[20..24]),
        db_count: le_u64(&buf[24..32]),
        fcrc: le_u32(&buf[32..36]),
        q_count: le_u32(&buf[36..40]),
        q_crc: le_u32(&buf[40..44]),
    };
    let alphabet_size = le_u32(&buf[44..48]) as usize;
    let num_sequences = le_u64(&buf[48..56]) as usize;
    let mut pos = FIXED;
    let mut take = |n: usize| -> Result<&[u8], String> {
        if pos + n > body_end {
            return Err("index body truncated".into());
        }
        let slice = &buf[pos..pos + n];
        pos += n;
        Ok(slice)
    };
    let mut lens = Vec::with_capacity(num_sequences);
    for chunk in take(
        num_sequences
            .checked_mul(4)
            .ok_or("length table overflow")?,
    )?
    .chunks(4)
    {
        lens.push(le_u32(chunk));
    }
    let mut postings = Vec::with_capacity(alphabet_size);
    for _ in 0..alphabet_size {
        let count = le_u32(take(4)?) as usize;
        let mut row = Vec::with_capacity(count);
        for chunk in take(count.checked_mul(4).ok_or("posting list overflow")?)?.chunks(4) {
            row.push(le_u32(chunk));
        }
        postings.push(row);
    }
    if pos != body_end {
        return Err(format!("index body has {} trailing bytes", body_end - pos));
    }
    let index = SymbolIndex::from_parts(alphabet_size, lens, postings)?;
    Ok((binding, index))
}

/// Loads the sidecar index for `db` if one exists and matches the
/// database's current state. Returns `Ok(None)` when the sidecar is
/// missing, stale (binding mismatch — the database changed or is opened
/// under a different quarantine view), or fails validation; the caller
/// should rebuild. Only hard I/O failures surface as `Err`.
pub fn load_validated(db: &DiskDb) -> DiskResult<Option<SymbolIndex>> {
    let path = sidecar_path(db.path());
    let (stored, index) = match read_index_file(&path) {
        Ok(parsed) => parsed,
        Err(DiskError::Io(e)) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(DiskError::Io(e)) => return Err(DiskError::Io(e)),
        Err(DiskError::Format(_)) => {
            // Corrupt sidecar: treat like stale — rebuild, don't fail.
            crate::obs::index_stale().inc();
            return Ok(None);
        }
    };
    let current = IndexBinding::of(db)?;
    if stored != current || index.num_sequences() as u64 != current.db_count {
        crate::obs::index_stale().inc();
        return Ok(None);
    }
    crate::obs::index_loads().inc();
    Ok(Some(index))
}

/// The sidecar workflow in one call: load a valid sidecar if present,
/// otherwise build the index with one scan and persist it for next time.
pub fn ensure_index(db: &DiskDb, alphabet_size: usize) -> DiskResult<SymbolIndex> {
    if let Some(index) = load_validated(db)? {
        if index.alphabet_size() >= alphabet_size {
            return Ok(index);
        }
        // Built for a smaller alphabet than the matrix in use: symbols
        // beyond its coverage would read as absent everywhere, which is
        // unsound. Rebuild.
        crate::obs::index_stale().inc();
    }
    let index = build_index(db, alphabet_size)?;
    write_sidecar(db, &index)?;
    Ok(index)
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskDbWriter;
    use noisemine_core::Symbol;

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().map(|&x| Symbol(x)).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nmidx_test_{}_{name}", std::process::id()));
        p
    }

    fn write_db(path: &Path, seqs: &[Vec<Symbol>]) -> DiskDb {
        let mut w = DiskDbWriter::create(path).unwrap();
        for (i, s) in seqs.iter().enumerate() {
            w.write_sequence(i as u64, s).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn sidecar_path_appends_extension() {
        assert_eq!(
            sidecar_path(Path::new("/data/corpus.nmdb")),
            PathBuf::from("/data/corpus.nmdb.nmidx")
        );
    }

    #[test]
    fn roundtrip_through_sidecar() {
        let path = tmp("roundtrip.nmdb");
        let seqs = vec![syms(&[0, 1, 2]), syms(&[2, 2]), syms(&[1])];
        let db = write_db(&path, &seqs);
        let index = build_index(&db, 4).unwrap();
        let side = write_sidecar(&db, &index).unwrap();
        assert_eq!(side, sidecar_path(&path));
        let loaded = load_validated(&db).unwrap().expect("fresh sidecar loads");
        assert_eq!(loaded, index);
        assert_eq!(loaded.postings_for(Symbol(2)), vec![0, 1]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&side);
    }

    #[test]
    fn missing_sidecar_is_none() {
        let path = tmp("missing.nmdb");
        let db = write_db(&path, &[syms(&[0])]);
        assert!(load_validated(&db).unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_sidecar_is_rejected_after_db_change() {
        let path = tmp("stale.nmdb");
        let db = write_db(&path, &[syms(&[0, 1]), syms(&[1])]);
        let index = build_index(&db, 2).unwrap();
        let side = write_sidecar(&db, &index).unwrap();
        // Rewrite the database with different content.
        let db = write_db(&path, &[syms(&[1, 1]), syms(&[0]), syms(&[0, 0])]);
        assert!(
            load_validated(&db).unwrap().is_none(),
            "stale sidecar must not load"
        );
        // ensure_index rebuilds and re-persists a valid sidecar.
        let rebuilt = ensure_index(&db, 2).unwrap();
        assert_eq!(rebuilt.num_sequences(), 3);
        assert_eq!(load_validated(&db).unwrap(), Some(rebuilt));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&side);
    }

    #[test]
    fn corrupt_sidecar_is_rejected() {
        let path = tmp("corrupt.nmdb");
        let db = write_db(&path, &[syms(&[0, 1])]);
        let index = build_index(&db, 2).unwrap();
        let side = write_sidecar(&db, &index).unwrap();
        let mut bytes = std::fs::read(&side).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&side, &bytes).unwrap();
        assert!(
            load_validated(&db).unwrap().is_none(),
            "corrupt sidecar must not load"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&side);
    }

    #[test]
    fn v1_database_binds_without_footer_crc() {
        let path = tmp("v1.nmdb");
        let mut w = DiskDbWriter::create_v1(&path).unwrap();
        w.write_sequence(0, &syms(&[0, 1, 1])).unwrap();
        w.write_sequence(1, &syms(&[1])).unwrap();
        let db = w.finish().unwrap();
        let binding = IndexBinding::of(&db).unwrap();
        assert_eq!(binding.db_version, 1);
        assert_eq!(binding.fcrc, 0);
        let index = ensure_index(&db, 2).unwrap();
        assert_eq!(index.num_sequences(), 2);
        assert_eq!(load_validated(&db).unwrap(), Some(index));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn undersized_alphabet_triggers_rebuild() {
        let path = tmp("alpha.nmdb");
        let db = write_db(&path, &[syms(&[0, 1, 2])]);
        let small = ensure_index(&db, 2).unwrap();
        assert_eq!(small.alphabet_size(), 2);
        let grown = ensure_index(&db, 5).unwrap();
        assert_eq!(grown.alphabet_size(), 5);
        assert_eq!(grown.postings_for(Symbol(2)), vec![0]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }
}
