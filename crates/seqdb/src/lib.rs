//! # noisemine-seqdb
//!
//! The sequence-database substrate for the noisemine workspace: in-memory
//! and disk-resident stores implementing the core crate's
//! [`noisemine_core::matching::SequenceScan`] contract, with **scan
//! accounting** — the paper's principal cost metric for disk-resident data —
//! and the uniform samplers of Algorithm 4.1.

pub mod disk;
pub mod memory;
pub(crate) mod obs;
mod pipeline;
pub mod sampling;
pub mod text;

pub use disk::{DiskDb, DiskDbWriter, DiskError, DiskResult};
pub use memory::MemoryDb;
pub use sampling::{reservoir_sample, sequential_sample};
pub use text::{
    infer_alphabet, read_sequences, read_sequences_file, write_sequences, write_sequences_file,
};
