//! # noisemine-seqdb
//!
//! The sequence-database substrate for the noisemine workspace: in-memory
//! and disk-resident stores implementing the core crate's
//! [`noisemine_core::matching::SequenceScan`] contract, with **scan
//! accounting** — the paper's principal cost metric for disk-resident data —
//! and the uniform samplers of Algorithm 4.1.
//!
//! The disk store is fault-tolerant: scans are fallible, records are
//! checksummed (NMSEQDB format v2), and a [`FaultPolicy`] chooses between
//! failing fast, retrying transient I/O, and quarantining corrupt records.
//! See `docs/ROBUSTNESS.md` for the fault model and [`fault`] for the
//! deterministic fault-injection harness used by the chaos tests.

pub mod crc;
pub mod disk;
pub mod fault;
pub mod index;
pub mod memory;
pub(crate) mod obs;
mod pipeline;
pub mod sampling;
pub mod text;

pub use disk::{DiskDb, DiskDbWriter, DiskError, DiskResult};
pub use fault::{FaultPlan, FaultPolicy, FaultyStore, QuarantinedRecord};
pub use index::{ensure_index, load_validated, sidecar_path, IndexBinding};
pub use memory::MemoryDb;
pub use sampling::{reservoir_sample, sequential_sample};
pub use text::{
    infer_alphabet, read_sequences, read_sequences_file, write_sequences, write_sequences_file,
};
