//! In-memory sequence database with scan accounting.

use std::sync::atomic::{AtomicUsize, Ordering};

use noisemine_core::matching::{SequenceBlock, SequenceScan};
use noisemine_core::Symbol;

/// An in-memory sequence database.
///
/// Unlike the bare [`noisemine_core::matching::MemorySequences`], this type
/// assigns stable sequence ids and counts how many full scans have been
/// performed — the paper's principal cost metric (Figures 14(b), 15(a)).
#[derive(Debug, Default)]
pub struct MemoryDb {
    sequences: Vec<(u64, Vec<Symbol>)>,
    scans: AtomicUsize,
}

impl MemoryDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from sequences, assigning ids `0..n`.
    pub fn from_sequences<I: IntoIterator<Item = Vec<Symbol>>>(sequences: I) -> Self {
        Self {
            sequences: sequences
                .into_iter()
                .enumerate()
                .map(|(i, s)| (i as u64, s))
                .collect(),
            scans: AtomicUsize::new(0),
        }
    }

    /// Appends a sequence, returning its id.
    pub fn push(&mut self, sequence: Vec<Symbol>) -> u64 {
        let id = self.sequences.len() as u64;
        self.sequences.push((id, sequence));
        id
    }

    /// Number of full scans performed so far.
    pub fn scans_performed(&self) -> usize {
        self.scans.load(Ordering::Relaxed)
    }

    /// Resets the scan counter (e.g. between benchmark runs).
    pub fn reset_scans(&self) {
        self.scans.store(0, Ordering::Relaxed);
    }

    /// The stored sequences with their ids.
    pub fn sequences(&self) -> &[(u64, Vec<Symbol>)] {
        &self.sequences
    }

    /// Looks up a sequence by id (ids are dense, so this is an index).
    pub fn get(&self, id: u64) -> Option<&[Symbol]> {
        self.sequences.get(id as usize).map(|(_, s)| s.as_slice())
    }

    /// Total number of symbol positions across all sequences.
    pub fn total_symbols(&self) -> usize {
        self.sequences.iter().map(|(_, s)| s.len()).sum()
    }

    /// Average sequence length (`l̄` in the paper's complexity analysis).
    pub fn mean_length(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_symbols() as f64 / self.sequences.len() as f64
        }
    }
}

impl SequenceScan for MemoryDb {
    fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        for (id, seq) in &self.sequences {
            visit(*id, seq);
        }
    }

    fn scan_blocks(&self, block_size: usize, sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock) {
        assert!(block_size >= 1, "block_size must be at least 1");
        // No producer thread here, unlike the disk store: an in-memory
        // producer does no I/O to overlap, so the double-buffer hand-off
        // (spawn + channel + a context switch per block on small hosts) is
        // pure overhead at kernel timescales. Blocks are assembled inline
        // with the same grouping and order — matching the default
        // `try_scan_blocks` path — so every layered reduction stays
        // bit-identical.
        self.scans.fetch_add(1, Ordering::Relaxed);
        let mut block = SequenceBlock::new();
        for (id, seq) in &self.sequences {
            block.push(*id, seq);
            if block.len() >= block_size {
                block = sink(std::mem::take(&mut block));
                block.clear();
            }
        }
        if !block.is_empty() {
            sink(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(v: &[u16]) -> Vec<Symbol> {
        v.iter().map(|&x| Symbol(x)).collect()
    }

    #[test]
    fn scan_visits_in_order_and_counts() {
        let db = MemoryDb::from_sequences(vec![syms(&[0, 1]), syms(&[2])]);
        assert_eq!(db.num_sequences(), 2);
        let mut seen = Vec::new();
        db.scan(&mut |id, s| seen.push((id, s.to_vec())));
        assert_eq!(seen, vec![(0, syms(&[0, 1])), (1, syms(&[2]))]);
        assert_eq!(db.scans_performed(), 1);
        db.scan(&mut |_, _| {});
        assert_eq!(db.scans_performed(), 2);
        db.reset_scans();
        assert_eq!(db.scans_performed(), 0);
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut db = MemoryDb::new();
        assert_eq!(db.push(syms(&[1])), 0);
        assert_eq!(db.push(syms(&[2, 3])), 1);
        assert_eq!(db.get(1), Some(syms(&[2, 3]).as_slice()));
        assert_eq!(db.get(9), None);
    }

    #[test]
    fn scan_blocks_streams_in_order_and_counts() {
        let data: Vec<Vec<Symbol>> = (0..7u16).map(|i| syms(&[i])).collect();
        let db = MemoryDb::from_sequences(data.clone());
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        db.scan_blocks(3, &mut |block| {
            sizes.push(block.len());
            for (id, s) in block.iter() {
                seen.push((id, s.to_vec()));
            }
            block
        });
        assert_eq!(sizes, vec![3, 3, 1]);
        let expected: Vec<(u64, Vec<Symbol>)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect();
        assert_eq!(seen, expected);
        assert_eq!(db.scans_performed(), 1);
    }

    #[test]
    fn length_statistics() {
        let db = MemoryDb::from_sequences(vec![syms(&[0, 1, 2]), syms(&[3])]);
        assert_eq!(db.total_symbols(), 4);
        assert!((db.mean_length() - 2.0).abs() < 1e-12);
        assert_eq!(MemoryDb::new().mean_length(), 0.0);
    }
}
