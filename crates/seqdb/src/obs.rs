//! Metric handles for the seqdb crate's instrumentation: disk-scan
//! accounting (the paper's cost model counts full scans of a disk-resident
//! database) and the read-ahead block pipeline's fill/drain/stall timings.
//!
//! Handles are lazily registered in the process-wide
//! [`noisemine_obs::global`] registry and cached in `OnceLock`s; recording
//! is gated on [`noisemine_obs::enabled`] and never affects scan contents.
//! Every metric is documented in `docs/OBSERVABILITY.md`.

use noisemine_obs::{self as obs, Counter, Histogram};
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static H: OnceLock<Counter> = OnceLock::new();
            H.get_or_init(|| obs::counter($name, $help, $unit))
        }
    };
}

macro_rules! duration_histogram {
    ($fn_name:ident, $name:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Histogram {
            static H: OnceLock<Histogram> = OnceLock::new();
            H.get_or_init(|| obs::histogram($name, $help, "seconds", obs::duration_buckets()))
        }
    };
}

counter!(
    disk_scans,
    "seqdb_disk_scans_total",
    "Full scans of a disk-resident database (the unit of cost in the paper's model)",
    "scans"
);
counter!(
    disk_bytes_read,
    "seqdb_disk_bytes_read_total",
    "Bytes decoded from disk-resident databases across all scans",
    "bytes"
);
counter!(
    pipeline_blocks,
    "seqdb_pipeline_blocks_total",
    "Blocks streamed through the read-ahead pipeline",
    "blocks"
);
counter!(
    pipeline_producer_stalls,
    "seqdb_pipeline_producer_stalls_total",
    "Blocks whose hand-off blocked because the read-ahead channel was full (consumer slower than I/O)",
    "blocks"
);
duration_histogram!(
    pipeline_fill_seconds,
    "seqdb_pipeline_fill_seconds",
    "Producer time to fill one block (decode I/O), first push to ship"
);
duration_histogram!(
    pipeline_drain_seconds,
    "seqdb_pipeline_drain_seconds",
    "Consumer time spent processing one block before returning it for recycling"
);
duration_histogram!(
    pipeline_wait_seconds,
    "seqdb_pipeline_wait_seconds",
    "Consumer time spent waiting for the next block (read-ahead stall when large)"
);
counter!(
    fault_retries,
    "seqdb_fault_retries_total",
    "Reads retried after a transient I/O fault (Retry/Quarantine policies)",
    "retries"
);
counter!(
    fault_crc_failures,
    "seqdb_fault_crc_failures_total",
    "Checksum mismatches detected while scanning (per-record or whole-file)",
    "failures"
);
counter!(
    fault_resyncs,
    "seqdb_fault_resyncs_total",
    "Record-resynchronization sweeps started by the quarantine census",
    "sweeps"
);
counter!(
    fault_quarantined,
    "seqdb_fault_quarantined_total",
    "Corrupt regions skipped by the Quarantine fault policy",
    "records"
);
counter!(
    fault_scan_failures,
    "seqdb_fault_scan_failures_total",
    "Scans that surfaced an error to the caller",
    "scans"
);
counter!(
    index_writes,
    "seqdb_index_writes_total",
    "NMIDX sidecar files written (index build + persist)",
    "files"
);
counter!(
    index_loads,
    "seqdb_index_loads_total",
    "NMIDX sidecars loaded after passing checksum and binding validation",
    "files"
);
counter!(
    index_stale,
    "seqdb_index_stale_total",
    "NMIDX sidecars rejected as stale or corrupt (database changed, view changed, or checksum failed)",
    "files"
);
duration_histogram!(
    index_build_seconds,
    "seqdb_index_build_seconds",
    "Wall-clock time of one index-building scan over a disk database"
);
