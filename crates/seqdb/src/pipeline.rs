//! Read-ahead double buffering for block scans.
//!
//! One producer thread (typically doing I/O) fills
//! [`SequenceBlock`](noisemine_core::matching::SequenceBlock)s and hands
//! them over a small bounded channel while the consumer drains them;
//! consumed blocks come back over a recycle channel, so the steady state
//! shuttles a fixed set of buffers back and forth without allocating. The
//! hand-off preserves scan order exactly — blocks arrive in the order the
//! producer filled them — so everything layered on
//! [`SequenceScan::scan_blocks`](noisemine_core::matching::SequenceScan::scan_blocks)
//! (sequential sampling, ordered reductions) behaves as if the scan were
//! serial.

use std::sync::mpsc;

use noisemine_core::matching::SequenceBlock;
use noisemine_core::{ScanError, ScanErrorKind, Symbol};

/// Filled blocks in flight between producer and consumer. Two means the
/// producer can fill one block while the consumer processes another, with
/// one more buffered against scheduling jitter.
const READ_AHEAD: usize = 2;

/// The producer's half of the pipeline: accumulates sequences into blocks
/// and ships full ones to the consumer.
pub(crate) struct BlockEmitter {
    filled: mpsc::SyncSender<SequenceBlock>,
    recycle: mpsc::Receiver<SequenceBlock>,
    block_size: usize,
    block: SequenceBlock,
    /// Times the fill of the in-progress block (first push → ship); `None`
    /// while the block is empty. Records nothing when observability is off.
    fill_span: Option<noisemine_obs::Span>,
}

impl BlockEmitter {
    /// Appends one sequence, shipping the block once it reaches capacity.
    pub(crate) fn push(&mut self, id: u64, seq: &[Symbol]) {
        if self.block.is_empty() {
            self.fill_span = Some(crate::obs::pipeline_fill_seconds().span());
        }
        self.block.push(id, seq);
        if self.block.len() >= self.block_size {
            self.ship();
        }
    }

    fn ship(&mut self) {
        if let Some(span) = self.fill_span.take() {
            span.finish();
        }
        let mut next = self.recycle.try_recv().unwrap_or_default();
        next.clear();
        let full = std::mem::replace(&mut self.block, next);
        // Hand off without blocking when there is room; a full channel means
        // the consumer is behind — count the stall, then block. A closed
        // channel means the consumer is gone (it panicked and is unwinding);
        // go quiet and let the consumer side surface the failure.
        match self.filled.try_send(full) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(full)) => {
                crate::obs::pipeline_producer_stalls().inc();
                let _ = self.filled.send(full);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {}
        }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Runs `produce` on a dedicated thread, streaming its blocks through
/// `sink` on the calling thread in production order; `sink` returns each
/// block for recycling. Returns `produce`'s result once the stream is
/// fully drained. On `Err` the blocks shipped before the failure have
/// already been consumed — mirroring how a plain streaming scan visits
/// records up to the point of failure.
///
/// A panic on the producer thread is captured and surfaced as a
/// [`ScanError`] rather than re-panicking the consumer: the caller decides
/// (per its fault policy) whether a failed scan aborts the process.
pub(crate) fn double_buffered<P>(
    block_size: usize,
    produce: P,
    sink: &mut dyn FnMut(SequenceBlock) -> SequenceBlock,
) -> Result<(), ScanError>
where
    P: FnOnce(&mut BlockEmitter) -> Result<(), ScanError> + Send,
{
    assert!(block_size >= 1, "block_size must be at least 1");
    let (filled_tx, filled_rx) = mpsc::sync_channel::<SequenceBlock>(READ_AHEAD);
    let (recycle_tx, recycle_rx) = mpsc::channel::<SequenceBlock>();
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut emitter = BlockEmitter {
                filled: filled_tx,
                recycle: recycle_rx,
                block_size,
                block: SequenceBlock::new(),
                fill_span: None,
            };
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| produce(&mut emitter)));
            let result = match result {
                Ok(r) => r,
                Err(payload) => Err(ScanError::new(
                    ScanErrorKind::Io,
                    format!("block producer panicked: {}", panic_message(&*payload)),
                )),
            };
            if result.is_ok() && !emitter.block.is_empty() {
                emitter.ship();
            }
            // Dropping `emitter` closes the filled channel, which ends the
            // consumer loop below.
            result
        });
        loop {
            // The wait for the next block is the read-ahead stall: near zero
            // while the producer keeps up, the full fill time when it can't.
            let wait = crate::obs::pipeline_wait_seconds().span();
            let Ok(block) = filled_rx.recv() else {
                wait.cancel();
                break;
            };
            wait.finish();
            crate::obs::pipeline_blocks().inc();
            let drain = crate::obs::pipeline_drain_seconds().span();
            let returned = sink(block);
            drain.finish();
            // The producer may already have finished; it just means nobody
            // needs the recycled buffer anymore.
            let _ = recycle_tx.send(returned);
        }
        // `catch_unwind` above means a panicking `produce` still joins
        // cleanly; a join error can only come from a panic in the shipping
        // machinery itself, and is reported — not re-thrown.
        match producer.join() {
            Ok(result) => result,
            Err(_) => Err(ScanError::new(
                ScanErrorKind::Io,
                "block producer thread panicked",
            )),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_blocks_in_order_with_tail() {
        let out = double_buffered(
            4,
            |emitter| {
                for i in 0..10u64 {
                    emitter.push(i, &[Symbol(i as u16)]);
                }
                Ok(())
            },
            &mut {
                let mut expected = 0u64;
                move |block| {
                    for (id, seq) in block.iter() {
                        assert_eq!(id, expected);
                        assert_eq!(seq, &[Symbol(expected as u16)]);
                        expected += 1;
                    }
                    block
                }
            },
        );
        out.unwrap();
    }

    #[test]
    fn propagates_producer_errors_after_draining() {
        let mut seen = 0usize;
        let out = double_buffered(
            2,
            |emitter| {
                for i in 0..4u64 {
                    emitter.push(i, &[]);
                }
                Err(ScanError::new(ScanErrorKind::Io, "disk on fire"))
            },
            &mut |block| {
                seen += block.len();
                block
            },
        );
        let err = out.unwrap_err();
        assert_eq!(err.kind(), ScanErrorKind::Io);
        assert_eq!(err.message(), "disk on fire");
        // The two full blocks shipped before the error were consumed.
        assert_eq!(seen, 4);
    }

    #[test]
    fn captures_producer_panics_as_errors() {
        let mut seen = 0usize;
        let out = double_buffered(
            1,
            |emitter| {
                emitter.push(0, &[Symbol(1)]);
                panic!("producer exploded");
            },
            &mut |block| {
                seen += block.len();
                block
            },
        );
        let err = out.unwrap_err();
        assert_eq!(err.kind(), ScanErrorKind::Io);
        assert!(err.message().contains("producer exploded"), "{err}");
        assert_eq!(seen, 1);
    }

    #[test]
    fn empty_producer_yields_no_blocks() {
        let out = double_buffered(8, |_| Ok(()), &mut |_| panic!("no blocks expected"));
        out.unwrap();
    }
}
