//! Uniform sampling of sequences (§4.1, lines 12–16 of Algorithm 4.1).
//!
//! Two samplers are provided:
//!
//! - [`sequential_sample`] — the paper's method [Vitter 1987]: while
//!   scanning, sequence `i` is chosen with probability `(n − j) / (N − i)`
//!   given `j` sequences already chosen. Requires `N` up front (one
//!   attribute of the database) and returns *exactly* `min(n, N)` sequences,
//!   each subset of size `n` being equally likely.
//! - [`reservoir_sample`] — reservoir sampling for sources whose size is
//!   unknown; used when piping data in from generators.

use noisemine_core::matching::SequenceScan;
use noisemine_core::Symbol;
use rand::Rng;

/// Draws exactly `min(n, N)` sequences uniformly at random in one scan,
/// using sequential sampling (the paper's choice, since `N` is known).
pub fn sequential_sample<S, R>(db: &S, n: usize, rng: &mut R) -> Vec<Vec<Symbol>>
where
    S: SequenceScan + ?Sized,
    R: Rng,
{
    let total = db.num_sequences();
    let n = n.min(total);
    let mut sample = Vec::with_capacity(n);
    let mut seen = 0usize;
    db.scan(&mut |_, seq| {
        let needed = n - sample.len();
        let remaining = total - seen;
        if needed > 0 && rng.gen::<f64>() < needed as f64 / remaining as f64 {
            sample.push(seq.to_vec());
        }
        seen += 1;
    });
    debug_assert_eq!(sample.len(), n, "sequential sampling must fill the quota");
    sample
}

/// Reservoir sampling: draws up to `n` sequences uniformly without knowing
/// the total count in advance.
pub fn reservoir_sample<S, R>(db: &S, n: usize, rng: &mut R) -> Vec<Vec<Symbol>>
where
    S: SequenceScan + ?Sized,
    R: Rng,
{
    let mut sample: Vec<Vec<Symbol>> = Vec::with_capacity(n);
    let mut seen = 0usize;
    db.scan(&mut |_, seq| {
        if sample.len() < n {
            sample.push(seq.to_vec());
        } else {
            let k = rng.gen_range(0..=seen);
            if k < n {
                sample[k] = seq.to_vec();
            }
        }
        seen += 1;
    });
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryDb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(n: usize) -> MemoryDb {
        MemoryDb::from_sequences((0..n).map(|i| vec![Symbol(i as u16)]))
    }

    #[test]
    fn sequential_returns_exact_count() {
        let database = db(100);
        let mut rng = StdRng::seed_from_u64(42);
        for n in [0, 1, 10, 100, 150] {
            let s = sequential_sample(&database, n, &mut rng);
            assert_eq!(s.len(), n.min(100));
        }
    }

    #[test]
    fn sequential_preserves_order_and_uniqueness() {
        let database = db(50);
        let mut rng = StdRng::seed_from_u64(7);
        let s = sequential_sample(&database, 20, &mut rng);
        let ids: Vec<u16> = s.iter().map(|seq| seq[0].0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in sample");
        assert_eq!(ids, {
            let mut o = ids.clone();
            o.sort_unstable();
            o
        }, "sequential sampling preserves scan order");
    }

    #[test]
    fn sequential_is_approximately_uniform() {
        // Chi-square-flavored sanity check: sample 10 of 20 sequences many
        // times; each sequence should be selected about half the time.
        let database = db(20);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 2000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            for seq in sequential_sample(&database, 10, &mut rng) {
                counts[seq[0].0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.5).abs() < 0.06,
                "sequence {i} selected with frequency {freq}, expected ~0.5"
            );
        }
    }

    #[test]
    fn reservoir_fills_and_stays_in_bounds() {
        let database = db(30);
        let mut rng = StdRng::seed_from_u64(5);
        let s = reservoir_sample(&database, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let s = reservoir_sample(&database, 100, &mut rng);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        let database = db(20);
        let mut rng = StdRng::seed_from_u64(123);
        let trials = 2000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            for seq in reservoir_sample(&database, 10, &mut rng) {
                counts[seq[0].0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.5).abs() < 0.06,
                "sequence {i} selected with frequency {freq}, expected ~0.5"
            );
        }
    }

    #[test]
    fn samplers_use_one_scan() {
        let database = db(10);
        let mut rng = StdRng::seed_from_u64(1);
        sequential_sample(&database, 5, &mut rng);
        assert_eq!(database.scans_performed(), 1);
        reservoir_sample(&database, 5, &mut rng);
        assert_eq!(database.scans_performed(), 2);
    }
}
