//! Uniform sampling of sequences (§4.1, lines 12–16 of Algorithm 4.1).
//!
//! Two samplers are provided:
//!
//! - [`sequential_sample`] — the paper's method [Vitter 1987]: while
//!   scanning, sequence `i` is chosen with probability `(n − j) / (N − i)`
//!   given `j` sequences already chosen. Requires `N` up front (one
//!   attribute of the database) and returns *exactly* `min(n, N)` sequences,
//!   each subset of size `n` being equally likely.
//! - [`reservoir_sample`] — reservoir sampling for sources whose size is
//!   unknown; used when piping data in from generators.

use noisemine_core::matching::SequenceScan;
use noisemine_core::Symbol;
use rand::Rng;

/// Draws exactly `min(n, N)` sequences uniformly at random in one scan,
/// using sequential sampling (the paper's choice, since `N` is known).
///
/// Sequential sampling trusts `db.num_sequences()`. Streaming sources (an
/// appended-to database, a file tail) can *under-report* that count: the
/// scan then yields sequences past the reported `N`. Rather than panicking
/// (or silently short-sampling), those surplus sequences are absorbed with
/// reservoir-style replacement, so the result still has `min(n, actual)`
/// sequences. In that fallback the sample is no longer guaranteed to be in
/// scan order, and uniformity is best-effort (exact again once the reported
/// count catches up). An *over*-reported count cannot be detected in one
/// scan and may yield fewer than `min(n, actual)` sequences.
pub fn sequential_sample<S, R>(db: &S, n: usize, rng: &mut R) -> Vec<Vec<Symbol>>
where
    S: SequenceScan + ?Sized,
    R: Rng,
{
    let reported = db.num_sequences();
    let quota = n.min(reported);
    let mut sample = Vec::with_capacity(quota);
    let mut seen = 0usize;
    db.scan(&mut |_, seq| {
        if seen < reported {
            let needed = quota - sample.len();
            let remaining = reported - seen;
            if needed > 0 && rng.gen::<f64>() < needed as f64 / remaining as f64 {
                sample.push(seq.to_vec());
            }
        } else if sample.len() < n {
            // The database under-reported its size; grow toward the
            // requested n before switching to reservoir replacement.
            sample.push(seq.to_vec());
        } else {
            let k = rng.gen_range(0..=seen);
            if k < n {
                sample[k] = seq.to_vec();
            }
        }
        seen += 1;
    });
    debug_assert!(
        seen < reported || sample.len() == n.min(seen),
        "sequential sampling must fill the quota (got {} of {})",
        sample.len(),
        n.min(seen),
    );
    sample
}

/// Reservoir sampling: draws up to `n` sequences uniformly without knowing
/// the total count in advance.
pub fn reservoir_sample<S, R>(db: &S, n: usize, rng: &mut R) -> Vec<Vec<Symbol>>
where
    S: SequenceScan + ?Sized,
    R: Rng,
{
    let mut sample: Vec<Vec<Symbol>> = Vec::with_capacity(n);
    let mut seen = 0usize;
    db.scan(&mut |_, seq| {
        if sample.len() < n {
            sample.push(seq.to_vec());
        } else {
            let k = rng.gen_range(0..=seen);
            if k < n {
                sample[k] = seq.to_vec();
            }
        }
        seen += 1;
    });
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryDb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(n: usize) -> MemoryDb {
        MemoryDb::from_sequences((0..n).map(|i| vec![Symbol(i as u16)]))
    }

    #[test]
    fn sequential_returns_exact_count() {
        let database = db(100);
        let mut rng = StdRng::seed_from_u64(42);
        for n in [0, 1, 10, 100, 150] {
            let s = sequential_sample(&database, n, &mut rng);
            assert_eq!(s.len(), n.min(100));
        }
    }

    #[test]
    fn sequential_preserves_order_and_uniqueness() {
        let database = db(50);
        let mut rng = StdRng::seed_from_u64(7);
        let s = sequential_sample(&database, 20, &mut rng);
        let ids: Vec<u16> = s.iter().map(|seq| seq[0].0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in sample");
        assert_eq!(
            ids,
            {
                let mut o = ids.clone();
                o.sort_unstable();
                o
            },
            "sequential sampling preserves scan order"
        );
    }

    #[test]
    fn sequential_is_approximately_uniform() {
        // Chi-square-flavored sanity check: sample 10 of 20 sequences many
        // times; each sequence should be selected about half the time.
        let database = db(20);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 2000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            for seq in sequential_sample(&database, 10, &mut rng) {
                counts[seq[0].0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.5).abs() < 0.06,
                "sequence {i} selected with frequency {freq}, expected ~0.5"
            );
        }
    }

    #[test]
    fn reservoir_fills_and_stays_in_bounds() {
        let database = db(30);
        let mut rng = StdRng::seed_from_u64(5);
        let s = reservoir_sample(&database, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let s = reservoir_sample(&database, 100, &mut rng);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        let database = db(20);
        let mut rng = StdRng::seed_from_u64(123);
        let trials = 2000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            for seq in reservoir_sample(&database, 10, &mut rng) {
                counts[seq[0].0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.5).abs() < 0.06,
                "sequence {i} selected with frequency {freq}, expected ~0.5"
            );
        }
    }

    /// A database that reports fewer sequences than its scan yields, the
    /// way a concurrently appended-to store does.
    struct UnderReportingDb {
        inner: MemoryDb,
        reported: usize,
    }

    impl SequenceScan for UnderReportingDb {
        fn num_sequences(&self) -> usize {
            self.reported
        }
        fn scan(&self, visit: &mut dyn FnMut(u64, &[Symbol])) {
            self.inner.scan(visit)
        }
    }

    #[test]
    fn sequential_handles_empty_requests_and_empty_dbs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sequential_sample(&db(0), 0, &mut rng).is_empty());
        assert!(sequential_sample(&db(0), 10, &mut rng).is_empty());
        assert!(sequential_sample(&db(25), 0, &mut rng).is_empty());
    }

    #[test]
    fn sequential_caps_at_database_size() {
        let database = db(8);
        let mut rng = StdRng::seed_from_u64(11);
        let s = sequential_sample(&database, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let s = sequential_sample(&database, 1000, &mut rng);
        assert_eq!(s.len(), 8, "n >= N must return every sequence");
    }

    #[test]
    fn sequential_falls_back_to_reservoir_on_underreported_count() {
        // 40 actual sequences, only 15 admitted. Quota requests larger and
        // smaller than both counts must all come back full-size.
        let lying = UnderReportingDb {
            inner: db(40),
            reported: 15,
        };
        let mut rng = StdRng::seed_from_u64(21);
        for n in [0, 10, 15, 25, 40, 60] {
            let s = sequential_sample(&lying, n, &mut rng);
            assert_eq!(s.len(), n.min(40), "n = {n}");
        }
    }

    #[test]
    fn sequential_fallback_covers_surplus_sequences() {
        // With n >= actual the fallback must return every sequence,
        // including the ones past the reported count.
        let lying = UnderReportingDb {
            inner: db(30),
            reported: 5,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let mut ids: Vec<u16> = sequential_sample(&lying, 30, &mut rng)
            .iter()
            .map(|seq| seq[0].0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u16>>());
    }

    #[test]
    fn sequential_fallback_reaches_all_positions() {
        // Reservoir replacement must be able to select surplus sequences
        // without starving the sequentially chosen prefix.
        let lying = UnderReportingDb {
            inner: db(20),
            reported: 10,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 2000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            for seq in sequential_sample(&lying, 5, &mut rng) {
                counts[seq[0].0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "sequence {i} never selected across {trials} trials");
        }
    }

    #[test]
    fn samplers_use_one_scan() {
        let database = db(10);
        let mut rng = StdRng::seed_from_u64(1);
        sequential_sample(&database, 5, &mut rng);
        assert_eq!(database.scans_performed(), 1);
        reservoir_sample(&database, 5, &mut rng);
        assert_eq!(database.scans_performed(), 2);
    }
}
