//! Plain-text sequence formats for getting real data in and out.
//!
//! Two line-oriented formats are supported, auto-detected on read:
//!
//! - **Letters** — one sequence per line, contiguous single-character
//!   symbol names (the natural encoding for amino-acid data):
//!   `AMTKYQVCEBRHUJG`
//! - **Tokens** — one sequence per line, whitespace-separated symbol names
//!   (for multi-character alphabets such as product catalogs):
//!   `espresso croissant juice`
//!
//! Lines starting with `#` and blank lines are ignored; a FASTA-style `>`
//! header line is also skipped, so typical `.fasta` protein files load
//! directly (each record must be on a single line).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use noisemine_core::{Alphabet, Symbol};

use crate::disk::{DiskError, DiskResult};

/// Classifies a failed line read: malformed data (non-UTF-8 bytes) becomes
/// a [`DiskError::Format`] carrying the 1-based line number, anything else
/// stays a hard [`DiskError::Io`].
fn line_read_error(lineno: usize, e: std::io::Error) -> DiskError {
    if e.kind() == std::io::ErrorKind::InvalidData {
        DiskError::Format(format!("line {}: {e}", lineno + 1))
    } else {
        DiskError::Io(e)
    }
}

/// Reads sequences from a text reader using the given alphabet.
///
/// Each non-comment line is decoded with [`Alphabet::encode`] (contiguous
/// single letters or whitespace-separated tokens). Unknown symbols and
/// malformed (non-UTF-8) lines produce a [`DiskError::Format`] naming the
/// line; hard I/O failures stay [`DiskError::Io`].
pub fn read_sequences<R: Read>(reader: R, alphabet: &Alphabet) -> DiskResult<Vec<Vec<Symbol>>> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| line_read_error(lineno, e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('>') {
            continue;
        }
        let seq = alphabet
            .encode(trimmed)
            .map_err(|e| DiskError::Format(format!("line {}: {e}", lineno + 1)))?;
        out.push(seq);
    }
    Ok(out)
}

/// Reads sequences from a text file. See [`read_sequences`].
pub fn read_sequences_file(
    path: impl AsRef<Path>,
    alphabet: &Alphabet,
) -> DiskResult<Vec<Vec<Symbol>>> {
    let file = std::fs::File::open(path.as_ref())?;
    read_sequences(file, alphabet)
}

/// Writes sequences as text, one per line, using [`Alphabet::decode`]
/// (contiguous when every symbol name is a single character, otherwise
/// space-separated).
pub fn write_sequences<W: Write>(
    writer: W,
    sequences: &[Vec<Symbol>],
    alphabet: &Alphabet,
) -> DiskResult<()> {
    let mut out = BufWriter::new(writer);
    for seq in sequences {
        let line = alphabet
            .decode(seq)
            .map_err(|e| DiskError::Format(e.to_string()))?;
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes sequences to a text file. See [`write_sequences`].
pub fn write_sequences_file(
    path: impl AsRef<Path>,
    sequences: &[Vec<Symbol>],
    alphabet: &Alphabet,
) -> DiskResult<()> {
    let file = std::fs::File::create(path.as_ref())?;
    write_sequences(file, sequences, alphabet)
}

/// Infers an alphabet from text data: collects every distinct token
/// (single characters for contiguous lines, whitespace tokens otherwise)
/// in first-appearance order. Useful when no alphabet file accompanies the
/// data.
pub fn infer_alphabet<R: Read>(reader: R) -> DiskResult<Alphabet> {
    let reader = BufReader::new(reader);
    let mut names: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| line_read_error(lineno, e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('>') {
            continue;
        }
        let tokens: Vec<String> = if trimmed.contains(char::is_whitespace) {
            trimmed.split_whitespace().map(str::to_string).collect()
        } else {
            trimmed.chars().map(|c| c.to_string()).collect()
        };
        for t in tokens {
            if seen.insert(t.clone()) {
                names.push(t);
            }
        }
    }
    Alphabet::new(names).map_err(|e| DiskError::Format(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_round_trip() {
        let alphabet = Alphabet::amino_acids();
        let text = "AMTKY\nQVCER\n";
        let seqs = read_sequences(text.as_bytes(), &alphabet).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].len(), 5);
        let mut out = Vec::new();
        write_sequences(&mut out, &seqs, &alphabet).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), text);
    }

    #[test]
    fn tokens_round_trip() {
        let alphabet = Alphabet::new(["espresso", "tea", "juice"]).unwrap();
        let text = "espresso tea\njuice espresso tea\n";
        let seqs = read_sequences(text.as_bytes(), &alphabet).unwrap();
        assert_eq!(seqs[1].len(), 3);
        let mut out = Vec::new();
        write_sequences(&mut out, &seqs, &alphabet).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), text);
    }

    #[test]
    fn comments_headers_and_blanks_skipped() {
        let alphabet = Alphabet::amino_acids();
        let text = "# comment\n\n>record 1\nAMTKY\n>record 2\nQVC\n";
        let seqs = read_sequences(text.as_bytes(), &alphabet).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[1].len(), 3);
    }

    #[test]
    fn unknown_symbol_names_line() {
        let alphabet = Alphabet::amino_acids();
        let err = read_sequences("AMT\nAMZ9\n".as_bytes(), &alphabet).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn invalid_utf8_names_line() {
        let alphabet = Alphabet::amino_acids();
        let bytes: &[u8] = b"AMT\n\xFF\xFE\n";
        let err = read_sequences(bytes, &alphabet).unwrap_err();
        assert!(matches!(err, DiskError::Format(_)), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn infer_alphabet_letters() {
        let a = infer_alphabet("ABCA\nCAB\n".as_bytes()).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.symbol("A").is_ok());
        assert!(a.symbol("D").is_err());
    }

    #[test]
    fn infer_alphabet_tokens() {
        let a = infer_alphabet("x1 y2\ny2 z3\n".as_bytes()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.symbol("x1").unwrap(), Symbol(0));
        assert_eq!(a.symbol("z3").unwrap(), Symbol(2));
    }

    #[test]
    fn file_round_trip() {
        let alphabet = Alphabet::amino_acids();
        let path = std::env::temp_dir().join(format!("noisemine-text-{}.txt", std::process::id()));
        let seqs = vec![
            alphabet.encode("AMTKY").unwrap(),
            alphabet.encode("WVC").unwrap(),
        ];
        write_sequences_file(&path, &seqs, &alphabet).unwrap();
        let back = read_sequences_file(&path, &alphabet).unwrap();
        assert_eq!(back, seqs);
        std::fs::remove_file(&path).unwrap();
    }
}
