//! Chaos suite: seeded, deterministic fault injection against the disk
//! scan path, proving the contract of each [`FaultPolicy`]:
//!
//! - **Strict** surfaces the *first* fault, with the offending record's
//!   byte offset;
//! - **Retry** converges on flaky-but-recoverable stores with zero output
//!   difference from a clean run;
//! - **Quarantine** mines bit-identically to a clean run over the
//!   surviving subset, at any thread count;
//! - NMSEQDB v2 detects **every** injected single-bit corruption.

use noisemine_core::matching::SequenceScan;
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{CompatibilityMatrix, PatternSpace, ScanErrorKind, Symbol};
use noisemine_seqdb::{DiskDb, DiskDbWriter, FaultPlan, FaultPolicy, FaultyStore};
use std::time::Duration;

/// Header length, v2 record-head length (id + len + crc) — mirrors the
/// documented format, independently of the implementation's constants.
const HEADER: u64 = 20;
const REC_HEAD: u64 = 16;
/// Symbols per test sequence; each record is `REC_HEAD + 2 * SEQ_LEN`.
const SEQ_LEN: u64 = 5;
const REC: u64 = REC_HEAD + 2 * SEQ_LEN;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("noisemine-chaos-{}-{name}", std::process::id()))
}

fn sequences(n: u16) -> Vec<Vec<Symbol>> {
    (0..n)
        .map(|i| (0..SEQ_LEN as u16).map(|j| Symbol((i + j) % 5)).collect())
        .collect()
}

fn build_db(name: &str, seqs: &[Vec<Symbol>]) -> std::path::PathBuf {
    let path = tmp(name);
    DiskDb::create_from(&path, seqs.iter().map(Vec::as_slice)).unwrap();
    path
}

fn collect<S: SequenceScan>(db: &S) -> Vec<(u64, Vec<Symbol>)> {
    let mut out = Vec::new();
    db.try_scan(&mut |id, s| out.push((id, s.to_vec())))
        .unwrap();
    out
}

fn miner_config(threads: usize) -> MinerConfig {
    MinerConfig {
        min_match: 0.2,
        delta: 0.05,
        sample_size: 16,
        counters_per_scan: 10,
        space: PatternSpace::contiguous(3),
        seed: 42,
        threads,
        ..MinerConfig::default()
    }
}

/// First-byte offset of record `k`'s data section.
fn data_offset(k: u64) -> u64 {
    HEADER + k * REC + REC_HEAD
}

// ---------------------------------------------------------------- Strict

#[test]
fn strict_surfaces_first_fault_with_offset() {
    let seqs = sequences(10);
    let path = build_db("strict-offset.nmdb", &seqs);
    // Corrupt records 3 and 7; Strict must report record 3 — the first.
    let plan = FaultPlan::new()
        .flip_bit(data_offset(3) * 8 + 2)
        .flip_bit(data_offset(7) * 8 + 5);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Strict).unwrap();
    let err = store.try_scan(&mut |_, _| {}).unwrap_err();
    assert_eq!(err.kind(), ScanErrorKind::Corrupt);
    assert_eq!(err.record(), Some(3));
    assert_eq!(err.offset(), Some(HEADER + 3 * REC));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn strict_fails_fast_on_transients() {
    let seqs = sequences(10);
    let path = build_db("strict-transient.nmdb", &seqs);
    // Strict has a zero-retry budget, so the very first read that covers
    // the faulty site — the buffered header read at open — surfaces it.
    let plan = FaultPlan::new().transient_at(HEADER + 2 * REC, 1);
    let err = FaultyStore::open(&path, plan, FaultPolicy::Strict).unwrap_err();
    assert!(err.to_string().contains("transient"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn strict_detects_truncation() {
    let seqs = sequences(10);
    let path = build_db("strict-trunc.nmdb", &seqs);
    let plan = FaultPlan::new().truncate(HEADER + 5 * REC + 3);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Strict).unwrap();
    let err = store.try_scan(&mut |_, _| {}).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            ScanErrorKind::Corrupt | ScanErrorKind::Truncated
        ),
        "{err}"
    );
    std::fs::remove_file(&path).unwrap();
}

// ----------------------------------------------------------------- Retry

#[test]
fn retry_converges_with_zero_output_difference() {
    let seqs = sequences(40);
    let path = build_db("retry-converge.nmdb", &seqs);
    let clean = DiskDb::open(&path).unwrap();
    let expected = collect(&clean);

    // Seeded random transient sites (each heals after 1–2 failures), no
    // corruption: a flaky-but-recoverable store. The retry budget is per
    // read, and one buffered read can cover several sites, so it must
    // exceed the worst-case stack of failures (6 sites × 2 fails).
    let file_len = std::fs::metadata(&path).unwrap().len();
    for seed in [1u64, 7, 99] {
        let plan = FaultPlan::random(seed, file_len, 6, 0);
        let store = FaultyStore::open(
            &path,
            plan,
            FaultPolicy::Retry {
                attempts: 16,
                backoff: Duration::ZERO,
            },
        )
        .unwrap();
        assert_eq!(collect(&store), expected, "seed {seed}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn retry_mines_identically_to_clean_store() {
    let seqs = sequences(40);
    let path = build_db("retry-mine.nmdb", &seqs);
    let matrix = CompatibilityMatrix::paper_figure2();
    let clean = DiskDb::open(&path).unwrap();
    let expected = mine(&clean, &matrix, &miner_config(0)).unwrap();

    let file_len = std::fs::metadata(&path).unwrap().len();
    let plan = FaultPlan::random(5, file_len, 4, 0);
    let store = FaultyStore::open(
        &path,
        plan,
        FaultPolicy::Retry {
            attempts: 16,
            backoff: Duration::ZERO,
        },
    )
    .unwrap();
    let outcome = mine(&store, &matrix, &miner_config(0)).unwrap();
    assert_eq!(
        format!("{:?}", outcome.frequent),
        format!("{:?}", expected.frequent)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn retry_exhaustion_surfaces_the_fault() {
    let seqs = sequences(10);
    let path = build_db("retry-exhaust.nmdb", &seqs);
    // A site that fails more times than the budget allows: the fault
    // outlives every retry and surfaces as a transient error.
    let plan = FaultPlan::new().transient_at(HEADER + REC, 10);
    let err = FaultyStore::open(
        &path,
        plan,
        FaultPolicy::Retry {
            attempts: 2,
            backoff: Duration::ZERO,
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("transient"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

// ------------------------------------------------------------ Quarantine

#[test]
fn quarantine_mines_bit_identically_to_clean_subset_at_any_thread_count() {
    let seqs = sequences(60);
    let path = build_db("quarantine-mine.nmdb", &seqs);
    // Corrupt records 7 and 23.
    let plan = FaultPlan::new()
        .flip_bit(data_offset(7) * 8 + 1)
        .flip_bit(data_offset(23) * 8 + 9);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Quarantine).unwrap();
    assert_eq!(store.num_sequences(), 58);
    assert_eq!(store.db().quarantined().len(), 2);

    // The clean comparison run: a database holding only the survivors.
    let survivors: Vec<Vec<Symbol>> = seqs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 7 && *i != 23)
        .map(|(_, s)| s.clone())
        .collect();
    let clean_path = build_db("quarantine-clean.nmdb", &survivors);
    let clean = DiskDb::open(&clean_path).unwrap();

    let matrix = CompatibilityMatrix::paper_figure2();
    let reference = mine(&clean, &matrix, &miner_config(1)).unwrap();
    for threads in [1usize, 4] {
        let outcome = mine(&store, &matrix, &miner_config(threads)).unwrap();
        assert_eq!(
            format!("{:?}", outcome.frequent),
            format!("{:?}", reference.frequent),
            "threads {threads}"
        );
        let clean_t = mine(&clean, &matrix, &miner_config(threads)).unwrap();
        assert_eq!(
            format!("{:?}", clean_t.frequent),
            format!("{:?}", reference.frequent),
            "clean at threads {threads}"
        );
    }
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&clean_path).unwrap();
}

#[test]
fn quarantine_resynchronizes_and_reports_skips() {
    let seqs = sequences(12);
    let path = build_db("quarantine-resync.nmdb", &seqs);
    let plan = FaultPlan::new().flip_bit(data_offset(4) * 8);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Quarantine).unwrap();
    let q = store.db().quarantined();
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].offset, HEADER + 4 * REC);
    // Resynchronization lands exactly on the next record: one record's
    // worth of bytes skipped.
    assert_eq!(q[0].skipped, REC);
    let visited = collect(&store);
    assert_eq!(visited.len(), 11);
    assert!(visited.iter().all(|(id, _)| *id != 4));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn quarantine_survives_truncation() {
    let seqs = sequences(10);
    let path = build_db("quarantine-trunc.nmdb", &seqs);
    // Cut mid-way through record 6: records 0–5 survive.
    let plan = FaultPlan::new().truncate(HEADER + 6 * REC + 3);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Quarantine).unwrap();
    assert_eq!(store.num_sequences(), 6);
    let visited = collect(&store);
    assert_eq!(visited.len(), 6);
    assert_eq!(visited.last().unwrap().0, 5);
    std::fs::remove_file(&path).unwrap();
}

// ----------------------------------------------- single-bit detection

/// The v2 acceptance bar: flipping *any* single bit of a finished file is
/// detected — at open (header damage) or by a strict scan (everything
/// else). 100%, no exceptions.
#[test]
fn v2_detects_every_single_bit_flip() {
    let seqs = sequences(3);
    let path = build_db("bitflip-all.nmdb", &seqs);
    let file_len = std::fs::metadata(&path).unwrap().len();
    let mut undetected = Vec::new();
    for bit in 0..file_len * 8 {
        let plan = FaultPlan::new().flip_bit(bit);
        match FaultyStore::open(&path, plan, FaultPolicy::Strict) {
            Err(_) => {} // detected at open
            Ok(store) => {
                if store.try_scan(&mut |_, _| {}).is_ok() {
                    undetected.push(bit);
                }
            }
        }
    }
    assert!(
        undetected.is_empty(),
        "{} of {} bit flips undetected: {undetected:?}",
        undetected.len(),
        file_len * 8
    );
    std::fs::remove_file(&path).unwrap();
}

// ----------------------------------------------------- v1 compatibility

#[test]
fn v1_file_scans_bit_identically_through_v2_reader() {
    let seqs = sequences(15);
    let v1_path = tmp("compat-v1.nmdb");
    let mut w = DiskDbWriter::create_v1(&v1_path).unwrap();
    for (i, s) in seqs.iter().enumerate() {
        w.write_sequence(i as u64, s).unwrap();
    }
    let v1 = w.finish().unwrap();
    assert_eq!(v1.version(), 1);

    let v2_path = build_db("compat-v2.nmdb", &seqs);
    let v2 = DiskDb::open(&v2_path).unwrap();
    assert_eq!(collect(&v1), collect(&v2));

    // And the mining outcome over a v1 store equals the v2 one, bit for bit.
    let matrix = CompatibilityMatrix::paper_figure2();
    let from_v1 = mine(&v1, &matrix, &miner_config(0)).unwrap();
    let from_v2 = mine(&v2, &matrix, &miner_config(0)).unwrap();
    assert_eq!(
        format!("{:?}", from_v1.frequent),
        format!("{:?}", from_v2.frequent)
    );
    std::fs::remove_file(&v1_path).unwrap();
    std::fs::remove_file(&v2_path).unwrap();
}

#[test]
fn v2_append_round_trips_with_fresh_footer() {
    let seqs = sequences(8);
    let path = build_db("append-v2.nmdb", &seqs[..5]);
    let mut w = DiskDbWriter::append(&path).unwrap();
    assert_eq!(w.count(), 5);
    for (i, s) in seqs[5..].iter().enumerate() {
        w.write_sequence(5 + i as u64, s).unwrap();
    }
    let db = w.finish().unwrap();
    assert_eq!(db.num_sequences(), 8);
    // The extended file passes full strict validation (footer + file CRC
    // were rewritten), and yields all sequences in order.
    let visited = collect(&db);
    assert_eq!(visited.len(), 8);
    for (i, (id, s)) in visited.iter().enumerate() {
        assert_eq!(*id, i as u64);
        assert_eq!(s, &seqs[i]);
    }
    std::fs::remove_file(&path).unwrap();
}
