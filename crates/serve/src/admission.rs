//! Token-bucket admission control, one bucket per tenant.
//!
//! Time is injected as seconds since an arbitrary epoch (the server passes
//! elapsed time from its start `Instant`), so the refill logic is fully
//! deterministic under test: call [`TokenBucket::try_acquire_at`] with
//! synthetic timestamps and the admit/throttle sequence is reproducible.

/// A classic token bucket: `rate` tokens per second refill up to `burst`
/// capacity; each admitted request costs one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_secs: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` requests/second with `burst` capacity,
    /// starting full. A non-positive `rate` means **unlimited** (every
    /// acquire succeeds) — the CLI's `--tenant-quota 0` default.
    pub fn new(rate: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        Self {
            rate,
            burst,
            tokens: burst,
            last_secs: 0.0,
        }
    }

    /// A bucket whose burst equals one second of quota (minimum 1).
    pub fn per_second(rate: f64) -> Self {
        Self::new(rate, rate)
    }

    /// Whether this bucket admits everything.
    pub fn is_unlimited(&self) -> bool {
        self.rate <= 0.0
    }

    /// Attempts to take one token at time `now_secs` (monotone seconds
    /// since the bucket's epoch). Returns `false` when the quota is
    /// exhausted — the caller answers HTTP 429.
    pub fn try_acquire_at(&mut self, now_secs: f64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        if now_secs > self.last_secs {
            self.tokens = (self.tokens + (now_secs - self.last_secs) * self.rate).min(self.burst);
            self.last_secs = now_secs;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (for tests and introspection).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_burst_then_throttles() {
        let mut b = TokenBucket::new(2.0, 3.0);
        assert!(b.try_acquire_at(0.0));
        assert!(b.try_acquire_at(0.0));
        assert!(b.try_acquire_at(0.0));
        assert!(!b.try_acquire_at(0.0), "burst of 3 exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(2.0, 2.0);
        assert!(b.try_acquire_at(0.0));
        assert!(b.try_acquire_at(0.0));
        assert!(!b.try_acquire_at(0.0));
        // 0.5s at 2/s refills one token.
        assert!(b.try_acquire_at(0.5));
        assert!(!b.try_acquire_at(0.5));
        // Refill caps at burst no matter how long the idle gap.
        assert!(b.try_acquire_at(100.0));
        assert!(b.try_acquire_at(100.0));
        assert!(!b.try_acquire_at(100.0));
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_acquire_at(5.0));
        assert!(!b.try_acquire_at(4.0), "no refill from a clock step back");
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::per_second(0.0);
        for i in 0..1000 {
            assert!(b.try_acquire_at(i as f64 * 1e-6));
        }
    }
}
