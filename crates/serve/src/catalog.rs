//! The model catalog: a watched directory of `NMMODEL` artifacts with
//! crash-safe writes and automatic newest-valid-version adoption.
//!
//! ## Layout
//!
//! ```text
//! <root>/<tenant>/<version>.nmmodel
//! ```
//!
//! One subdirectory per tenant; each artifact is named by its decimal
//! model version. Anything else — `*.tmp` files mid-write, foreign files,
//! non-numeric names — is ignored by the scanner, so a writer that dies
//! between `create` and `rename` leaves nothing adoptable behind.
//!
//! ## Adoption contract
//!
//! [`Catalog::latest_valid`] walks a tenant's versions in **descending**
//! order and returns the first artifact that passes full `NMMODEL`
//! validation (magic, framing, both CRC32Cs, payload decode — see
//! [`crate::model_io`]). Corrupt, truncated, or torn files are counted and
//! skipped, never adopted; the result is therefore the *highest valid*
//! version regardless of directory-entry order or interleaved garbage.
//!
//! [`CatalogSupervisor`] runs that scan on an interval against a live
//! [`ModelRegistry`], adopting through
//! [`ModelRegistry::adopt_if_newer`] — so a bad read can never downgrade a
//! tenant: the last-good model keeps serving until a strictly newer valid
//! artifact appears. Writers use [`Catalog::write`] (tmp + rename, fsync
//! before rename) so a crash mid-write is invisible to readers.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use noisemine_core::PatternModel;

use crate::model_io::{read_model, write_model, ModelIoResult};
use crate::registry::{Adoption, ModelRegistry, ServeModel};

/// The artifact extension every catalog entry must carry.
const EXT: &str = "nmmodel";

/// A model-catalog directory (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Catalog {
    root: PathBuf,
}

/// What one catalog pass over one tenant found.
#[derive(Debug, Clone, Default)]
pub struct TenantScan {
    /// The highest valid version and its path, if any artifact validated.
    pub newest_valid: Option<(u64, PathBuf)>,
    /// Artifacts that failed validation (corrupt/truncated/torn) at or
    /// above the newest valid version.
    pub rejected: usize,
}

/// What one full catalog sync against a registry did.
#[derive(Debug, Clone, Default)]
pub struct SyncReport {
    /// `(tenant, version)` adoptions performed this pass.
    pub adopted: Vec<(String, u64)>,
    /// Artifacts rejected by validation across all tenants.
    pub rejected: usize,
    /// Tenants whose directory exists but holds no valid artifact.
    pub modelless: Vec<String>,
}

impl Catalog {
    /// A catalog rooted at `root` (the directory need not exist yet; it is
    /// created on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The catalog's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The canonical artifact path for `(tenant, version)`.
    pub fn model_path(&self, tenant: &str, version: u64) -> PathBuf {
        self.root.join(tenant).join(format!("{version}.{EXT}"))
    }

    /// Writes `model` into the catalog crash-safely (tmp file, fsync,
    /// rename — readers either see the complete artifact or nothing) and
    /// returns its path. The tenant directory is created as needed.
    pub fn write(&self, tenant: &str, model: &PatternModel) -> ModelIoResult<PathBuf> {
        let dir = self.root.join(tenant);
        std::fs::create_dir_all(&dir)?;
        let path = self.model_path(tenant, model.version);
        write_model(&path, model)?;
        Ok(path)
    }

    /// Tenant names present in the catalog (subdirectories of the root),
    /// sorted. A missing root is an empty catalog, not an error.
    pub fn tenant_names(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| !n.starts_with('.'))
            .collect();
        names.sort();
        names
    }

    /// Versions on disk for `tenant` (valid or not), descending. Only
    /// `<decimal>.nmmodel` names count; `.tmp` and foreign files are
    /// invisible.
    pub fn versions(&self, tenant: &str) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(self.root.join(tenant)) else {
            return Vec::new();
        };
        let mut versions: Vec<u64> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|name| {
                let stem = name.strip_suffix(&format!(".{EXT}"))?;
                // Strictly decimal stems only: "0012" would collide with
                // "12", so leading zeros are foreign too.
                if stem.is_empty() || (stem.len() > 1 && stem.starts_with('0')) {
                    return None;
                }
                stem.parse::<u64>().ok()
            })
            .collect();
        versions.sort_unstable_by(|a, b| b.cmp(a));
        versions.dedup();
        versions
    }

    /// Scans `tenant` for its newest valid artifact: versions are tried in
    /// descending order, each fully validated before it can win; invalid
    /// artifacts are counted in [`TenantScan::rejected`] and skipped.
    ///
    /// `floor` short-circuits the walk: versions `<= floor` are not even
    /// opened (the registry already serves `floor`, and adoption is
    /// newer-only) — so a steady-state pass costs one `read_dir`, no reads.
    pub fn scan_tenant(&self, tenant: &str, floor: Option<u64>) -> TenantScan {
        let mut scan = TenantScan::default();
        for version in self.versions(tenant) {
            if floor.is_some_and(|f| version <= f) {
                break;
            }
            let path = self.model_path(tenant, version);
            match read_model(&path) {
                Ok(model) if model.version == version => {
                    scan.newest_valid = Some((version, path));
                    break;
                }
                // A valid file whose embedded version disagrees with its
                // filename is a mislabeled artifact — adopting it would
                // break version monotonicity, so it is rejected too.
                Ok(_) | Err(_) => {
                    crate::obs::catalog_rejects().inc();
                    scan.rejected += 1;
                }
            }
        }
        scan
    }

    /// The highest valid version for `tenant` and its decoded model, if
    /// any (test- and tooling-facing; the supervisor uses
    /// [`Self::scan_tenant`] + [`ModelRegistry::adopt_if_newer`]).
    pub fn latest_valid(&self, tenant: &str) -> Option<(u64, PatternModel)> {
        let (version, path) = self.scan_tenant(tenant, None).newest_valid?;
        read_model(path).ok().map(|m| (version, m))
    }

    /// One full catalog pass against `registry`: every tenant directory is
    /// scanned, strictly-newer valid artifacts are compiled and adopted,
    /// and tenants with no valid artifact at all are declared (so
    /// `/readyz` reports them degraded). Never downgrades; never adopts an
    /// invalid artifact.
    pub fn sync(&self, registry: &ModelRegistry) -> SyncReport {
        crate::obs::catalog_scans().inc();
        let mut report = SyncReport::default();
        for tenant in self.tenant_names() {
            let floor = registry.current_version(&tenant);
            let scan = self.scan_tenant(&tenant, floor);
            report.rejected += scan.rejected;
            match scan.newest_valid {
                Some((version, path)) => {
                    // Validated above, but the file can change between scan
                    // and adoption (the writer may have replaced it) — so
                    // re-read and re-validate at the adoption point.
                    match read_model(&path) {
                        Ok(model) => {
                            let compiled = ServeModel::compile(model);
                            if let Adoption::Adopted { .. } =
                                registry.adopt_if_newer(&tenant, compiled)
                            {
                                crate::obs::catalog_adoptions().inc();
                                report.adopted.push((tenant.clone(), version));
                            }
                        }
                        Err(_) => {
                            crate::obs::catalog_rejects().inc();
                            report.rejected += 1;
                        }
                    }
                }
                None if floor.is_none() => {
                    registry.declare(&tenant);
                    report.modelless.push(tenant.clone());
                }
                None => {}
            }
        }
        report
    }
}

/// Shutdown signal shared between a supervisor thread and its handle:
/// a flag plus a condvar so `stop()` interrupts the interval sleep
/// immediately instead of waiting it out.
#[derive(Debug, Default)]
pub(crate) struct StopSignal {
    stop: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl StopSignal {
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cond.notify_all();
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Sleeps up to `d`, returning early (true) if stopped.
    pub(crate) fn wait(&self, d: Duration) -> bool {
        if self.is_stopped() {
            return true;
        }
        let guard = self.mutex.lock().expect("stop signal poisoned");
        let _ = self
            .cond
            .wait_timeout_while(guard, d, |()| !self.stop.load(Ordering::SeqCst));
        self.is_stopped()
    }
}

/// The catalog supervisor: a background thread running [`Catalog::sync`]
/// on an interval, hot-swapping strictly newer valid artifacts into the
/// registry as they land on disk. Stop with [`CatalogSupervisor::stop`];
/// dropping the handle also stops and joins.
pub struct CatalogSupervisor {
    signal: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CatalogSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogSupervisor")
            .field("stopped", &self.signal.is_stopped())
            .finish()
    }
}

impl CatalogSupervisor {
    /// Spawns the supervisor. The first sync runs immediately (so a server
    /// starting against a pre-populated catalog serves it at once), then
    /// every `interval`.
    pub fn spawn(catalog: Catalog, registry: Arc<ModelRegistry>, interval: Duration) -> Self {
        let signal = Arc::new(StopSignal::default());
        let thread_signal = Arc::clone(&signal);
        let thread = std::thread::Builder::new()
            .name("serve-catalog".to_string())
            .spawn(move || loop {
                catalog.sync(&registry);
                if thread_signal.wait(interval) {
                    return;
                }
            })
            .expect("spawn catalog supervisor");
        Self {
            signal,
            thread: Some(thread),
        }
    }

    /// Requests shutdown and joins the supervisor thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.signal.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CatalogSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
    use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, Symbol};

    fn sample_model(version: u64) -> PatternModel {
        let alphabet = Alphabet::synthetic(4);
        let matrix = CompatibilityMatrix::uniform_noise(4, 0.1).unwrap();
        let outcome = MineOutcome {
            frequent: vec![FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(0), Symbol(1)]).unwrap(),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }],
            border: Border::default(),
            symbol_match: vec![0.4; 4],
            stats: MineStats::default(),
        };
        PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.1, version)
    }

    fn tmp_catalog(name: &str) -> Catalog {
        let root =
            std::env::temp_dir().join(format!("noisemine-catalog-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        Catalog::new(root)
    }

    #[test]
    fn write_then_latest_valid_round_trips() {
        let cat = tmp_catalog("roundtrip");
        cat.write("t", &sample_model(7)).unwrap();
        cat.write("t", &sample_model(12)).unwrap();
        let (version, model) = cat.latest_valid("t").unwrap();
        assert_eq!(version, 12);
        assert_eq!(model.version, 12);
        assert_eq!(cat.versions("t"), vec![12, 7]);
        std::fs::remove_dir_all(cat.root()).ok();
    }

    #[test]
    fn garbage_and_tmp_files_are_invisible() {
        let cat = tmp_catalog("garbage");
        cat.write("t", &sample_model(3)).unwrap();
        let dir = cat.root().join("t");
        std::fs::write(dir.join("9.nmmodel.tmp"), b"half a write").unwrap();
        std::fs::write(dir.join("README.txt"), b"not a model").unwrap();
        std::fs::write(dir.join("007.nmmodel"), b"leading zeros").unwrap();
        std::fs::write(dir.join("x12.nmmodel"), b"not decimal").unwrap();
        assert_eq!(cat.versions("t"), vec![3]);
        assert_eq!(cat.latest_valid("t").unwrap().0, 3);
        std::fs::remove_dir_all(cat.root()).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_last_good() {
        let cat = tmp_catalog("fallback");
        cat.write("t", &sample_model(5)).unwrap();
        cat.write("t", &sample_model(9)).unwrap();
        // Corrupt the newest artifact in place (torn write simulation).
        let newest = cat.model_path("t", 9);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&newest, bytes).unwrap();

        let scan = cat.scan_tenant("t", None);
        assert_eq!(scan.rejected, 1);
        assert_eq!(scan.newest_valid.as_ref().unwrap().0, 5);

        // And the registry path: v5 adopted, never the corrupt v9.
        let registry = ModelRegistry::new(0.0);
        let report = cat.sync(&registry);
        assert_eq!(report.adopted, vec![("t".to_string(), 5)]);
        assert_eq!(registry.current_version("t"), Some(5));
        std::fs::remove_dir_all(cat.root()).ok();
    }

    #[test]
    fn sync_never_downgrades_and_declares_modelless() {
        let cat = tmp_catalog("sync");
        let registry = ModelRegistry::new(0.0);
        registry.swap("t", ServeModel::compile(sample_model(20)));
        cat.write("t", &sample_model(10)).unwrap();
        // A tenant dir with only garbage.
        std::fs::create_dir_all(cat.root().join("empty")).unwrap();
        std::fs::write(cat.root().join("empty").join("1.nmmodel"), b"junk").unwrap();

        let report = cat.sync(&registry);
        assert!(report.adopted.is_empty(), "{report:?}");
        assert_eq!(registry.current_version("t"), Some(20));
        assert_eq!(report.modelless, vec!["empty".to_string()]);
        assert!(matches!(
            registry.lookup("empty"),
            crate::registry::TenantLookup::NoModel
        ));

        // A strictly newer artifact is adopted on the next pass.
        cat.write("t", &sample_model(21)).unwrap();
        let report = cat.sync(&registry);
        assert_eq!(report.adopted, vec![("t".to_string(), 21)]);
        assert_eq!(registry.current_version("t"), Some(21));
        std::fs::remove_dir_all(cat.root()).ok();
    }

    #[test]
    fn mislabeled_artifact_is_rejected() {
        let cat = tmp_catalog("mislabel");
        // A perfectly valid artifact written under the wrong version name.
        cat.write("t", &sample_model(4)).unwrap();
        let fake = cat.model_path("t", 99);
        std::fs::copy(cat.model_path("t", 4), &fake).unwrap();
        let scan = cat.scan_tenant("t", None);
        assert_eq!(scan.rejected, 1);
        assert_eq!(scan.newest_valid.unwrap().0, 4);
        std::fs::remove_dir_all(cat.root()).ok();
    }
}
