//! The serving hot path: scoring a batch of sequences against a compiled
//! model, bit-identical to the offline miner.
//!
//! [`classify`] reproduces [`db_match_many`]'s exact floating-point
//! reduction: per-sequence scores come from the shared
//! [`CandidateTrie::batch_sequence_match`] kernel (itself bit-identical to
//! per-pattern `sequence_match`), and the Def-3.7 database match is
//! accumulated in [`SCAN_BLOCK_SIZE`]-sequence blocks whose partial sums
//! are reduced in block order — the workspace's determinism contract. A
//! request served online therefore scores **bit-for-bit** what an offline
//! `db_match_many` over the same sequences would report, at any thread
//! count on either side.
//!
//! [`db_match_many`]: noisemine_core::matching::db_match_many
//! [`CandidateTrie::batch_sequence_match`]: noisemine_core::CandidateTrie::batch_sequence_match
//! [`SCAN_BLOCK_SIZE`]: noisemine_core::parallel::SCAN_BLOCK_SIZE

use noisemine_core::parallel::SCAN_BLOCK_SIZE;
use noisemine_core::{MatchKernel, Symbol};

use crate::registry::ServeModel;

/// Scores for one classification request.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Version of the model that produced the scores.
    pub model_version: u64,
    /// `per_sequence[s][p]` — Def-3.6 sequence match of pattern `p`
    /// against submitted sequence `s`.
    pub per_sequence: Vec<Vec<f64>>,
    /// `db_match[p]` — the Def-3.7 normalized score: the average of
    /// pattern `p`'s sequence matches over the submitted batch, reduced in
    /// the miner's block order. Empty batch ⇒ all zeros.
    pub db_match: Vec<f64>,
}

/// Classifies `sequences` against `model` with the default (trie) kernel.
///
/// Symbols must already be encoded against the model's alphabet (the HTTP
/// layer handles name→symbol translation and range checks).
pub fn classify(model: &ServeModel, sequences: &[Vec<Symbol>]) -> Classification {
    classify_with(model, sequences, MatchKernel::Trie)
}

/// [`classify`] with an explicit [`MatchKernel`] (`noisemine serve
/// --kernel`). Purely operational: the naive kernel falls back to the
/// trie here (there is no per-pattern path worth keeping on the serving
/// side), and the columnar simd kernel is held to the trie's values within
/// a zero-ULP contract, so scores never depend on the choice.
pub fn classify_with(
    model: &ServeModel,
    sequences: &[Vec<Symbol>],
    kernel: MatchKernel,
) -> Classification {
    let p = model.num_patterns();
    let mut per_sequence = Vec::with_capacity(sequences.len());
    let mut totals = vec![0.0f64; p];
    let Some(trie) = model.trie.as_ref() else {
        per_sequence.resize(sequences.len(), Vec::new());
        return Classification {
            model_version: model.version(),
            per_sequence,
            db_match: totals,
        };
    };
    let simd = kernel == MatchKernel::Simd;
    let mut trie_scratch = trie.scratch();
    let mut simd_scratch = if simd {
        Some(trie.simd_scratch())
    } else {
        None
    };
    let mut out = vec![0.0f64; p];
    // Block-ordered reduction: identical to try_db_match_many_kernel's
    // scan_map_reduce over SCAN_BLOCK_SIZE-sequence blocks.
    for block in sequences.chunks(SCAN_BLOCK_SIZE) {
        let mut partial = vec![0.0f64; p];
        for seq in block {
            match &mut simd_scratch {
                Some(scratch) => {
                    trie.batch_sequence_match_columnar(seq, &model.spec.matrix, scratch, &mut out)
                }
                None => {
                    trie.batch_sequence_match(seq, &model.spec.matrix, &mut trie_scratch, &mut out)
                }
            }
            for (t, &v) in partial.iter_mut().zip(out.iter()) {
                *t += v;
            }
            per_sequence.push(out.clone());
        }
        for (t, &v) in totals.iter_mut().zip(partial.iter()) {
            *t += v;
        }
    }
    if !sequences.is_empty() {
        let n = sequences.len() as f64;
        for t in &mut totals {
            *t /= n;
        }
    }
    Classification {
        model_version: model.version(),
        per_sequence,
        db_match: totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::matching::{db_match_many, MemorySequences};
    use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
    use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel};

    fn toy_model(num_patterns: usize) -> ServeModel {
        let m = 8;
        let alphabet = Alphabet::synthetic(m);
        let matrix = CompatibilityMatrix::uniform_noise(m, 0.15).unwrap();
        let frequent = (0..num_patterns)
            .map(|i| {
                let a = Symbol((i % m) as u16);
                let b = Symbol(((i + 3) % m) as u16);
                let c = Symbol(((i * 5 + 1) % m) as u16);
                FrequentPattern {
                    pattern: Pattern::contiguous(&[a, b, c]).unwrap(),
                    match_estimate: 0.5,
                    provenance: Provenance::Verified,
                }
            })
            .collect();
        let outcome = MineOutcome {
            frequent,
            border: Border::default(),
            symbol_match: vec![0.4; m],
            stats: MineStats::default(),
        };
        ServeModel::compile(PatternModel::from_outcome(
            &outcome, &alphabet, &matrix, 0.1, 1,
        ))
    }

    fn toy_sequences(n: usize, len: usize, m: u16) -> Vec<Vec<Symbol>> {
        // Deterministic pseudo-random sequences (no RNG dependency).
        let mut state = 0x9e37_79b9_u64;
        (0..n)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        Symbol(((state >> 33) % m as u64) as u16)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn db_match_bits_equal_offline_db_match_many() {
        // 600 sequences spans multiple 256-blocks, so the block-ordered
        // reduction is actually exercised.
        let model = toy_model(7);
        let seqs = toy_sequences(600, 24, 8);
        let result = classify(&model, &seqs);
        let offline = db_match_many(
            &model.patterns,
            &MemorySequences(seqs.clone()),
            &model.spec.matrix,
        );
        assert_eq!(result.db_match.len(), offline.len());
        for (i, (a, b)) in result.db_match.iter().zip(&offline).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "pattern {i}: {a} vs {b}");
        }
    }

    #[test]
    fn simd_kernel_scores_bits_equal_trie() {
        let model = toy_model(7);
        let seqs = toy_sequences(600, 24, 8);
        let trie = classify_with(&model, &seqs, MatchKernel::Trie);
        let simd = classify_with(&model, &seqs, MatchKernel::Simd);
        assert_eq!(simd.model_version, trie.model_version);
        for (a, b) in simd.db_match.iter().zip(&trie.db_match) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        for (sa, sb) in simd.per_sequence.iter().zip(&trie.per_sequence) {
            for (a, b) in sa.iter().zip(sb) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_model() {
        let model = toy_model(3);
        let r = classify(&model, &[]);
        assert!(r.per_sequence.is_empty());
        assert_eq!(r.db_match, vec![0.0; 3]);

        let empty = toy_model(0);
        let r = classify(&empty, &toy_sequences(4, 10, 8));
        assert_eq!(r.per_sequence.len(), 4);
        assert!(r.db_match.is_empty());
    }
}
