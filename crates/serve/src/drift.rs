//! The in-server drift loop: classified traffic feeds a per-tenant
//! [`StreamState`]; when the Chernoff drift detector fires, a supervised
//! background re-mine produces a new model, writes it into the catalog
//! crash-safely, and self-swaps — closing mine → serve → drift without an
//! operator.
//!
//! ## Architecture
//!
//! The classify route forwards each scored batch to a bounded channel
//! ([`DriftController::ingest`] — `try_send`, so a busy drift thread can
//! never stall a request; overflow is dropped and counted). One
//! **drift-loop thread** owns every tenant's [`StreamState`] and traffic
//! buffer, drains the channel, and on each tick:
//!
//! 1. anchors a fresh tenant's baseline once `min_sequences` samples have
//!    arrived (no mine — the offline model already serves; drift is
//!    measured *from here*),
//! 2. checks [`StreamState::drift_exceeded`]; a fire marks the tenant
//!    `stale`,
//! 3. runs the re-mine **supervised**: on a separate thread (panic
//!    isolation via the thread boundary), bounded by `remine_timeout`
//!    (result channel `recv_timeout`; an overrunning mine is abandoned —
//!    it holds only cloned data, so the engine is untouched),
//! 4. on success, writes the model into the catalog (tmp + rename),
//!    **re-reads and re-validates the artifact**, and only then adopts it
//!    through [`ModelRegistry::adopt_if_newer`] — a corrupt write is
//!    caught here and counts as a failure, the last-good model keeps
//!    serving,
//! 5. on failure (panic, timeout, mine error, corrupt write), retries with
//!    exponential backoff; after `breaker_threshold` consecutive failures
//!    the **circuit breaker** opens (state `circuit_open`, re-mines
//!    suspended). After `breaker_cooldown` it half-opens: one trial
//!    attempt is allowed — success closes the breaker, failure re-opens it
//!    for another cooldown.
//!
//! Every state transition lands on the registry ([`ServingState`]) and the
//! obs surface, so `/admin/models`, `/readyz`, and `/metrics` all tell the
//! same story. Because the engine is only mutated by
//! [`StreamState::complete_mine`] *after* a fully validated adoption, a
//! failed attempt of any kind leaves both the served model and the drift
//! detector exactly as they were.
//!
//! ## Chaos hooks
//!
//! [`DriftConfig::fault_hook`] lets tests inject failures at exact points:
//! a panic inside the supervised mine, a stall past the deadline, or a
//! corrupted artifact write. The chaos suite drives all three and asserts
//! the breaker schedule and byte-identical serving throughout.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use noisemine_core::miner::{mine_from_phase1_with_known, MinerConfig};
use noisemine_core::{PatternModel, PatternSpace, Symbol};
use noisemine_seqdb::MemoryDb;
use noisemine_stream::StreamState;

use crate::catalog::{Catalog, StopSignal};
use crate::registry::{Adoption, ModelRegistry, ServingState};

/// An injected re-mine failure (chaos testing; see the module docs).
#[derive(Debug, Clone, Copy)]
pub enum DriftFault {
    /// Panic inside the supervised mine thread.
    Panic,
    /// Sleep this long inside the supervised mine thread (set it past
    /// `remine_timeout` to exercise the deadline path).
    Stall(Duration),
    /// Replace the catalog artifact's bytes with garbage after the write —
    /// the validate-before-adopt step must reject it.
    CorruptWrite,
}

/// Decides whether attempt number `n` (1-based, per tenant) for `tenant`
/// should fail, and how.
pub type FaultHook = Arc<dyn Fn(&str, u32) -> Option<DriftFault> + Send + Sync>;

/// Drift-loop configuration.
#[derive(Clone)]
pub struct DriftConfig {
    /// How often the loop checks each tenant for drift.
    pub interval: Duration,
    /// Samples a tenant must accumulate before its baseline is anchored
    /// (and before any re-mine): the Chernoff bound is meaningless over a
    /// handful of sequences.
    pub min_sequences: u64,
    /// Deadline for one supervised re-mine.
    pub remine_timeout: Duration,
    /// First retry delay after a failed re-mine; doubles per consecutive
    /// failure up to [`Self::backoff_max`].
    pub backoff_base: Duration,
    /// Exponential-backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before half-opening (one trial
    /// attempt allowed).
    pub breaker_cooldown: Duration,
    /// Retained-traffic cap per tenant. Beyond it, new samples no longer
    /// grow the re-mine buffer (dropped and counted) — bounding memory on
    /// a long-lived server.
    pub max_buffer: usize,
    /// Reservoir size for each tenant's [`StreamState`].
    pub sample_size: usize,
    /// Pattern-space bound for in-server re-mines: maximum pattern length.
    pub max_len: usize,
    /// Pattern-space bound for in-server re-mines: maximum gap.
    pub max_gap: usize,
    /// Seed for each tenant's engine (reservoir RNG).
    pub seed: u64,
    /// Chaos hook: injects failures into exact points of the re-mine path
    /// (`None` in production).
    pub fault_hook: Option<FaultHook>,
}

impl std::fmt::Debug for DriftConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftConfig")
            .field("interval", &self.interval)
            .field("min_sequences", &self.min_sequences)
            .field("remine_timeout", &self.remine_timeout)
            .field("backoff_base", &self.backoff_base)
            .field("backoff_max", &self.backoff_max)
            .field("breaker_threshold", &self.breaker_threshold)
            .field("breaker_cooldown", &self.breaker_cooldown)
            .field("max_buffer", &self.max_buffer)
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            min_sequences: 256,
            remine_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_secs(1),
            backoff_max: Duration::from_secs(60),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(30),
            max_buffer: 100_000,
            sample_size: 512,
            max_len: 8,
            max_gap: 0,
            seed: 2002,
            fault_hook: None,
        }
    }
}

/// One classified batch forwarded from the classify route.
struct Sample {
    tenant: String,
    sequences: Vec<Vec<Symbol>>,
}

/// Channel capacity for classify → drift-loop samples. Overflow is dropped
/// (and counted), never blocks a request.
const SAMPLE_CHANNEL_CAP: usize = 1024;

/// The classify route's handle into the drift loop: forwards classified
/// batches, best-effort.
pub struct DriftController {
    tx: SyncSender<Sample>,
}

impl std::fmt::Debug for DriftController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftController").finish()
    }
}

impl DriftController {
    /// Forwards one classified batch into the drift loop. Non-blocking: a
    /// full channel (or a stopped loop) drops the sample and bumps
    /// `serve_drift_samples_dropped_total` — drift sampling is best-effort
    /// by design, classification latency is never taxed.
    pub fn ingest(&self, tenant: &str, sequences: &[Vec<Symbol>]) {
        if sequences.is_empty() {
            return;
        }
        let sample = Sample {
            tenant: tenant.to_string(),
            sequences: sequences.to_vec(),
        };
        match self.tx.try_send(sample) {
            Ok(()) => crate::obs::drift_samples().add(sequences.len() as u64),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                crate::obs::drift_samples_dropped().add(sequences.len() as u64);
            }
        }
    }
}

/// Circuit-breaker state for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    /// Open since the contained instant; no attempts until cooldown.
    Open(Instant),
    /// Cooldown elapsed; exactly one trial attempt is in flight or
    /// pending.
    HalfOpen,
}

impl Breaker {
    fn as_gauge(self) -> f64 {
        match self {
            Breaker::Closed => 0.0,
            Breaker::HalfOpen => 1.0,
            Breaker::Open(_) => 2.0,
        }
    }
}

/// Per-tenant drift-loop state, owned by the loop thread.
struct TenantDrift {
    stream: StreamState,
    /// Every retained sample, in arrival order — the re-mine's phase-3
    /// database (capped at `max_buffer`).
    buffer: Vec<Vec<Symbol>>,
    /// Model metadata frozen from the tenant's serving model at attach
    /// time (alphabet for freezing outcomes, min_match already inside the
    /// stream config).
    alphabet: noisemine_core::Alphabet,
    /// Whether the baseline has been anchored (first `min_sequences`
    /// samples calibrate the detector; no mine).
    anchored: bool,
    /// Consecutive re-mine failures (reset on success).
    failures: u32,
    breaker: Breaker,
    /// Earliest instant the next attempt may run (backoff schedule).
    next_attempt: Instant,
    /// Total attempts (1-based counter fed to the fault hook).
    attempts: u32,
}

/// The drift-loop supervisor thread handle. Stop with
/// [`DriftSupervisor::stop`]; dropping also stops and joins.
pub struct DriftSupervisor {
    signal: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DriftSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftSupervisor")
            .field("stopped", &self.signal.is_stopped())
            .finish()
    }
}

impl DriftSupervisor {
    /// Spawns the drift loop. Returns the supervisor handle plus the
    /// controller the classify route feeds. When `catalog` is `Some`,
    /// re-mined models are persisted there (crash-safely) before adoption;
    /// when `None`, they are adopted in-memory only.
    pub fn spawn(
        config: DriftConfig,
        registry: Arc<ModelRegistry>,
        catalog: Option<Catalog>,
    ) -> (Arc<DriftController>, DriftSupervisor) {
        let (tx, rx) = mpsc::sync_channel(SAMPLE_CHANNEL_CAP);
        let signal = Arc::new(StopSignal::default());
        let thread_signal = Arc::clone(&signal);
        let thread = std::thread::Builder::new()
            .name("serve-drift".to_string())
            .spawn(move || drift_loop(&config, &registry, catalog.as_ref(), &rx, &thread_signal))
            .expect("spawn drift loop");
        (
            Arc::new(DriftController { tx }),
            DriftSupervisor {
                signal,
                thread: Some(thread),
            },
        )
    }

    /// Requests shutdown and joins the loop thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.signal.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DriftSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drift_loop(
    config: &DriftConfig,
    registry: &ModelRegistry,
    catalog: Option<&Catalog>,
    rx: &Receiver<Sample>,
    signal: &StopSignal,
) {
    let mut tenants: std::collections::HashMap<String, TenantDrift> =
        std::collections::HashMap::new();
    let mut next_tick = Instant::now();
    loop {
        // Drain samples until the tick (or shutdown). recv_timeout paces
        // the loop without busy-waiting.
        loop {
            if signal.is_stopped() {
                return;
            }
            let now = Instant::now();
            if now >= next_tick {
                break;
            }
            match rx.recv_timeout(next_tick - now) {
                Ok(sample) => absorb(config, registry, &mut tenants, sample),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // All controllers dropped; keep ticking (breaker timers
                    // still need to run) until stopped.
                    if signal.wait(next_tick.saturating_duration_since(Instant::now())) {
                        return;
                    }
                    break;
                }
            }
        }
        next_tick = Instant::now() + config.interval;

        // Tenant names sorted for deterministic attempt order.
        let mut names: Vec<String> = tenants.keys().cloned().collect();
        names.sort();
        for name in names {
            if signal.is_stopped() {
                return;
            }
            let td = tenants.get_mut(&name).expect("tenant present");
            tick_tenant(config, registry, catalog, &name, td);
        }
    }
}

/// Folds one classified batch into its tenant's engine, creating the
/// engine from the tenant's serving model on first contact.
fn absorb(
    config: &DriftConfig,
    registry: &ModelRegistry,
    tenants: &mut std::collections::HashMap<String, TenantDrift>,
    sample: Sample,
) {
    if !tenants.contains_key(&sample.tenant) {
        // Bootstrap from the serving model: its matrix and threshold ARE
        // the mining contract the model was built under.
        let Some(model) = registry.model(&sample.tenant) else {
            crate::obs::drift_samples_dropped().add(sample.sequences.len() as u64);
            return;
        };
        let space = match PatternSpace::new(config.max_gap, config.max_len) {
            Ok(s) => s,
            Err(_) => return,
        };
        let miner_config = MinerConfig {
            min_match: model.spec.min_match,
            sample_size: config.sample_size.max(1),
            space,
            seed: config.seed,
            ..MinerConfig::default()
        };
        let stream = match StreamState::new(model.spec.matrix.clone(), miner_config) {
            Ok(s) => s,
            Err(_) => return,
        };
        tenants.insert(
            sample.tenant.clone(),
            TenantDrift {
                stream,
                buffer: Vec::new(),
                alphabet: model.spec.alphabet.clone(),
                anchored: false,
                failures: 0,
                breaker: Breaker::Closed,
                next_attempt: Instant::now(),
                attempts: 0,
            },
        );
    }
    let td = tenants.get_mut(&sample.tenant).expect("just inserted");
    for seq in sample.sequences {
        if td.buffer.len() >= config.max_buffer {
            crate::obs::drift_samples_dropped().inc();
            continue;
        }
        td.stream.ingest(&seq);
        td.buffer.push(seq);
    }
    crate::obs::drift_buffered().set(tenants.values().map(|t| t.buffer.len() as f64).sum::<f64>());
}

/// One drift-loop tick for one tenant: baseline anchoring, drift check,
/// breaker schedule, and (possibly) a supervised re-mine attempt.
fn tick_tenant(
    config: &DriftConfig,
    registry: &ModelRegistry,
    catalog: Option<&Catalog>,
    tenant: &str,
    td: &mut TenantDrift,
) {
    let now = Instant::now();
    if td.stream.total_seen() < config.min_sequences {
        return;
    }
    // Calibration: the first min_sequences samples define "what traffic
    // looked like under the model we already serve" — anchor there, no
    // mine. Drift is measured from this baseline on.
    if !td.anchored {
        td.stream.anchor();
        td.anchored = true;
        return;
    }
    if !td.stream.drift_exceeded() {
        return;
    }
    // Breaker schedule: open → (cooldown) → half-open → one trial.
    match td.breaker {
        Breaker::Open(since) => {
            if now.duration_since(since) < config.breaker_cooldown {
                registry.set_state(
                    tenant,
                    ServingState::CircuitOpen,
                    &format!("{} consecutive re-mine failures", td.failures),
                );
                return;
            }
            td.breaker = Breaker::HalfOpen;
            crate::obs::set_breaker(tenant, td.breaker.as_gauge());
        }
        Breaker::HalfOpen | Breaker::Closed => {}
    }
    if td.breaker == Breaker::Closed && now < td.next_attempt {
        registry.set_state(
            tenant,
            ServingState::Stale,
            &format!("drift detected; retry backoff ({} failures)", td.failures),
        );
        return;
    }
    registry.set_state(tenant, ServingState::Remining, "drift detected; re-mining");
    td.attempts += 1;
    let fault = config
        .fault_hook
        .as_ref()
        .and_then(|hook| hook(tenant, td.attempts));
    match supervised_remine(config, registry, catalog, tenant, td, fault) {
        Ok(version) => {
            td.failures = 0;
            td.breaker = Breaker::Closed;
            td.next_attempt = now;
            crate::obs::set_breaker(tenant, td.breaker.as_gauge());
            crate::obs::self_swaps().inc();
            registry.set_state(tenant, ServingState::Current, "");
            let _ = version;
        }
        Err(why) => {
            td.failures += 1;
            crate::obs::remine_failures().inc();
            if td.breaker == Breaker::HalfOpen || td.failures >= config.breaker_threshold {
                // A half-open trial failure re-opens immediately; a closed
                // breaker opens once the failure budget is spent.
                td.breaker = Breaker::Open(Instant::now());
                crate::obs::set_breaker(tenant, td.breaker.as_gauge());
                crate::obs::breaker_opens().inc();
                registry.set_state(
                    tenant,
                    ServingState::CircuitOpen,
                    &format!("{} consecutive re-mine failures; last: {why}", td.failures),
                );
            } else {
                let exp = td.failures.saturating_sub(1).min(16);
                let backoff = config
                    .backoff_base
                    .saturating_mul(1u32 << exp)
                    .min(config.backoff_max);
                td.next_attempt = Instant::now() + backoff;
                registry.set_state(
                    tenant,
                    ServingState::Stale,
                    &format!("re-mine failed ({why}); retrying in {backoff:?}"),
                );
            }
        }
    }
}

/// Runs one supervised re-mine attempt: panic-isolated, time-bounded, and
/// validated end-to-end before anything observable changes.
fn supervised_remine(
    config: &DriftConfig,
    registry: &ModelRegistry,
    catalog: Option<&Catalog>,
    tenant: &str,
    td: &mut TenantDrift,
    fault: Option<DriftFault>,
) -> Result<u64, String> {
    crate::obs::remine_attempts().inc();
    let span = crate::obs::remine_seconds().span();
    let prep = td.stream.prepare_mine();
    let db = MemoryDb::from_sequences(td.buffer.clone());
    let mine_prep = prep.clone();
    let (result_tx, result_rx) = mpsc::sync_channel(1);
    let builder = std::thread::Builder::new().name(format!("serve-remine-{tenant}"));
    let spawned = builder.spawn(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match fault {
                Some(DriftFault::Panic) => panic!("injected re-mine panic"),
                Some(DriftFault::Stall(d)) => std::thread::sleep(d),
                _ => {}
            }
            mine_from_phase1_with_known(
                &db,
                &mine_prep.matrix,
                &mine_prep.config,
                &mine_prep.p1,
                &mine_prep.known,
            )
        }));
        // The loop may have timed out and dropped the receiver —
        // a send error is the expected way an abandoned mine ends.
        let _ = result_tx.send(outcome);
    });
    let worker = match spawned {
        Ok(w) => w,
        Err(e) => {
            span.cancel();
            return Err(format!("spawn re-mine thread: {e}"));
        }
    };
    let mined = match result_rx.recv_timeout(config.remine_timeout) {
        Ok(Ok(Ok(pair))) => {
            let _ = worker.join();
            pair
        }
        Ok(Ok(Err(e))) => {
            let _ = worker.join();
            span.cancel();
            return Err(format!("mine error: {e}"));
        }
        Ok(Err(_panic)) => {
            let _ = worker.join();
            span.cancel();
            crate::obs::remine_panics().inc();
            return Err("re-mine panicked".to_string());
        }
        Err(_) => {
            // Deadline blown. The worker keeps running detached on cloned
            // data; its eventual result is discarded with the channel.
            span.cancel();
            crate::obs::remine_timeouts().inc();
            return Err(format!("re-mine exceeded {:?}", config.remine_timeout));
        }
    };
    let (outcome, p3) = mined;
    // Version: strictly newer than whatever serves now, and at least the
    // stream position (StreamState::to_model's convention), so successive
    // self-swaps are monotone even across an operator's manual swap.
    let current = registry.current_version(tenant);
    let version = current.map_or(prep.total, |c| c.saturating_add(1).max(prep.total));
    let model = PatternModel::from_outcome(
        &outcome,
        &td.alphabet,
        &prep.matrix,
        prep.config.min_match,
        version,
    );
    let compiled = match catalog {
        Some(cat) => {
            // Crash-safe write, then read back and re-validate: the served
            // model must come from the exact bytes on disk, and a corrupt
            // write must never reach the registry.
            let written = cat
                .write(tenant, &model)
                .map_err(|e| format!("catalog write: {e}"))
                .and_then(|path| {
                    if matches!(fault, Some(DriftFault::CorruptWrite)) {
                        corrupt_artifact(&path)?;
                    }
                    crate::model_io::read_model(&path).map_err(|e| {
                        crate::obs::catalog_rejects().inc();
                        format!("artifact failed validation after write: {e}")
                    })
                });
            match written {
                Ok(reread) => crate::registry::ServeModel::compile(reread),
                Err(e) => {
                    span.cancel();
                    return Err(e);
                }
            }
        }
        None => crate::registry::ServeModel::compile(model),
    };
    match registry.adopt_if_newer(tenant, compiled) {
        Adoption::Adopted { .. } => {}
        Adoption::NotNewer { current } => {
            // An operator swapped a newer model mid-mine; drop ours.
            span.cancel();
            return Err(format!("superseded by concurrent swap to v{current}"));
        }
    }
    // Only now — model validated, adopted, serving — does the engine
    // absorb the mine (tracked borders + drift re-anchor).
    td.stream.complete_mine(&prep, &p3);
    span.finish();
    crate::obs::remines_completed().inc();
    Ok(version)
}

/// Chaos helper: flips bits in the middle of a written artifact, in place,
/// simulating a buggy or torn writer.
fn corrupt_artifact(path: &std::path::Path) -> Result<(), String> {
    let mut bytes = std::fs::read(path).map_err(|e| format!("corrupt hook read: {e}"))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(path, bytes).map_err(|e| format!("corrupt hook write: {e}"))
}
