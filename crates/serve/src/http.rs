//! Minimal HTTP/1.1 framing: just enough to parse one request and write
//! one response per connection (`Connection: close`).
//!
//! Not a general HTTP implementation — the serving API is a fixed set of
//! small JSON routes, so this module supports exactly what those need:
//! request line + headers (case-insensitive `Content-Length`), an optional
//! body, and a correctly framed response. Oversized heads or bodies are
//! rejected before allocation can hurt.

use std::io::{self, Read, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are not split off; routes here
    /// don't use them).
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\": {}}}", crate::json::escape(message)),
        )
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads one request from `stream`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending a
/// complete head (a health-check probe that connects and disconnects, for
/// example) — not an error worth logging.
pub fn read_request<R: Read>(stream: &mut R) -> io::Result<Option<Request>> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let (head_end, mut overflow) = loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request-head",
            ));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            let overflow = head.split_off(pos + 4);
            break (pos, overflow);
        }
        if head.len() > MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request head exceeds {MAX_HEAD} bytes"),
            ));
        }
    };
    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing path"))?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request body of {content_length} bytes exceeds {MAX_BODY}"),
        ));
    }
    while overflow.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        overflow.extend_from_slice(&buf[..n]);
    }
    overflow.truncate(content_length);
    let body = String::from_utf8(overflow)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request body"))?;
    Ok(Some(Request { method, path, body }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes `response` to `stream` with correct framing and closes the
/// logical exchange (`Connection: close`).
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/classify HTTP/1.1\r\nHost: x\r\ncontent-length: 11\r\n\r\nhello world";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/classify");
        assert_eq!(req.body, "hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_is_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut Cursor::new(raw)).unwrap().is_none());
    }

    #[test]
    fn truncated_body_errors() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"a\":1}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.ends_with("{\"a\":1}"), "{text}");
    }

    #[test]
    fn error_envelope_escapes() {
        let r = Response::error(400, "bad \"x\"");
        assert_eq!(r.body, "{\"error\": \"bad \\\"x\\\"\"}");
    }
}
